// COPS-FTP — the paper's event-driven FTP server as a runnable binary.
//
//   $ ./cops_ftp --root /srv/ftp --port 2121 --user alice:secret:rw
//   $ ftp 127.0.0.1 2121        (anonymous login enabled by default)
//
// Defaults follow the paper's Table 1 COPS-FTP column: synchronous
// completion events and dynamic event-thread allocation.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/string_util.hpp"
#include "ftp/ftp_server.hpp"

int main(int argc, char** argv) {
  auto options = cops::ftp::CopsFtpServer::default_options();
  cops::ftp::FtpServerConfig config;
  auto users = std::make_shared<cops::ftp::UserDb>();
  int run_seconds = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--root") {
      config.root = next();
    } else if (arg == "--port") {
      options.listen_port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--user") {
      // name:password[:rw]
      const auto parts = cops::split(next(), ':');
      if (parts.size() >= 2) {
        users->add_user(parts[0], parts[1],
                        parts.size() > 2 && parts[2] == "rw");
      }
    } else if (arg == "--no-anonymous") {
      config.allow_anonymous = false;
    } else if (arg == "--logging") {
      options.logging = true;
    } else if (arg == "--profiling") {
      options.profiling = true;
    } else if (arg == "--admin") {
      // O11+: admin/metrics endpoint; requires the profiler, so turn it on.
      options.profiling = true;
      options.stats_export = cops::nserver::StatsExport::kAdminHttp;
    } else if (arg == "--admin-port") {
      options.profiling = true;
      options.stats_export = cops::nserver::StatsExport::kAdminHttp;
      options.admin_port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--run-seconds") {
      run_seconds = std::atoi(next());
    } else {
      std::puts(
          "cops_ftp --root DIR [--port N] [--user name:pass[:rw]]\n"
          "         [--no-anonymous] [--logging] [--profiling]\n"
          "         [--admin] [--admin-port N] [--run-seconds N]");
      return arg == "--help" ? 0 : 2;
    }
  }

  cops::ftp::CopsFtpServer server(options, config, users);
  auto status = server.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("COPS-FTP listening on 127.0.0.1:%u (root %s)\n", server.port(),
              config.root.c_str());
  if (server.admin_port() != 0) {
    std::printf("admin endpoint at http://%s:%u/stats\n",
                options.admin_host.c_str(), server.admin_port());
  }
  if (run_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(run_seconds));
    server.stop();
    return 0;
  }
  while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
}
