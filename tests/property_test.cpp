// Randomized property tests on core invariants: queues lose nothing, the
// parser never crashes or over-consumes, buffers preserve byte streams, the
// cache accounting stays consistent, option files round-trip.
#include <gtest/gtest.h>

#include <random>

#include "common/byte_buffer.hpp"
#include "common/config_file.hpp"
#include "common/quota_priority_queue.hpp"
#include "gdp/pattern_template.hpp"
#include "http/http_date.hpp"
#include "http/request_parser.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

// ---- ByteBuffer stream property ---------------------------------------------

TEST(ByteBufferProperty, RandomAppendConsumePreservesStream) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> op(0, 2);
  std::uniform_int_distribution<size_t> len(1, 300);
  std::string written;
  std::string read_back;
  size_t write_pos = 0;
  ByteBuffer buf;
  // Generate the reference stream.
  std::string stream(20000, '\0');
  for (auto& c : stream) c = static_cast<char>('a' + rng() % 26);

  while (read_back.size() < stream.size()) {
    const int which = op(rng);
    if (which == 0 && write_pos < stream.size()) {
      const size_t n = std::min(len(rng), stream.size() - write_pos);
      buf.append(stream.data() + write_pos, n);
      write_pos += n;
    } else if (which == 1 && buf.readable() > 0) {
      const size_t n = std::min(len(rng), buf.readable());
      read_back.append(buf.view().substr(0, n));
      buf.consume(n);
    } else if (which == 2 && write_pos < stream.size()) {
      // prepare/commit path (socket-style writes).
      const size_t want = std::min(len(rng), stream.size() - write_pos);
      uint8_t* dst = buf.prepare(want);
      const size_t actual = want / 2 + (want % 2);  // partial commit
      std::memcpy(dst, stream.data() + write_pos, actual);
      buf.commit(actual);
      write_pos += actual;
    }
  }
  EXPECT_EQ(read_back, stream);
}

// ---- QuotaPriorityQueue: nothing lost, nothing fabricated --------------------

class QueueConservationTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(QueueConservationTest, PushPopConserveMultiset) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> prio(0, 3);
  std::uniform_int_distribution<int> burst(1, 20);
  QuotaPriorityQueue<int> queue({5, 3, 2, 1});
  std::multiset<int> outstanding;
  int next = 0;
  for (int round = 0; round < 200; ++round) {
    const int pushes = burst(rng);
    for (int i = 0; i < pushes; ++i) {
      queue.push(next, static_cast<size_t>(prio(rng)));
      outstanding.insert(next);
      ++next;
    }
    const int pops = burst(rng);
    for (int i = 0; i < pops; ++i) {
      auto item = queue.try_pop();
      if (!item) break;
      auto it = outstanding.find(*item);
      ASSERT_NE(it, outstanding.end()) << "popped a value never pushed";
      outstanding.erase(it);
    }
    ASSERT_EQ(queue.size(), outstanding.size());
  }
  while (auto item = queue.try_pop()) {
    auto it = outstanding.find(*item);
    ASSERT_NE(it, outstanding.end());
    outstanding.erase(it);
  }
  EXPECT_TRUE(outstanding.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueConservationTest,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

TEST(QueueProperty, SameLevelPreservesFifoOrder) {
  QuotaPriorityQueue<int> queue({2, 2});
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> prio(0, 1);
  std::vector<int> last_seen{-1, -1};
  // Encode level in the low bit, sequence in the rest.
  int seq = 0;
  for (int i = 0; i < 500; ++i) {
    const int level = prio(rng);
    queue.push((seq++ << 1) | level, static_cast<size_t>(level));
  }
  while (auto item = queue.try_pop()) {
    const int level = *item & 1;
    const int sequence = *item >> 1;
    EXPECT_GT(sequence, last_seen[static_cast<size_t>(level)])
        << "FIFO violated within level " << level;
    last_seen[static_cast<size_t>(level)] = sequence;
  }
}

// ---- HTTP parser robustness ----------------------------------------------------

TEST(ParserProperty, RandomBytesNeverCrashNorOverconsume) {
  std::mt19937 rng(77);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> len(0, 400);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string junk(len(rng), '\0');
    for (auto& c : junk) c = static_cast<char>(byte(rng));
    ByteBuffer buf{std::string_view(junk)};
    const size_t before = buf.readable();
    http::HttpRequest request;
    const auto outcome = http::parse_request(buf, request);
    if (outcome == http::ParseOutcome::kIncomplete) {
      EXPECT_EQ(buf.readable(), before);
    } else {
      EXPECT_LE(buf.readable(), before);
    }
  }
}

TEST(ParserProperty, ValidRequestsAlwaysParseBackToTheirFields) {
  std::mt19937 rng(91);
  std::uniform_int_distribution<int> seg_len(1, 12);
  std::uniform_int_distribution<int> segments(1, 5);
  std::uniform_int_distribution<int> letter('a', 'z');
  for (int trial = 0; trial < 500; ++trial) {
    std::string path = "";
    const int n = segments(rng);
    for (int i = 0; i < n; ++i) {
      path += "/";
      const int l = seg_len(rng);
      for (int j = 0; j < l; ++j) {
        path += static_cast<char>(letter(rng));
      }
    }
    const std::string wire =
        "GET " + path + " HTTP/1.1\r\nHost: prop\r\nX-Trial: " +
        std::to_string(trial) + "\r\n\r\n";
    ByteBuffer buf{std::string_view(wire)};
    http::HttpRequest request;
    ASSERT_EQ(http::parse_request(buf, request),
              http::ParseOutcome::kComplete);
    EXPECT_EQ(request.path, path);
    EXPECT_EQ(request.header_or("x-trial"), std::to_string(trial));
    EXPECT_TRUE(buf.empty());
  }
}

TEST(ParserProperty, SplitAtEveryBytePositionStillParses) {
  // Feed a request byte-by-byte: at no prefix may the parser consume, and
  // at the end it must produce exactly the same request.
  const std::string wire =
      "GET /a/b.html HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nxyz";
  ByteBuffer buf;
  http::HttpRequest request;
  for (size_t i = 0; i < wire.size(); ++i) {
    buf.append(wire.substr(i, 1));
    const auto outcome = http::parse_request(buf, request);
    if (i + 1 < wire.size()) {
      ASSERT_EQ(outcome, http::ParseOutcome::kIncomplete) << "at byte " << i;
    } else {
      ASSERT_EQ(outcome, http::ParseOutcome::kComplete);
    }
  }
  EXPECT_EQ(request.path, "/a/b.html");
  EXPECT_EQ(request.body, "xyz");
}

// ---- HTTP date round trip -------------------------------------------------------

TEST(HttpDateProperty, FormatParseRoundTrip) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<int64_t> ts(0, 4'000'000'000LL);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t t = ts(rng);
    EXPECT_EQ(http::parse_http_date(http::format_http_date(t)), t);
  }
}

TEST(HttpDateProperty, GarbageRejected) {
  EXPECT_EQ(http::parse_http_date(""), -1);
  EXPECT_EQ(http::parse_http_date("yesterday"), -1);
  EXPECT_EQ(http::parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT extra"), -1);
}

// ---- option presets on disk round-trip through the generator ----------------------

TEST(PresetFiles, OptionsFilesMatchBuiltinPresets) {
  const std::string presets = std::string(COPS_SOURCE_DIR) + "/presets";
  const auto tmpl = cops::gdp::make_nserver_template();
  struct Case {
    const char* file;
    cops::gdp::OptionSet builtin;
  };
  const Case cases[] = {
      {"/cops_http.options", cops::gdp::nserver_http_options()},
      {"/cops_ftp.options", cops::gdp::nserver_ftp_options()},
  };
  for (const auto& test_case : cases) {
    auto config = ConfigFile::load(presets + test_case.file);
    ASSERT_TRUE(config.is_ok()) << test_case.file;
    cops::gdp::OptionSet from_file;
    for (const auto& [key, value] : config.value().entries()) {
      from_file.set(key, value);
    }
    const auto full_file = tmpl.options().with_defaults(from_file);
    const auto full_builtin =
        tmpl.options().with_defaults(test_case.builtin);
    EXPECT_EQ(full_file.values(), full_builtin.values()) << test_case.file;
    EXPECT_TRUE(tmpl.options().validate(full_file).empty());
  }
}

// ---- generator determinism ---------------------------------------------------------

TEST(GeneratorProperty, RenderingIsDeterministic) {
  const auto tmpl = cops::gdp::make_nserver_template();
  const std::map<std::string, std::string> extras = {
      {"app_name", "Det"}, {"listen_port", "0"}};
  auto first = tmpl.render_all(cops::gdp::nserver_http_options(), extras);
  auto second = tmpl.render_all(cops::gdp::nserver_http_options(), extras);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value(), second.value());
}

TEST(GeneratorProperty, EveryLegalSingleOptionFlipStillRenders) {
  // Flip each option to each of its legal values from the HTTP baseline;
  // every combination that passes the constraints must render cleanly.
  const auto tmpl = cops::gdp::make_nserver_template();
  const std::map<std::string, std::string> extras = {
      {"app_name", "Flip"}, {"listen_port", "0"}};
  int rendered_count = 0;
  for (const auto& spec : tmpl.options().specs()) {
    std::vector<std::string> values;
    switch (spec.type) {
      case cops::gdp::OptionType::kBool:
        values = {"yes", "no"};
        break;
      case cops::gdp::OptionType::kEnum:
        values = spec.legal_values;
        break;
      case cops::gdp::OptionType::kInt:
        values = {std::to_string(spec.min_value),
                  std::to_string(spec.max_value)};
        break;
    }
    for (const auto& value : values) {
      auto options = cops::gdp::nserver_http_options();
      options.set(spec.key, value);
      const auto full = tmpl.options().with_defaults(options);
      if (!tmpl.options().validate(full).empty()) continue;  // constraint
      auto rendered = tmpl.render_all(options, extras);
      ASSERT_TRUE(rendered.is_ok())
          << spec.key << "=" << value << ": "
          << rendered.status().to_string();
      ++rendered_count;
    }
  }
  EXPECT_GT(rendered_count, 20);
}

}  // namespace
}  // namespace cops
