// Shared helpers for the proxy test layer: a scriptable HTTP/1.1 origin
// server that the streaming proxy (src/proxy) is pointed at.
//
// CopsHttpServer is the right origin when the scenario is "serve a file";
// the proxy's protocol-model tests need origins that misbehave on purpose —
// echo the request head back (so hop-by-hop stripping is observable), go
// silent after accepting (504 path), reply with garbage (502 + poisoning),
// or delay the body (drain-during-in-flight).  ScriptedBackend is that
// origin: one Reactor, a real parse of each request (head + CL/chunked
// body via the shared protocol library), and a responder callback that
// decides the reply bytes.  It runs identically over real sockets and under
// an installed SimEngine (where its timers ride the virtual clock).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/byte_buffer.hpp"
#include "common/clock.hpp"
#include "http/request_parser.hpp"
#include "http/response_parser.hpp"
#include "net/acceptor.hpp"
#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "tests/test_util.hpp"

namespace cops::test {

// At namespace scope (not nested) so it can be a defaulted constructor
// argument: a nested struct's member initializers are incomplete until the
// end of the enclosing class.
struct ScriptedBackendOptions {
  // When < SIZE_MAX, only this many response bytes go out immediately; the
  // remainder follows after `rest_delay` on the backend's reactor clock
  // (virtual under simnet) — an origin that stalls mid-body.
  size_t immediate_bytes = SIZE_MAX;
  Duration rest_delay = std::chrono::milliseconds(200);
  bool close_after_response = false;
};

class ScriptedBackend {
 public:
  struct Request {
    http::MessageHead head;
    std::string raw_head;  // verbatim header block incl. final CRLFCRLF
    std::string body;      // decoded (chunked bodies arrive de-framed)
  };

  // Full response bytes for one request.  An empty return means "never
  // respond" (black hole): the connection stays open and silent.
  using Responder = std::function<std::string(const Request&)>;

  using Options = ScriptedBackendOptions;

  explicit ScriptedBackend(uint16_t port, Responder responder,
                           Options options = {})
      : responder_(std::move(responder)), options_(options) {
    acceptor_ = std::make_unique<net::Acceptor>(
        reactor_, [this](net::TcpSocket socket) { on_accept(std::move(socket)); });
    auto addr = net::InetAddress::parse("127.0.0.1", port);
    auto status = acceptor_->open(addr.value(), 64);
    ok_ = status.is_ok();
    if (ok_) {
      if (auto local = acceptor_->local_address(); local.is_ok()) {
        port_ = local.value().port();
      }
      reactor_.start_thread("scripted-backend");
      launched_ = true;
    }
  }

  ~ScriptedBackend() { stop(); }
  ScriptedBackend(const ScriptedBackend&) = delete;
  ScriptedBackend& operator=(const ScriptedBackend&) = delete;

  void stop() {
    if (!launched_) return;
    launched_ = false;
    std::promise<void> closed;
    reactor_.post([this, &closed] {
      acceptor_->close();
      for (auto& [id, conn] : conns_) {
        if (conn->sock.valid()) {
          reactor_.deregister(conn->sock.fd());
          conn->sock.close();
        }
      }
      conns_.clear();
      closed.set_value();
    });
    closed.get_future().wait();
    reactor_.stop();
    reactor_.join();
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] uint64_t accepted() const { return accepted_.load(); }
  [[nodiscard]] uint64_t requests_seen() const { return requests_.load(); }

 private:
  struct Conn : net::EventHandler {
    Conn(ScriptedBackend& owner, uint64_t id, net::TcpSocket s)
        : backend(owner), conn_id(id), sock(std::move(s)) {}

    void handle_event(int /*fd*/, uint32_t readiness) override {
      if ((readiness & net::kErrored) != 0) {
        backend.drop(conn_id);
        return;
      }
      if ((readiness & net::kWritable) != 0 && !backend.flush(*this)) return;
      if ((readiness & net::kReadable) != 0) backend.on_readable(*this);
    }

    ScriptedBackend& backend;
    uint64_t conn_id;
    net::TcpSocket sock;
    ByteBuffer in;
    Request request;
    bool head_done = false;
    uint64_t cl_remaining = 0;
    http::ChunkedDecoder chunker;
    std::string out;
    bool close_when_drained = false;
  };

  void on_accept(net::TcpSocket socket) {
    accepted_.fetch_add(1);
    const uint64_t id = next_id_++;
    auto conn = std::make_unique<Conn>(*this, id, std::move(socket));
    const int fd = conn->sock.fd();
    Conn* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    reactor_.register_handler(fd, raw, net::kReadable);
  }

  void on_readable(Conn& conn) {
    auto read = conn.sock.read(conn.in);
    if (!read.is_ok()) {
      if (read.status().code() != StatusCode::kWouldBlock) drop(conn.conn_id);
      return;
    }
    // Parse as many complete requests as the buffer holds (the proxy may
    // pipeline the next request onto a kept-alive connection).
    while (true) {
      if (!conn.head_done) {
        const size_t head_end = conn.in.find("\r\n\r\n");
        if (head_end == std::string::npos) return;
        conn.request.raw_head =
            std::string(conn.in.view().substr(0, head_end + 4));
        http::StatusCode reject = http::StatusCode::kBadRequest;
        const auto parsed = http::parse_request_head(
            conn.in, conn.request.head, limits_, &reject);
        if (parsed != http::HeadParseStatus::kOk) {
          drop(conn.conn_id);
          return;
        }
        conn.head_done = true;
        conn.cl_remaining = conn.request.head.content_length;
        conn.chunker.reset();
        conn.request.body.clear();
      }
      switch (conn.request.head.delim) {
        case http::BodyDelim::kContentLength: {
          const auto view = conn.in.view();
          const size_t take =
              std::min<uint64_t>(conn.cl_remaining, view.size());
          conn.request.body.append(view.substr(0, take));
          conn.in.consume(take);
          conn.cl_remaining -= take;
          if (conn.cl_remaining > 0) return;
          break;
        }
        case http::BodyDelim::kChunked: {
          size_t consumed = 0;
          const auto status = conn.chunker.feed(conn.in.view(), &consumed,
                                                conn.request.body, limits_);
          conn.in.consume(consumed);
          if (status == http::ChunkedDecoder::Status::kNeedMore) return;
          if (status != http::ChunkedDecoder::Status::kDone) {
            drop(conn.conn_id);
            return;
          }
          break;
        }
        default:
          break;
      }
      requests_.fetch_add(1);
      const std::string reply = responder_(conn.request);
      conn.head_done = false;
      if (reply.empty()) continue;  // black hole: swallow and stay silent
      if (options_.immediate_bytes < reply.size()) {
        conn.out += reply.substr(0, options_.immediate_bytes);
        const std::string rest = reply.substr(options_.immediate_bytes);
        const uint64_t id = conn.conn_id;
        reactor_.run_after(options_.rest_delay, [this, id, rest] {
          auto it = conns_.find(id);
          if (it == conns_.end()) return;
          it->second->out += rest;
          if (options_.close_after_response) {
            it->second->close_when_drained = true;
          }
          if (!flush(*it->second)) return;
          update_interest(*it->second);
        });
      } else {
        conn.out += reply;
        if (options_.close_after_response) conn.close_when_drained = true;
      }
      if (!flush(conn)) return;
    }
  }

  // Returns false when the connection was dropped.
  bool flush(Conn& conn) {
    while (!conn.out.empty()) {
      auto sent = conn.sock.write(std::string_view(conn.out));
      if (!sent.is_ok()) {
        if (sent.status().code() == StatusCode::kWouldBlock) break;
        drop(conn.conn_id);
        return false;
      }
      conn.out.erase(0, sent.value());
    }
    if (conn.out.empty() && conn.close_when_drained) {
      drop(conn.conn_id);
      return false;
    }
    update_interest(conn);
    return true;
  }

  void update_interest(Conn& conn) {
    uint32_t interest = net::kReadable;
    if (!conn.out.empty()) interest |= net::kWritable;
    reactor_.update_interest(conn.sock.fd(), interest);
  }

  void drop(uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    if (it->second->sock.valid()) {
      reactor_.deregister(it->second->sock.fd());
      it->second->sock.close();
    }
    // Deferred erase: drop() may be reached from inside the connection's
    // own handle_event frame.
    reactor_.post([this, id] { conns_.erase(id); });
  }

  Responder responder_;
  Options options_;
  http::ParseLimits limits_;
  net::Reactor reactor_;
  std::unique_ptr<net::Acceptor> acceptor_;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_id_ = 1;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<bool> launched_{false};
  uint16_t port_ = 0;
  bool ok_ = false;
};

// Canned origin replies.
inline std::string simple_response(const std::string& body,
                                   bool keep_alive = true,
                                   const std::string& extra_headers = "") {
  return "HTTP/1.1 200 OK\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\n" + extra_headers +
         (keep_alive ? "" : "Connection: close\r\n") + "\r\n" + body;
}

inline std::string chunked_response(const std::string& body,
                                    size_t chunk_bytes = 7) {
  std::string reply = "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n";
  for (size_t at = 0; at < body.size(); at += chunk_bytes) {
    const std::string chunk = body.substr(at, chunk_bytes);
    char size_line[16];
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n", chunk.size());
    reply += size_line;
    reply += chunk;
    reply += "\r\n";
  }
  reply += "0\r\n\r\n";
  return reply;
}

}  // namespace cops::test
