// Behavioural tests of the five-step pipeline, RequestContext resolutions,
// the Client Component (connect_peer), event scheduling end-to-end, and
// overload control end-to-end.
#include <gtest/gtest.h>

#include <thread>

#include "nserver/request_context.hpp"
#include "nserver/server.hpp"
#include "tests/test_util.hpp"

namespace cops::nserver {
namespace {

// Line-echo hooks with instrumentation knobs.
class ProbeHooks : public AppHooks {
 public:
  std::atomic<int> connects{0};
  std::atomic<int> closes{0};
  std::atomic<int> handled{0};
  std::atomic<int> encoded{0};
  // When set, handle() resolves with finish() instead of replying.
  std::atomic<bool> silent{false};
  // When set, handle() defers its reply through an extra thread hop.
  std::atomic<bool> defer{false};
  // Artificial per-request handle cost.
  std::atomic<int> handle_delay_ms{0};
  std::function<int(const std::string&)> classify;

  void on_connect(RequestContext& ctx) override {
    connects.fetch_add(1);
    ctx.send("HELLO\n");
  }
  void on_close(uint64_t) override { closes.fetch_add(1); }

  DecodeResult decode(RequestContext&, ByteBuffer& in) override {
    const size_t eol = in.find("\n");
    if (eol == std::string_view::npos) return DecodeResult::need_more();
    std::string line(in.view().substr(0, eol));
    in.consume(eol + 1);
    const int priority = classify ? classify(line) : 0;
    return DecodeResult::request_ready(std::move(line), priority);
  }

  void handle(RequestContext& ctx, std::any request) override {
    handled.fetch_add(1);
    if (handle_delay_ms.load() > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(handle_delay_ms.load()));
    }
    auto line = std::any_cast<std::string>(std::move(request));
    if (silent.load()) {
      ctx.finish();
      return;
    }
    if (line == "CLOSE") {
      ctx.close_after_reply();
      ctx.reply(std::string("BYE"));
      return;
    }
    if (defer.load()) {
      // Resolve from a foreign thread — contexts are thread-safe carriers.
      // Resolution responsibility transfers to the handle; this context is
      // dropped unresolved.
      auto deferred = ctx.make_handle();
      std::thread([deferred, line] {
        deferred->reply(std::string("DEFER:") + line);
      }).detach();
      return;
    }
    ctx.reply(std::string("ECHO:") + line);
  }

  std::string encode(RequestContext&, std::any response) override {
    encoded.fetch_add(1);
    return std::any_cast<std::string>(std::move(response)) + "\n";
  }
};

class PipelineFixture : public ::testing::Test {
 protected:
  void start(ServerOptions options = {}) {
    hooks_ = std::make_shared<ProbeHooks>();
    options.listen_port = 0;
    server_ = std::make_unique<Server>(options, hooks_);
    auto status = server_->start();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }
  void TearDown() override {
    if (server_) server_->stop();
  }

  std::shared_ptr<ProbeHooks> hooks_;
  std::unique_ptr<Server> server_;
};

TEST_F(PipelineFixture, GreetingAndEcho) {
  start();
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
  EXPECT_EQ(client.read_until("HELLO\n").substr(0, 6), "HELLO\n");
  client.send_all("abc\n");
  EXPECT_NE(client.read_until("ECHO:abc\n").find("ECHO:abc"),
            std::string::npos);
  EXPECT_EQ(hooks_->connects.load(), 1);
}

TEST_F(PipelineFixture, OnCloseFiresWhenPeerDisconnects) {
  start();
  {
    test::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    client.read_until("HELLO\n");
  }
  for (int i = 0; i < 300 && hooks_->closes.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(hooks_->closes.load(), 1);
  EXPECT_EQ(server_->connection_count(), 0u);
}

TEST_F(PipelineFixture, CloseAfterReplySendsThenCloses) {
  start();
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
  client.read_until("HELLO\n");
  client.send_all("CLOSE\n");
  const auto data = client.read_some();  // reads until server closes
  EXPECT_NE(data.find("BYE"), std::string::npos);
  for (int i = 0; i < 300 && server_->connection_count() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server_->connection_count(), 0u);
}

TEST_F(PipelineFixture, FinishWithoutReplyKeepsConnectionUsable) {
  start();
  hooks_->silent = true;
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
  client.read_until("HELLO\n");
  client.send_all("one\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hooks_->silent = false;
  client.send_all("two\n");
  EXPECT_NE(client.read_until("ECHO:two\n").find("ECHO:two"),
            std::string::npos);
  EXPECT_EQ(hooks_->handled.load(), 2);
}

TEST_F(PipelineFixture, DeferredReplyFromForeignThread) {
  start();
  hooks_->defer = true;
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
  client.read_until("HELLO\n");
  client.send_all("x\n");
  EXPECT_NE(client.read_until("DEFER:x\n").find("DEFER:x"),
            std::string::npos);
}

TEST_F(PipelineFixture, PipelinedLinesAllEchoed) {
  start();
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
  client.read_until("HELLO\n");
  client.send_all("a\nb\nc\n");
  const auto data = client.read_until("ECHO:c\n");
  EXPECT_NE(data.find("ECHO:a\n"), std::string::npos);
  EXPECT_NE(data.find("ECHO:b\n"), std::string::npos);
  EXPECT_NE(data.find("ECHO:c\n"), std::string::npos);
}

TEST_F(PipelineFixture, LargeReplySurvivesBackpressure) {
  // A reply far larger than the socket buffer must drain via writable
  // events while the client reads slowly.
  start();
  hooks_->classify = nullptr;
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
  client.read_until("HELLO\n");
  // Swap hooks behaviour: echo a megabyte.
  hooks_->silent = false;
  std::string big(1024 * 1024, 'z');
  client.send_all(big.substr(0, 100) + "\n");  // request is small
  // Server echoes 100 z's; now ask again with server-side inflation instead:
  // reuse echo but send many pipelined lines to build a large outbound sum.
  std::string burst;
  for (int i = 0; i < 2000; ++i) burst += "0123456789012345678901234567890123456789\n";
  client.send_all(burst);
  size_t received = 0;
  const size_t expected = 2000u * 46u;  // "ECHO:" + 40 chars + '\n'
  char buf[8192];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (received < expected &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(client.fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    received += static_cast<size_t>(n);
    std::this_thread::sleep_for(std::chrono::microseconds(200));  // slow reader
  }
  EXPECT_GE(received, expected);
}

// ---- Client Component -------------------------------------------------------

TEST_F(PipelineFixture, ConnectPeerEstablishesOutboundCommunicator) {
  start();
  // Raw peer the server connects out to.
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(0), 8);
  ASSERT_TRUE(listener.is_ok());
  const uint16_t peer_port = listener.value().local_address().value().port();

  std::atomic<uint64_t> conn_id{0};
  std::atomic<bool> failed{false};
  server_->connect_peer(net::InetAddress::loopback(peer_port),
                        [&](Result<uint64_t> id) {
                          if (id.is_ok()) {
                            conn_id = id.value();
                          } else {
                            failed = true;
                          }
                        });
  // Accept on the raw side.
  Result<net::TcpSocket> accepted = Status::would_block();
  for (int i = 0; i < 2000 && !accepted.is_ok(); ++i) {
    accepted = listener.value().accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(accepted.is_ok());
  ASSERT_FALSE(failed.load());
  for (int i = 0; i < 1000 && conn_id.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(conn_id.load(), 0u);
  EXPECT_EQ(server_->connection_count(), 1u);

  // The outbound connection runs the same hooks: greeting arrives...
  ByteBuffer in;
  for (int i = 0; i < 1000 && in.find("HELLO\n") == std::string_view::npos;
       ++i) {
    auto n = accepted.value().read(in);
    (void)n;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_NE(in.find("HELLO\n"), std::string_view::npos);
  in.clear();

  // ...and requests sent by the peer are decoded/handled/encoded.
  ByteBuffer out{std::string_view("ping\n")};
  ASSERT_TRUE(accepted.value().write(out).is_ok());
  for (int i = 0; i < 1000 && in.find("ECHO:ping\n") == std::string_view::npos;
       ++i) {
    auto n = accepted.value().read(in);
    (void)n;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_NE(in.find("ECHO:ping\n"), std::string_view::npos);
}

TEST_F(PipelineFixture, ConnectPeerFailureReported) {
  start();
  uint16_t dead_port = 0;
  {
    auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
    ASSERT_TRUE(listener.is_ok());
    dead_port = listener.value().local_address().value().port();
  }
  std::atomic<bool> failed{false};
  server_->connect_peer(net::InetAddress::loopback(dead_port),
                        [&](Result<uint64_t> id) {
                          failed = !id.is_ok();
                        });
  for (int i = 0; i < 1000 && !failed.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(failed.load());
  EXPECT_EQ(server_->connection_count(), 0u);
}

// ---- event scheduling end-to-end ------------------------------------------------

TEST_F(PipelineFixture, SchedulingPrioritizesUrgentRequests) {
  ServerOptions options;
  options.event_scheduling = true;
  options.priority_quotas = {100, 1};
  options.processor_threads = 1;  // serialize to make ordering observable
  start(options);
  hooks_->classify = [](const std::string& line) {
    return line.rfind("urgent", 0) == 0 ? 0 : 1;
  };
  hooks_->handle_delay_ms = 5;

  // One slow stream of normal requests from client A keeps the worker busy;
  // client B's urgent request must overtake A's queued backlog.
  test::BlockingClient a;
  ASSERT_TRUE(a.connect("127.0.0.1", server_->port()));
  a.read_until("HELLO\n");
  std::string backlog;
  for (int i = 0; i < 20; ++i) {
    backlog += "normal" + std::to_string(i) + "\n";
  }
  a.send_all(backlog);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));

  test::BlockingClient b;
  ASSERT_TRUE(b.connect("127.0.0.1", server_->port()));
  b.read_until("HELLO\n");
  const auto t0 = std::chrono::steady_clock::now();
  b.send_all("urgent\n");
  b.read_until("ECHO:urgent\n", 5000);
  const auto urgent_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  // Without priorities the urgent request would wait behind ~20 * 5 ms of
  // per-connection sequential backlog... but requests of one connection are
  // serialized; the backlog consists of A's pipeline. B's urgent request
  // needs only ~1-2 service slots.
  EXPECT_LT(urgent_ms, 60) << "urgent request waited behind normal backlog";
}

// ---- overload control end-to-end --------------------------------------------------

TEST_F(PipelineFixture, OverloadSuspendsAndResumesAccepting) {
  ServerOptions options;
  options.overload_control = true;
  options.queue_high_watermark = 3;
  options.queue_low_watermark = 1;
  options.housekeeping_interval = std::chrono::milliseconds(10);
  options.processor_threads = 1;
  start(options);
  hooks_->handle_delay_ms = 30;

  // Flood with pipelined requests from one connection to back up the queue.
  test::BlockingClient flooder;
  ASSERT_TRUE(flooder.connect("127.0.0.1", server_->port()));
  flooder.read_until("HELLO\n");
  std::string burst;
  for (int i = 0; i < 30; ++i) burst += "work\n";
  flooder.send_all(burst);

  // Wait for the controller to trip.
  bool suspended = false;
  for (int i = 0; i < 500; ++i) {
    if (!server_->accepting()) {
      suspended = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Note: a single connection's requests are serialized, so the queue
  // depth stays near 1 — build pressure with several connections instead.
  if (!suspended) {
    std::vector<std::unique_ptr<test::BlockingClient>> clients;
    for (int c = 0; c < 8; ++c) {
      auto client = std::make_unique<test::BlockingClient>();
      ASSERT_TRUE(client->connect("127.0.0.1", server_->port()));
      client->send_all("work\nwork\nwork\n");
      clients.push_back(std::move(client));
    }
    for (int i = 0; i < 1000; ++i) {
      if (!server_->accepting()) {
        suspended = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(suspended);
    clients.clear();
  }
  // After the backlog drains the acceptor resumes.
  for (int i = 0; i < 2000 && !server_->accepting(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(server_->accepting());
}

// ---- graceful drain -----------------------------------------------------------------

TEST_F(PipelineFixture, DrainWaitsForInFlightWork) {
  start();
  hooks_->handle_delay_ms = 50;
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
  client.read_until("HELLO\n");
  client.send_all("slow\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // in-flight
  const bool idle = server_->drain(std::chrono::seconds(3));
  EXPECT_TRUE(idle);
  // The in-flight request was answered before shutdown.
  const auto data = client.read_some();
  EXPECT_NE(data.find("ECHO:slow"), std::string::npos);
}

TEST_F(PipelineFixture, DrainTimesOutOnStuckWork) {
  start();
  hooks_->handle_delay_ms = 1500;
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
  client.read_until("HELLO\n");
  client.send_all("stuck\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(server_->drain(std::chrono::milliseconds(100)));
}

TEST(ServerLifecycle, FailedStartDoesNotHangOnDestruction) {
  ServerOptions options;
  options.dispatcher_threads = 0;  // invalid: start() must fail
  auto hooks = std::make_shared<ProbeHooks>();
  {
    Server server(options, hooks);
    EXPECT_FALSE(server.start().is_ok());
    EXPECT_TRUE(server.drain(std::chrono::milliseconds(10)));
    server.stop();  // must be a no-op, not a deadlock
  }                 // destructor must return promptly too
}

TEST(ServerLifecycle, PortAlreadyInUseFailsCleanly) {
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  ServerOptions options;
  options.listen_port = listener.value().local_address().value().port();
  auto hooks = std::make_shared<ProbeHooks>();
  Server server(options, hooks);
  EXPECT_FALSE(server.start().is_ok());
}

TEST_F(PipelineFixture, DrainOnIdleServerIsImmediate) {
  start();
  const auto begin = now();
  EXPECT_TRUE(server_->drain(std::chrono::seconds(5)));
  EXPECT_LT(to_millis(now() - begin), 1000);
}

// ---- multi-dispatcher (O1) stress --------------------------------------------------

TEST_F(PipelineFixture, MultiDispatcherShardsConnections) {
  ServerOptions options;
  options.dispatcher_threads = 3;
  start(options);
  constexpr int kClients = 12;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      test::BlockingClient client;
      if (!client.connect("127.0.0.1", server_->port())) return;
      client.read_until("HELLO\n");
      client.send_all("msg\n");
      if (client.read_until("ECHO:msg\n").find("ECHO:msg") !=
          std::string::npos) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
  for (int i = 0; i < 500 && server_->connection_count() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server_->connection_count(), 0u);
}

}  // namespace
}  // namespace cops::nserver
