// Request-path pooling tests (buffer_mgmt = pooled, option S2).
//
// Three layers:
//   1. Unit coverage of the slab/pool layer (SlabPool, BufferPool, Arena)
//      and of ByteBuffer storage adoption + HeaderMap arena reuse.
//   2. Pool behaviour under pressure: exhaustion grows the pool (counted as
//      misses), recycling turns subsequent traffic into hits.
//   3. Full-stack simnet differentials: the same seeded scenario, replayed
//      under chaos fault plans, must produce byte-identical reply streams
//      with buffer_mgmt=pooled and buffer_mgmt=per_request — pooling is a
//      pure optimisation with no observable protocol effect.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer_pool.hpp"
#include "common/byte_buffer.hpp"
#include "http/http_server.hpp"
#include "http/request.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

using std::chrono::milliseconds;

// ---- SlabPool ------------------------------------------------------------

TEST(SlabPoolTest, RecyclesBlocksAsHits) {
  SlabPool pool(256, /*blocks_per_chunk=*/4);
  void* a = pool.allocate(100);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.misses(), 1u);  // first allocation grew the pool
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.free_blocks(), 3u);

  pool.deallocate(a, 100);
  EXPECT_EQ(pool.free_blocks(), 4u);
  void* b = pool.allocate(256);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  pool.deallocate(b, 256);
}

TEST(SlabPoolTest, ExhaustionGrowsByWholeChunks) {
  SlabPool pool(64, /*blocks_per_chunk=*/2);
  std::vector<void*> blocks;
  for (int i = 0; i < 7; ++i) blocks.push_back(pool.allocate(64));
  // 7 live blocks from 2-block chunks: four growth steps, 8 blocks total.
  EXPECT_EQ(pool.misses(), 4u);
  EXPECT_EQ(pool.hits(), 3u);  // the second block of each grown chunk
  EXPECT_EQ(pool.free_blocks(), 1u);
  const uint64_t grown_bytes = pool.heap_bytes();
  EXPECT_GE(grown_bytes, 8u * 64u);

  for (void* b : blocks) pool.deallocate(b, 64);
  // Steady state: everything recycles, the heap footprint stays flat.
  for (int round = 0; round < 3; ++round) {
    std::vector<void*> again;
    for (int i = 0; i < 8; ++i) again.push_back(pool.allocate(64));
    for (void* b : again) pool.deallocate(b, 64);
  }
  EXPECT_EQ(pool.heap_bytes(), grown_bytes);
  EXPECT_EQ(pool.misses(), 4u);
}

TEST(SlabPoolTest, OversizeRequestsFallBackToHeap) {
  SlabPool pool(64);
  void* big = pool.allocate(1024);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.free_blocks(), 0u);  // never enters the freelist
  std::memset(big, 0xab, 1024);       // really is 1024 usable bytes
  pool.deallocate(big, 1024);
  EXPECT_EQ(pool.free_blocks(), 0u);
}

TEST(PoolAllocatorTest, AllocateSharedUsesTheSlab) {
  auto pool = std::make_shared<SlabPool>(256, 4);
  struct Payload {
    uint64_t a = 1;
    uint64_t b = 2;
  };
  {
    auto p = std::allocate_shared<Payload>(PoolAllocator<Payload>(pool));
    EXPECT_EQ(p->a + p->b, 3u);
    EXPECT_EQ(pool->misses() + pool->hits(), 1u);
  }
  // Destroyed object's block is recycled: the next one is a hit.
  auto q = std::allocate_shared<Payload>(PoolAllocator<Payload>(pool));
  EXPECT_GE(pool->hits(), 1u);
}

// ---- BufferPool ----------------------------------------------------------

TEST(BufferPoolTest, AcquireReleaseRecyclesCapacity) {
  BufferPool pool(4096, /*max_free=*/2);
  auto a = pool.acquire();
  EXPECT_GE(a.capacity(), 4096u);
  EXPECT_EQ(pool.misses(), 1u);
  // A buffer that grew while in use returns with its larger capacity.
  a.resize(64 * 1024);
  const size_t grown = a.capacity();
  pool.release(std::move(a));
  auto b = pool.acquire();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_GE(b.capacity(), grown);
  EXPECT_TRUE(b.empty());  // recycled buffers come back cleared
}

TEST(BufferPoolTest, FreeListIsBoundedAndUndersizedRejected) {
  BufferPool pool(4096, /*max_free=*/2);
  pool.release(std::vector<uint8_t>(8192));
  pool.release(std::vector<uint8_t>(8192));
  pool.release(std::vector<uint8_t>(8192));  // over max_free: dropped
  EXPECT_EQ(pool.free_buffers(), 2u);
  pool.release(std::vector<uint8_t>(16));  // under block size: dropped
  EXPECT_EQ(pool.free_buffers(), 2u);
}

// ---- Arena ---------------------------------------------------------------

TEST(ArenaTest, BumpAllocatesAlignedAndResetsInPlace) {
  Arena arena(256);
  void* a = arena.allocate(10, 8);
  void* b = arena.allocate(10, 8);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  // Overflow the first chunk; a second one is added.
  arena.allocate(300, 8);
  EXPECT_GE(arena.chunk_count(), 2u);
  const uint64_t footprint = arena.heap_bytes();

  // reset() recycles: the same sequence fits in the existing chunks.
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    arena.allocate(10, 8);
    arena.allocate(10, 8);
    arena.allocate(300, 8);
  }
  EXPECT_EQ(arena.heap_bytes(), footprint);
}

// ---- ByteBuffer storage adoption -----------------------------------------

TEST(ByteBufferAdoptTest, AdoptedStorageRoundTrips) {
  BufferPool pool(4096);
  ByteBuffer buffer;
  buffer.adopt_storage(pool.acquire());
  const char msg[] = "hello pooled world";
  buffer.append(msg, sizeof(msg) - 1);
  EXPECT_EQ(buffer.view(), "hello pooled world");
  buffer.consume(6);
  EXPECT_EQ(buffer.view(), "pooled world");

  auto storage = buffer.release_storage();
  EXPECT_GE(storage.capacity(), 4096u);
  EXPECT_EQ(buffer.readable(), 0u);  // buffer is reusable after release
  buffer.append("x", 1);
  EXPECT_EQ(buffer.view(), "x");
  pool.release(std::move(storage));
  EXPECT_EQ(pool.free_buffers(), 1u);
}

// ---- HeaderMap -----------------------------------------------------------

TEST(HeaderMapTest, LowercasesNamesAndLooksUpCaseInsensitively) {
  http::HeaderMap map;
  map.add("Content-Type", "text/html");
  map.add("X-MiXeD", "v");
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(0).name, "content-type");
  ASSERT_TRUE(map.get("CONTENT-TYPE").has_value());
  EXPECT_EQ(*map.get("content-type"), "text/html");
  EXPECT_EQ(*map.get("x-mixed"), "v");
  EXPECT_FALSE(map.get("missing").has_value());
}

TEST(HeaderMapTest, AppendToValueJoinsWithCommaSpace) {
  http::HeaderMap map;
  map.add("Accept", "text/html");
  map.append_to_value(0, "text/plain");
  EXPECT_EQ(*map.get("accept"), "text/html, text/plain");
}

TEST(HeaderMapTest, ResetKeepsNoEntriesAndEqualityIsOrdered) {
  http::HeaderMap a;
  http::HeaderMap b;
  a.add("One", "1");
  a.add("Two", "2");
  b.add("one", "1");
  b.add("two", "2");
  EXPECT_TRUE(a == b);
  b.reset();
  EXPECT_EQ(b.size(), 0u);
  EXPECT_FALSE(a == b);
  b.add("two", "2");
  b.add("one", "1");
  EXPECT_FALSE(a == b);  // same pairs, different wire order
}

// ---- full-stack simnet differential --------------------------------------

// Replays a fixed multi-request keep-alive scenario (including a request
// line delivered byte-by-byte — the short-read split case) through the full
// COPS-HTTP stack over the simulated network and returns the client's
// received byte stream.
std::string run_scenario(uint64_t seed, const simnet::FaultPlan& plan,
                         nserver::BufferMgmt buffer_mgmt,
                         size_t read_buffer_block_bytes = 16 * 1024,
                         bool* closed_out = nullptr) {
  simnet::SimEngine engine(seed, plan);

  test::TempDir dir;
  dir.write_file("a.txt", "alpha file: the quick brown fox\n");
  std::string big;
  for (int i = 0; i < 2000; ++i) big += static_cast<char>('A' + (i * 7) % 26);
  dir.write_file("b.bin", big);
  // Pin the docroot mtimes: Last-Modified must not depend on which
  // wall-clock second this run created its files in, or the pooled and
  // per_request differential runs can straddle a second boundary.
  const auto fixed_mtime = std::chrono::file_clock::from_sys(
      std::chrono::sys_seconds(std::chrono::seconds(784111777)));
  std::filesystem::last_write_time(dir.path() / "a.txt", fixed_mtime);
  std::filesystem::last_write_time(dir.path() / "b.bin", fixed_mtime);

  auto options = http::CopsHttpServer::default_options();
  simnet::make_deterministic(options);
  options.listen_port = 8090;
  options.buffer_mgmt = buffer_mgmt;
  options.read_buffer_block_bytes = read_buffer_block_bytes;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  EXPECT_TRUE(started.is_ok()) << started.to_string();

  const std::string wire =
      "GET /a.txt HTTP/1.1\r\nHost: sim\r\n\r\n"
      "GET /b.bin HTTP/1.1\r\nHost: sim\r\n\r\n"
      "HEAD /a.txt HTTP/1.1\r\nHost: sim\r\n\r\n"
      "GET /missing.txt HTTP/1.1\r\nHost: sim\r\n\r\n"
      "GET /a.txt HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n";

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  // Deliver the first request line one byte at a time (every parse sees an
  // incomplete request and must re-examine the buffer), then the rest in
  // seeded random segments.
  const size_t drip = std::strlen("GET /a.txt HTTP/1.1\r\n");
  int when_ms = 2;
  for (size_t i = 0; i < drip; ++i) {
    const std::string piece(1, wire[i]);
    engine.at(milliseconds(when_ms++), [client, piece] {
      client->send(piece);
    });
  }
  std::mt19937_64 rng(seed);
  size_t pos = drip;
  while (pos < wire.size()) {
    const size_t chunk = 1 + rng() % (wire.size() - pos);
    const std::string piece = wire.substr(pos, chunk);
    engine.at(milliseconds(when_ms), [client, piece] { client->send(piece); });
    pos += chunk;
    when_ms += static_cast<int>(rng() % 3);
  }

  EXPECT_TRUE(engine.run(std::chrono::seconds(120)))
      << "scenario did not quiesce\n"
      << engine.trace_text();
  server.stop();
  EXPECT_TRUE(engine.failures().empty());
  if (closed_out != nullptr) *closed_out = client->peer_closed();
  return client->received();
}

class RequestPathDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(RequestPathDifferentialTest, PooledRepliesAreByteIdentical) {
  const auto seed = static_cast<uint64_t>(GetParam());
  SCOPED_TRACE("seed=" + std::to_string(seed));
  bool pooled_closed = false;
  bool per_request_closed = false;
  const std::string pooled =
      run_scenario(seed, simnet::FaultPlan::chaos(),
                   nserver::BufferMgmt::kPooled, 16 * 1024, &pooled_closed);
  const std::string per_request = run_scenario(
      seed, simnet::FaultPlan::chaos(), nserver::BufferMgmt::kPerRequest,
      16 * 1024, &per_request_closed);
  ASSERT_FALSE(pooled.empty());
  EXPECT_EQ(pooled, per_request)
      << "buffer_mgmt must not change a single reply byte";
  EXPECT_TRUE(pooled_closed);
  EXPECT_EQ(pooled_closed, per_request_closed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequestPathDifferentialTest,
                         ::testing::Range(1, 7),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// A read-buffer block far smaller than the requests forces the adopted
// storage to grow mid-request under chaos segmentation — the pool-miss
// growth path.  Replies must still be byte-identical to per_request.
TEST(RequestPathDifferentialTest, TinyPooledBlocksGrowAndStayCorrect) {
  bool closed = false;
  const std::string pooled =
      run_scenario(99, simnet::FaultPlan::chaos(),
                   nserver::BufferMgmt::kPooled, /*block=*/32, &closed);
  const std::string per_request =
      run_scenario(99, simnet::FaultPlan::chaos(),
                   nserver::BufferMgmt::kPerRequest);
  ASSERT_FALSE(pooled.empty());
  EXPECT_EQ(pooled, per_request);
  EXPECT_TRUE(closed);
}

// Pool counters actually move on the live server: serve traffic pooled and
// expect hits + misses > 0 via the profiler aggregation.
TEST(RequestPathPoolCountersTest, ProfileAggregatesPoolTraffic) {
  simnet::SimEngine engine(7, simnet::FaultPlan::none());
  test::TempDir dir;
  dir.write_file("a.txt", "alpha\n");

  auto options = http::CopsHttpServer::default_options();
  simnet::make_deterministic(options);
  options.listen_port = 8090;
  options.profiling = true;
  options.buffer_mgmt = nserver::BufferMgmt::kPooled;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  ASSERT_TRUE(server.start().is_ok());

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  engine.at(milliseconds(2), [client] {
    client->send("GET /a.txt HTTP/1.1\r\nHost: sim\r\n\r\n");
  });
  engine.at(milliseconds(5), [client] {
    client->send(
        "GET /a.txt HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n");
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(120)));

  const auto profile = server.server().profile();
  server.stop();
  // The connection's read buffer and each request's context came from the
  // shard pools.
  EXPECT_GT(profile.pool_hits + profile.pool_misses, 0u);
  EXPECT_GT(profile.pool_alloc_bytes, 0u);
}

}  // namespace
}  // namespace cops
