// Remaining coverage: the logger, the poller, the /server-status endpoint,
// socket edge cases, and RequestContext double-resolution behaviour.
#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "common/logging.hpp"
#include "http/http_server.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

// ---- Logger ------------------------------------------------------------------

TEST(Logger, LevelGatesOutput) {
  auto& logger = Logger::instance();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kWarn);  // restore default
}

TEST(Logger, WritesToFile) {
  test::TempDir dir;
  const std::string path = dir.str() + "/app.log";
  auto& logger = Logger::instance();
  logger.set_output(path);
  logger.set_level(LogLevel::kInfo);
  COPS_INFO("hello from the test " << 42);
  logger.set_output("");  // back to stderr, flushes + closes file
  logger.set_level(LogLevel::kWarn);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("hello from the test 42"), std::string::npos);
  EXPECT_NE(contents.find("INFO"), std::string::npos);
}

// ---- Poller ------------------------------------------------------------------

TEST(Poller, AddModifyRemove) {
  net::Poller poller;
  ASSERT_TRUE(poller.valid());
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  EXPECT_TRUE(poller.add(listener.value().fd(), net::kReadable).is_ok());
  EXPECT_TRUE(poller.modify(listener.value().fd(), net::kWritable).is_ok());
  EXPECT_TRUE(poller.remove(listener.value().fd()).is_ok());
  // Double remove fails cleanly.
  EXPECT_FALSE(poller.remove(listener.value().fd()).is_ok());
}

TEST(Poller, ReportsReadableOnPendingConnection) {
  net::Poller poller;
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  ASSERT_TRUE(poller.add(listener.value().fd(), net::kReadable).is_ok());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect(
      "127.0.0.1", listener.value().local_address().value().port()));
  std::vector<net::ReadyFd> ready;
  auto n = poller.wait(ready, 1000);
  ASSERT_TRUE(n.is_ok());
  ASSERT_EQ(n.value(), 1u);
  EXPECT_EQ(ready[0].fd, listener.value().fd());
  EXPECT_TRUE((ready[0].events & net::kReadable) != 0);
}

TEST(Poller, TimeoutReturnsZero) {
  net::Poller poller;
  std::vector<net::ReadyFd> ready;
  const auto start = now();
  auto n = poller.wait(ready, 30);
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 0u);
  EXPECT_GE(to_millis(now() - start), 25);
}

// ---- /server-status endpoint ---------------------------------------------------

TEST(StatusEndpoint, ReportsLiveCounters) {
  test::TempDir docs;
  docs.write_file("page.html", "content");
  auto options = http::CopsHttpServer::default_options();
  options.profiling = true;  // O11 feeds the page
  http::HttpServerConfig config;
  config.doc_root = docs.str();
  config.status_endpoint = "/server-status";
  http::CopsHttpServer server(options, config);
  ASSERT_TRUE(server.start().is_ok());

  for (int i = 0; i < 3; ++i) {
    test::http_get(server.port(), "/page.html");
  }
  const auto status_page = test::http_get(server.port(), "/server-status");
  EXPECT_NE(status_page.find("200 OK"), std::string::npos);
  EXPECT_NE(status_page.find("COPS-HTTP server status"), std::string::npos);
  EXPECT_NE(status_page.find("accepted="), std::string::npos);
  EXPECT_NE(status_page.find("responses_sent="), std::string::npos);
  // Counters moved: at least the three page fetches.
  EXPECT_EQ(status_page.find("accepted=0 "), std::string::npos);
  server.stop();
}

TEST(StatusEndpoint, DisabledPathFallsThroughTo404) {
  test::TempDir docs;
  http::HttpServerConfig config;
  config.doc_root = docs.str();  // no status_endpoint configured
  http::CopsHttpServer server(http::CopsHttpServer::default_options(),
                              config);
  ASSERT_TRUE(server.start().is_ok());
  EXPECT_NE(test::http_get(server.port(), "/server-status").find("404"),
            std::string::npos);
  server.stop();
}

// ---- socket edge cases ----------------------------------------------------------

TEST(Socket, WriteToClosedPeerReportsClosed) {
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect(
      "127.0.0.1", listener.value().local_address().value().port()));
  Result<net::TcpSocket> accepted = Status::would_block();
  for (int i = 0; i < 200 && !accepted.is_ok(); ++i) {
    accepted = listener.value().accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(accepted.is_ok());
  client.close();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // First write may succeed (fills the kernel buffer of a dead peer);
  // repeated writes must surface kClosed, never crash (SIGPIPE suppressed).
  Status last = Status::ok();
  for (int i = 0; i < 50; ++i) {
    ByteBuffer out{std::string_view("data after close")};
    auto n = accepted.value().write(out);
    if (!n.is_ok()) {
      last = n.status();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(last.code(), StatusCode::kClosed);
}

TEST(Socket, LocalAndPeerAddress) {
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  const uint16_t port = listener.value().local_address().value().port();
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port));
  Result<net::TcpSocket> accepted = Status::would_block();
  for (int i = 0; i < 200 && !accepted.is_ok(); ++i) {
    accepted = listener.value().accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(accepted.is_ok());
  auto local = accepted.value().local_address();
  auto peer = accepted.value().peer_address();
  ASSERT_TRUE(local.is_ok());
  ASSERT_TRUE(peer.is_ok());
  EXPECT_EQ(local.value().port(), port);
  EXPECT_EQ(local.value().host(), "127.0.0.1");
  EXPECT_EQ(peer.value().host(), "127.0.0.1");
}

}  // namespace
}  // namespace cops
