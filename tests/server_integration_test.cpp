// End-to-end integration tests: a real COPS-HTTP server on loopback,
// exercised across the option space (Table 1 configurations).
#include <gtest/gtest.h>

#include <thread>

#include "baseline/threaded_server.hpp"
#include "http/http_server.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

using http::CopsHttpServer;
using http::HttpServerConfig;
using nserver::ServerOptions;

class HttpServerFixture : public ::testing::Test {
 protected:
  void start_server(ServerOptions options, HttpServerConfig config = {}) {
    docs_ = std::make_unique<test::TempDir>();
    docs_->write_file("index.html", "<html>home</html>");
    docs_->write_file("a/page.html", std::string(2000, 'p'));
    docs_->write_file("big.bin", std::string(300000, 'B'));
    if (config.doc_root == ".") config.doc_root = docs_->str();
    options.listen_port = 0;
    server_ = std::make_unique<CopsHttpServer>(std::move(options),
                                               std::move(config));
    auto status = server_->start();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    port_ = server_->port();
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::unique_ptr<test::TempDir> docs_;
  std::unique_ptr<CopsHttpServer> server_;
  uint16_t port_ = 0;
};

TEST_F(HttpServerFixture, ServesFileWithDefaults) {
  start_server(CopsHttpServer::default_options());
  const auto response = test::http_get(port_, "/index.html");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("<html>home</html>"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/html"), std::string::npos);
}

TEST_F(HttpServerFixture, DirectoryServesIndex) {
  start_server(CopsHttpServer::default_options());
  const auto response = test::http_get(port_, "/");
  EXPECT_NE(response.find("<html>home</html>"), std::string::npos);
}

TEST_F(HttpServerFixture, MissingFileIs404) {
  start_server(CopsHttpServer::default_options());
  const auto response = test::http_get(port_, "/nope.html");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos);
}

TEST_F(HttpServerFixture, TraversalRejected) {
  start_server(CopsHttpServer::default_options());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  client.send_all("GET /../secret HTTP/1.1\r\nHost: t\r\n\r\n");
  // The sanitized path is empty → malformed → connection closed (no leak).
  const auto response = client.read_some();
  EXPECT_EQ(response.find("200 OK"), std::string::npos);
}

TEST_F(HttpServerFixture, LargeFileDeliveredCompletely) {
  start_server(CopsHttpServer::default_options());
  const auto response = test::http_get(port_, "/big.bin");
  const auto body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(response.size() - body_at - 4, 300000u);
}

TEST_F(HttpServerFixture, KeepAliveServesSequentialRequests) {
  start_server(CopsHttpServer::default_options());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  for (int i = 0; i < 5; ++i) {
    const auto response = test::http_get(port_, "/a/page.html", true, &client);
    ASSERT_NE(response.find("200 OK"), std::string::npos) << "request " << i;
  }
}

TEST_F(HttpServerFixture, PipelinedRequestsAllAnswered) {
  start_server(CopsHttpServer::default_options());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  std::string burst;
  for (int i = 0; i < 3; ++i) {
    burst += "GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n";
  }
  ASSERT_TRUE(client.send_all(burst));
  std::string all;
  for (int i = 0; i < 50; ++i) {
    all += client.read_some(1, 100);
    size_t count = 0;
    size_t pos = 0;
    while ((pos = all.find("200 OK", pos)) != std::string::npos) {
      ++count;
      pos += 6;
    }
    if (count >= 3) break;
  }
  size_t count = 0;
  size_t pos = 0;
  while ((pos = all.find("200 OK", pos)) != std::string::npos) {
    ++count;
    pos += 6;
  }
  EXPECT_EQ(count, 3u);
}

TEST_F(HttpServerFixture, HeadOmitsBody) {
  start_server(CopsHttpServer::default_options());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  client.send_all("HEAD /index.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  const auto response = client.read_some();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 17"), std::string::npos);
  EXPECT_EQ(response.find("<html>"), std::string::npos);
}

TEST_F(HttpServerFixture, ConditionalGetReturns304) {
  start_server(CopsHttpServer::default_options());
  // First fetch: learn the Last-Modified stamp.
  const auto first = test::http_get(port_, "/index.html");
  const size_t at = first.find("Last-Modified: ");
  ASSERT_NE(at, std::string::npos);
  const std::string stamp = first.substr(at + 15, 29);

  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  client.send_all("GET /index.html HTTP/1.1\r\nHost: t\r\nIf-Modified-Since: " +
                  stamp + "\r\nConnection: close\r\n\r\n");
  const auto response = client.read_some();
  EXPECT_NE(response.find("304 Not Modified"), std::string::npos);
  EXPECT_EQ(response.find("<html>"), std::string::npos);
}

TEST_F(HttpServerFixture, StaleIfModifiedSinceGetsFullBody) {
  start_server(CopsHttpServer::default_options());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  client.send_all(
      "GET /index.html HTTP/1.1\r\nHost: t\r\n"
      "If-Modified-Since: Sun, 06 Nov 1994 08:49:37 GMT\r\n"
      "Connection: close\r\n\r\n");
  const auto response = client.read_some();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("<html>home</html>"), std::string::npos);
}

TEST_F(HttpServerFixture, MalformedIfModifiedSinceIgnored) {
  start_server(CopsHttpServer::default_options());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  client.send_all(
      "GET /index.html HTTP/1.1\r\nHost: t\r\n"
      "If-Modified-Since: not a date\r\nConnection: close\r\n\r\n");
  const auto response = client.read_some();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

TEST_F(HttpServerFixture, PostIs405) {
  start_server(CopsHttpServer::default_options());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  client.send_all(
      "POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\nConnection: "
      "close\r\n\r\nhi");
  EXPECT_NE(client.read_some().find("405"), std::string::npos);
}

TEST_F(HttpServerFixture, MalformedRequestClosesConnection) {
  start_server(CopsHttpServer::default_options());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  client.send_all("NONSENSE GARBAGE\r\n\r\n");
  EXPECT_EQ(client.read_some().find("200"), std::string::npos);
}

// ---- option-space coverage: the server works in every legal configuration --

struct OptionCase {
  const char* name;
  int dispatchers;
  bool pool;
  nserver::CompletionMode completion;
  nserver::ThreadAllocation alloc;
  nserver::CachePolicyKind cache;
  bool scheduling;
  bool overload;
  bool profiling;
  nserver::ServerMode mode;
};

class OptionMatrixTest : public HttpServerFixture,
                         public ::testing::WithParamInterface<OptionCase> {};

TEST_P(OptionMatrixTest, ServesUnderConfiguration) {
  const auto& param = GetParam();
  ServerOptions options = CopsHttpServer::default_options();
  options.dispatcher_threads = param.dispatchers;
  options.separate_processor_pool = param.pool;
  options.completion = param.completion;
  options.thread_allocation = param.alloc;
  options.cache_policy = param.cache;
  options.event_scheduling = param.scheduling;
  options.overload_control = param.overload;
  options.profiling = param.profiling;
  options.mode = param.mode;
  if (param.mode == nserver::ServerMode::kDebug) {
    options.debug_trace_path = "/tmp/cops_test_trace.log";
  }
  start_server(options);
  for (int i = 0; i < 3; ++i) {
    const auto response = test::http_get(port_, "/a/page.html");
    ASSERT_NE(response.find("200 OK"), std::string::npos)
        << param.name << " request " << i;
  }
  if (param.profiling) {
    const auto snap = server_->server().profile();
    EXPECT_GE(snap.connections_accepted, 3u);
    EXPECT_GT(snap.bytes_sent, 0u);
    EXPECT_GE(snap.requests_decoded, 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1Space, OptionMatrixTest,
    ::testing::Values(
        OptionCase{"paper_http_defaults", 1, true,
                   nserver::CompletionMode::kAsynchronous,
                   nserver::ThreadAllocation::kStatic,
                   nserver::CachePolicyKind::kLru, false, false, false,
                   nserver::ServerMode::kProduction},
        OptionCase{"sped_inline", 1, false,
                   nserver::CompletionMode::kAsynchronous,
                   nserver::ThreadAllocation::kStatic,
                   nserver::CachePolicyKind::kNone, false, false, false,
                   nserver::ServerMode::kProduction},
        OptionCase{"sync_completion", 1, true,
                   nserver::CompletionMode::kSynchronous,
                   nserver::ThreadAllocation::kStatic,
                   nserver::CachePolicyKind::kNone, false, false, false,
                   nserver::ServerMode::kProduction},
        OptionCase{"dynamic_threads", 1, true,
                   nserver::CompletionMode::kAsynchronous,
                   nserver::ThreadAllocation::kDynamic,
                   nserver::CachePolicyKind::kLfu, false, false, false,
                   nserver::ServerMode::kProduction},
        OptionCase{"multi_dispatcher", 2, true,
                   nserver::CompletionMode::kAsynchronous,
                   nserver::ThreadAllocation::kStatic,
                   nserver::CachePolicyKind::kLru, false, false, false,
                   nserver::ServerMode::kProduction},
        OptionCase{"scheduling_on", 1, true,
                   nserver::CompletionMode::kAsynchronous,
                   nserver::ThreadAllocation::kStatic,
                   nserver::CachePolicyKind::kLru, true, false, false,
                   nserver::ServerMode::kProduction},
        OptionCase{"overload_on", 1, true,
                   nserver::CompletionMode::kAsynchronous,
                   nserver::ThreadAllocation::kStatic,
                   nserver::CachePolicyKind::kLru, false, true, false,
                   nserver::ServerMode::kProduction},
        OptionCase{"profiling_debug", 1, true,
                   nserver::CompletionMode::kAsynchronous,
                   nserver::ThreadAllocation::kStatic,
                   nserver::CachePolicyKind::kHyperG, false, false, true,
                   nserver::ServerMode::kDebug}),
    [](const ::testing::TestParamInfo<OptionCase>& info) {
      return info.param.name;
    });

// ---- framework behaviours ---------------------------------------------------

TEST_F(HttpServerFixture, CacheHitRateRisesOnRepeatedFetch) {
  auto options = CopsHttpServer::default_options();
  options.profiling = true;
  start_server(options);
  for (int i = 0; i < 5; ++i) {
    test::http_get(port_, "/index.html");
  }
  auto* cache = server_->server().cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->hits(), 3u);
  EXPECT_GT(cache->hit_rate(), 0.5);
}

TEST_F(HttpServerFixture, ModifiedFileNotServedStaleFromCache) {
  auto options = CopsHttpServer::default_options();
  options.profiling = true;
  // Re-check the on-disk file on every lookup (deterministic for the test).
  options.cache_revalidate_interval = std::chrono::milliseconds(0);
  start_server(options);
  const auto first = test::http_get(port_, "/index.html");
  EXPECT_NE(first.find("<html>home</html>"), std::string::npos);
  // Rewrite with different content + size; mtime alone has 1 s granularity.
  docs_->write_file("index.html", "<html>updated content</html>");
  const auto second = test::http_get(port_, "/index.html");
  EXPECT_NE(second.find("<html>updated content</html>"), std::string::npos);
  EXPECT_EQ(second.find("<html>home</html>"), std::string::npos);
  auto* cache = server_->server().cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->invalidations(), 1u);
  EXPECT_GE(server_->server().profile().cache_invalidations, 1u);
}

TEST_F(HttpServerFixture, MaxConnectionsRejectsExtra) {
  auto options = CopsHttpServer::default_options();
  options.max_connections = 2;
  options.overload_control = true;
  options.profiling = true;
  start_server(options);
  test::BlockingClient c1;
  test::BlockingClient c2;
  ASSERT_TRUE(c1.connect("127.0.0.1", port_));
  ASSERT_TRUE(c2.connect("127.0.0.1", port_));
  // Exercise both so the server surely registered them.
  ASSERT_FALSE(test::http_get(port_, "/index.html", true, &c1).empty());
  ASSERT_FALSE(test::http_get(port_, "/index.html", true, &c2).empty());
  EXPECT_EQ(server_->server().connection_count(), 2u);
  // A third connection is accepted by the kernel but closed by the server.
  test::BlockingClient c3;
  ASSERT_TRUE(c3.connect("127.0.0.1", port_));
  const auto response = test::http_get(port_, "/index.html", true, &c3);
  EXPECT_EQ(response.find("200 OK"), std::string::npos);
}

TEST_F(HttpServerFixture, IdleConnectionsReaped) {
  auto options = CopsHttpServer::default_options();
  options.shutdown_long_idle = true;
  options.idle_timeout = std::chrono::milliseconds(100);
  options.housekeeping_interval = std::chrono::milliseconds(20);
  options.profiling = true;
  start_server(options);
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  ASSERT_FALSE(test::http_get(port_, "/index.html", true, &client).empty());
  EXPECT_EQ(server_->server().connection_count(), 1u);
  // Idle past the timeout: the reaper closes it.
  for (int i = 0; i < 100 && server_->server().connection_count() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->server().connection_count(), 0u);
  EXPECT_GE(server_->server().profile().idle_shutdowns, 1u);
}

TEST_F(HttpServerFixture, ManyConcurrentBlockingClients) {
  start_server(CopsHttpServer::default_options());
  constexpr int kClients = 16;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const auto path = (i % 2 == 0) ? "/index.html" : "/a/page.html";
      const auto response = test::http_get(port_, path);
      if (response.find("200 OK") != std::string::npos) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
}

TEST_F(HttpServerFixture, StopIsIdempotentAndJoins) {
  start_server(CopsHttpServer::default_options());
  test::http_get(port_, "/index.html");
  server_->stop();
  server_->stop();  // second stop is a no-op
}

TEST_F(HttpServerFixture, DebugModeWritesTrace) {
  auto options = CopsHttpServer::default_options();
  options.mode = nserver::ServerMode::kDebug;
  test::TempDir trace_dir;
  options.debug_trace_path = trace_dir.str() + "/trace.log";
  start_server(options);
  test::http_get(port_, "/index.html");
  server_->stop();
  std::ifstream in(options.debug_trace_path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("Accept"), std::string::npos);
  EXPECT_NE(contents.find("Decode"), std::string::npos);
}

// ---- baseline server ---------------------------------------------------------

TEST(BaselineServer, ServesFiles) {
  test::TempDir docs;
  docs.write_file("index.html", "baseline-home");
  baseline::ThreadedServerConfig config;
  config.doc_root = docs.str();
  config.worker_pool = 4;
  baseline::ThreadedHttpServer server(config);
  ASSERT_TRUE(server.start().is_ok());
  const auto response = test::http_get(server.port(), "/index.html");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("baseline-home"), std::string::npos);
  EXPECT_EQ(server.responses_sent(), 1u);
  server.stop();
}

TEST(BaselineServer, KeepAliveAndSequentialRequests) {
  test::TempDir docs;
  docs.write_file("f.html", "ff");
  baseline::ThreadedServerConfig config;
  config.doc_root = docs.str();
  config.worker_pool = 2;
  baseline::ThreadedHttpServer server(config);
  ASSERT_TRUE(server.start().is_ok());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  for (int i = 0; i < 3; ++i) {
    const auto response = test::http_get(server.port(), "/f.html", true, &client);
    ASSERT_NE(response.find("200 OK"), std::string::npos);
  }
  // The counter increments just after the bytes hit the socket; poll
  // briefly to avoid racing the worker thread.
  for (int i = 0; i < 100 && server.responses_sent() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.responses_sent(), 3u);
  server.stop();
}

TEST(BaselineServer, NotFoundAndStop) {
  test::TempDir docs;
  baseline::ThreadedServerConfig config;
  config.doc_root = docs.str();
  config.worker_pool = 2;
  baseline::ThreadedHttpServer server(config);
  ASSERT_TRUE(server.start().is_ok());
  EXPECT_NE(test::http_get(server.port(), "/x").find("404"),
            std::string::npos);
  server.stop();
  server.stop();
}

}  // namespace
}  // namespace cops
