// Real-socket tests for the shared-nothing scale-out path: SO_REUSEPORT
// listener groups at the net layer, the shard-safe connection caps racing
// across per-shard acceptors, the per-shard/L1 observability surface, and
// the two-tier cache under concurrent shard traffic (the TSan preset runs
// this suite — the stress test is the data-race canary for the L1's
// atomic<shared_ptr> hot path).
#include <atomic>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "http/http_server.hpp"
#include "net/socket.hpp"
#include "nserver/cache_policy.hpp"
#include "nserver/file_cache.hpp"
#include "nserver/l1_cache.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

using http::CopsHttpServer;
using http::HttpServerConfig;
using nserver::ServerOptions;

// ---- net layer: SO_REUSEPORT listener groups --------------------------------

TEST(ReuseportSocketTest, SiblingListenersShareAPort) {
  const auto addr = net::InetAddress::parse("127.0.0.1", 0);
  ASSERT_TRUE(addr.is_ok());
  auto first =
      net::TcpListener::listen(addr.value(), /*backlog=*/64, /*reuseport=*/true);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  const auto bound = first.value().local_address();
  ASSERT_TRUE(bound.is_ok());

  // A sibling opened with SO_REUSEPORT joins the group...
  auto sibling = net::TcpListener::listen(bound.value(), 64, true);
  EXPECT_TRUE(sibling.is_ok()) << sibling.status().to_string();
  // ...but a plain listener cannot squat the port.
  auto intruder = net::TcpListener::listen(bound.value(), 64, false);
  EXPECT_FALSE(intruder.is_ok());
}

TEST(ReuseportSocketTest, BacklogParameterAccepted) {
  // The listen_backlog satellite: the knob must reach listen(2) unclamped
  // by any hardcoded constant.  A bad value is all the kernel would reject,
  // so this is a plumbing check, not a capacity measurement.
  const auto addr = net::InetAddress::parse("127.0.0.1", 0);
  ASSERT_TRUE(addr.is_ok());
  for (const int backlog : {1, 128, 1024, 4096}) {
    auto listener = net::TcpListener::listen(addr.value(), backlog);
    EXPECT_TRUE(listener.is_ok()) << "backlog " << backlog;
  }
}

// ---- server fixture ---------------------------------------------------------

class ScaleoutFixture : public ::testing::Test {
 protected:
  void start_server(ServerOptions options) {
    docs_ = std::make_unique<test::TempDir>();
    docs_->write_file("index.html", "<html>scaleout</html>");
    options.listen_port = 0;
    HttpServerConfig config;
    config.doc_root = docs_->str();
    server_ = std::make_unique<CopsHttpServer>(std::move(options), config);
    auto status = server_->start();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    port_ = server_->port();
  }

  static ServerOptions reuseport_options(int shards) {
    auto options = CopsHttpServer::default_options();
    options.dispatcher_threads = shards;
    options.accept_path = nserver::AcceptPath::kReuseport;
    options.profiling = true;
    return options;
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::unique_ptr<test::TempDir> docs_;
  std::unique_ptr<CopsHttpServer> server_;
  uint16_t port_ = 0;
};

TEST_F(ScaleoutFixture, ReuseportServesAndAccountsEveryConnection) {
  start_server(reuseport_options(4));
  constexpr int kRequests = 16;
  for (int i = 0; i < kRequests; ++i) {
    const auto response = test::http_get(port_, "/index.html");
    ASSERT_NE(response.find("200 OK"), std::string::npos) << "request " << i;
  }
  // The kernel chooses the shard per connection (hash-based, so the spread
  // is not asserted), but no accept may escape the per-shard gauges.
  const auto snapshot = server_->server().stats_snapshot();
  ASSERT_EQ(snapshot.shards.size(), 4u);
  uint64_t total = 0;
  for (const auto& shard : snapshot.shards) total += shard.accepts;
  EXPECT_EQ(total, static_cast<uint64_t>(kRequests));
}

// One blocking client per thread; admitted connections are held open until
// every thread has classified its outcome, so the cap cannot be laundered
// through early closes.  Returns how many clients got a 200.
int race_connections(uint16_t port, int clients) {
  std::atomic<int> admitted{0};
  std::latch classified(clients);
  std::latch hold(1);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      test::BlockingClient client;
      const bool connected = client.connect("127.0.0.1", port);
      std::string response;
      if (connected) {
        response = test::http_get(port, "/index.html", /*keep_alive=*/true,
                                  &client);
      }
      if (response.find("200 OK") != std::string::npos) {
        admitted.fetch_add(1);
      }
      classified.count_down();
      hold.wait();  // keep the admitted slots occupied
    });
  }
  classified.wait();
  hold.count_down();
  for (auto& t : threads) t.join();
  return admitted.load();
}

TEST_F(ScaleoutFixture, MaxConnectionsCapHoldsAcrossRacingAcceptors) {
  // Four shards accept concurrently on their own listeners; the global cap
  // must hold exactly — the reservation pattern in on_accept is what stops
  // several shards from passing a load-then-check simultaneously.
  auto options = reuseport_options(4);
  options.max_connections = 3;
  start_server(options);

  EXPECT_EQ(race_connections(port_, 12), 3);
  const auto profile = server_->server().profile();
  EXPECT_EQ(profile.connections_rejected, 9u);
  // Every admitted connection has closed by now; the slots drain back.
  for (int i = 0; i < 200 && server_->server().connection_count() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->server().connection_count(), 0u);
  // The cap is a gate, not a latch: new connections are admitted again.
  EXPECT_NE(test::http_get(port_, "/index.html").find("200 OK"),
            std::string::npos);
}

TEST_F(ScaleoutFixture, PerIpCapHoldsAcrossRacingAcceptors) {
  auto options = reuseport_options(4);
  options.max_connections_per_ip = 2;
  start_server(options);

  EXPECT_EQ(race_connections(port_, 8), 2);
  EXPECT_EQ(server_->server().profile().per_ip_rejections, 6u);
}

// ---- observability: shard label and L1 counters end to end ------------------

TEST_F(ScaleoutFixture, AdminExportsShardGaugesAndL1Counters) {
  auto options = reuseport_options(2);
  options.cache_l1_entries = 32;
  options.stats_export = nserver::StatsExport::kAdminHttp;
  options.admin_port = 0;
  start_server(options);
  const uint16_t admin_port = server_->admin_port();
  ASSERT_NE(admin_port, 0);

  // Same file over several fresh connections: whichever shards the kernel
  // picks, every first touch promotes and repeats hit the shard's L1.
  for (int i = 0; i < 6; ++i) {
    ASSERT_NE(test::http_get(port_, "/index.html").find("200 OK"),
              std::string::npos);
  }
  const auto profile = server_->server().profile();
  EXPECT_GT(profile.l1_promotions, 0u);
  EXPECT_GT(profile.l1_hits, 0u);
  EXPECT_GT(profile.l1_hit_rate, 0.0);
  // The profiler report renders the tier (satellite: profiler surface).
  EXPECT_NE(profile.to_string().find("l1_hits="), std::string::npos);

  const auto stats = test::http_get(admin_port, "/stats");
  for (const char* metric :
       {"nserver_cache_l1_hits_total", "nserver_cache_l1_promotions_total",
        "nserver_cache_l1_hit_rate",
        "nserver_shard_accepts_total{shard=\"0\"}",
        "nserver_shard_accepts_total{shard=\"1\"}",
        "nserver_shard_connections_open{shard=\"0\"}",
        "nserver_shard_l1_hit_rate{shard=\"1\"}"}) {
    EXPECT_NE(stats.find(metric), std::string::npos) << metric;
  }

  const auto json = test::http_get(admin_port, "/stats.json");
  for (const char* token : {"\"shards\":[", "\"l1_hits\"", "\"l1_promotions\"",
                            "\"l1_hit_rate\"", "\"accepts\""}) {
    EXPECT_NE(json.find(token), std::string::npos) << token;
  }
}

// ---- two-tier cache under concurrent shard traffic --------------------------

TEST(TwoTierCacheStressTest, AllShardsMissAndPromoteTheSameHotFile) {
  // The worst case for the tier split: every "shard" (thread) hammers one
  // hot key, racing lookups against promotions, while a saboteur thread
  // periodically invalidates the L2 (epoch bump) — so promoted entries go
  // stale mid-race and every shard re-misses and re-promotes.  Run under
  // the TSan preset this is the data-race check for the L1 hot path; in
  // every preset it checks the tiers never serve bytes that do not match
  // the backing entry.
  test::TempDir dir;
  const std::string body = "hot file body: twelve dozen bytes of payload\n";
  dir.write_file("hot.txt", body);
  const std::string key = dir.str() + "/hot.txt";

  nserver::FileCache l2(
      nserver::make_cache_policy(nserver::CachePolicyKind::kLru, 64 * 1024),
      1 << 20);
  constexpr int kShards = 4;
  constexpr int kIterations = 3000;
  std::vector<std::unique_ptr<nserver::L1FileCache>> l1s;
  for (int i = 0; i < kShards; ++i) {
    l1s.push_back(std::make_unique<nserver::L1FileCache>(
        8, 256 * 1024, std::chrono::milliseconds(1000)));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> corrupt{0};
  std::vector<std::thread> shards;
  for (int s = 0; s < kShards; ++s) {
    shards.emplace_back([&, s] {
      auto& l1 = *l1s[s];
      for (int i = 0; i < kIterations; ++i) {
        const uint64_t epoch = l2.invalidation_epoch();
        nserver::FileDataPtr data = l1.lookup(key, epoch);
        if (data == nullptr) {
          data = l2.lookup(key);
          if (data == nullptr) {
            auto loaded = nserver::FileIoService::read_file(key);
            if (!loaded.is_ok()) {
              corrupt.fetch_add(1);
              continue;
            }
            data = loaded.value();
            l2.insert(key, data);
          }
          l1.promote(key, data, epoch);
        }
        if (data->bytes != body) corrupt.fetch_add(1);
      }
    });
  }
  std::thread saboteur([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      l2.erase(key);  // bumps the invalidation epoch
      std::this_thread::yield();
    }
  });
  for (auto& t : shards) t.join();
  stop.store(true);
  saboteur.join();

  EXPECT_EQ(corrupt.load(), 0u);
  for (int s = 0; s < kShards; ++s) {
    // Every shard both promoted (the saboteur guarantees repeated misses)
    // and completed all iterations.
    EXPECT_GT(l1s[s]->promotions(), 0u) << "shard " << s;
    EXPECT_EQ(l1s[s]->hits() + l1s[s]->misses(),
              static_cast<uint64_t>(kIterations))
        << "shard " << s;
  }
}

}  // namespace
}  // namespace cops
