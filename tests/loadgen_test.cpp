// Tests for the workload generator: fileset, sampler, client engine.
#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/threaded_server.hpp"
#include "http/http_server.hpp"
#include "loadgen/fileset.hpp"
#include "loadgen/http_client.hpp"
#include "tests/test_util.hpp"

namespace cops::loadgen {
namespace {

// ---------- fileset ---------------------------------------------------------------

TEST(Fileset, SizeFormula) {
  EXPECT_EQ(file_size_bytes(0, 0), 100u);    // 0.1 KB
  EXPECT_EQ(file_size_bytes(0, 8), 900u);    // 0.9 KB
  EXPECT_EQ(file_size_bytes(1, 0), 1000u);   // 1 KB
  EXPECT_EQ(file_size_bytes(2, 8), 90000u);  // 90 KB
  EXPECT_EQ(file_size_bytes(3, 0), 100000u); // 100 KB
}

TEST(Fileset, DirectoryBytesMatchesSpecShape) {
  // Per directory: 4.5K + 45K + 450K + 4.5M = 4,999,500 bytes (~5 MB, as in
  // SpecWeb99).
  EXPECT_EQ(directory_bytes(), 4999500u);
}

TEST(Fileset, GenerateCreatesAllFiles) {
  test::TempDir dir;
  FilesetConfig config;
  config.root = dir.str();
  config.directories = 2;
  ASSERT_TRUE(generate_fileset(config).is_ok());
  namespace fs = std::filesystem;
  size_t count = 0;
  for (auto& entry : fs::recursive_directory_iterator(dir.str())) {
    if (entry.is_regular_file()) ++count;
  }
  EXPECT_EQ(count, 2u * kClassesPerDir * kFilesPerClass);
  EXPECT_EQ(fs::file_size(dir.path() / "dir0" / "class1_4.html"), 5000u);
}

TEST(Fileset, GenerateIsIdempotent) {
  test::TempDir dir;
  FilesetConfig config;
  config.root = dir.str();
  config.directories = 1;
  ASSERT_TRUE(generate_fileset(config).is_ok());
  const auto mtime = std::filesystem::last_write_time(
      std::filesystem::path(dir.str()) / "dir0" / "class0_0.html");
  ASSERT_TRUE(generate_fileset(config).is_ok());
  EXPECT_EQ(std::filesystem::last_write_time(
                std::filesystem::path(dir.str()) / "dir0" / "class0_0.html"),
            mtime);
}

TEST(Sampler, UrlShape) {
  EXPECT_EQ(file_url(3, 2, 7), "/dir3/class2_7.html");
}

TEST(Sampler, DeterministicMapping) {
  FilesetConfig config;
  config.directories = 4;
  WorkloadSampler sampler(config);
  // u_dir=0 → most popular dir (rank 0); u_class small → class 0.
  EXPECT_EQ(sampler.sample(0.0, 0.0, 0.0), "/dir0/class0_0.html");
  // u_class beyond 0.85 → class 2 band; beyond 0.99 → class 3.
  EXPECT_NE(sampler.sample(0.0, 0.90, 0.0).find("class2"), std::string::npos);
  EXPECT_NE(sampler.sample(0.0, 0.995, 0.0).find("class3"), std::string::npos);
}

TEST(Sampler, ClassWeightsRoughlyRespected) {
  FilesetConfig config;
  config.directories = 4;
  WorkloadSampler sampler(config);
  std::mt19937 rng(11);
  int class_counts[4] = {0, 0, 0, 0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto path = sampler.sample(rng);
    const size_t at = path.find("class");
    class_counts[path[at + 5] - '0']++;
  }
  EXPECT_NEAR(class_counts[0] / double(n), 0.35, 0.02);
  EXPECT_NEAR(class_counts[1] / double(n), 0.50, 0.02);
  EXPECT_NEAR(class_counts[2] / double(n), 0.14, 0.02);
  EXPECT_NEAR(class_counts[3] / double(n), 0.01, 0.01);
}

TEST(Sampler, PopularDirsDominate) {
  FilesetConfig config;
  config.directories = 8;
  WorkloadSampler sampler(config);
  std::mt19937 rng(13);
  int dir0 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sampler.sample(rng).rfind("/dir0/", 0) == 0) ++dir0;
  }
  // Zipf(8): rank 0 has ~37 % of the mass.
  EXPECT_GT(dir0 / double(n), 0.25);
}

// ---------- client engine end-to-end -------------------------------------------------

class ClientEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    docs_ = std::make_unique<test::TempDir>();
    docs_->write_file("page.html", std::string(500, 'x'));
  }
  std::unique_ptr<test::TempDir> docs_;
};

TEST_F(ClientEngineTest, DrivesCopsHttpServer) {
  http::HttpServerConfig config;
  config.doc_root = docs_->str();
  http::CopsHttpServer server(http::CopsHttpServer::default_options(), config);
  ASSERT_TRUE(server.start().is_ok());

  ClientConfig load;
  load.server = net::InetAddress::loopback(server.port());
  load.num_clients = 4;
  load.duration = std::chrono::milliseconds(600);
  load.think_time = std::chrono::milliseconds(2);
  load.path_for = [](size_t, std::mt19937&) { return "/page.html"; };
  const auto stats = run_clients(load);
  server.stop();

  EXPECT_GT(stats.total_responses, 20u);
  EXPECT_GT(stats.total_bytes, stats.total_responses * 500);
  EXPECT_EQ(stats.responses_per_client.size(), 4u);
  EXPECT_GT(stats.throughput_rps(), 0.0);
  EXPECT_GT(stats.jain_fairness(), 0.8);
  EXPECT_EQ(stats.response_time.count(), stats.total_responses);
  EXPECT_EQ(stats.combined_time.count(), stats.total_responses);
}

TEST_F(ClientEngineTest, DrivesBaselineServer) {
  baseline::ThreadedServerConfig config;
  config.doc_root = docs_->str();
  config.worker_pool = 4;
  baseline::ThreadedHttpServer server(config);
  ASSERT_TRUE(server.start().is_ok());

  ClientConfig load;
  load.server = net::InetAddress::loopback(server.port());
  load.num_clients = 3;
  load.duration = std::chrono::milliseconds(500);
  load.think_time = std::chrono::milliseconds(2);
  load.path_for = [](size_t, std::mt19937&) { return "/page.html"; };
  const auto stats = run_clients(load);
  server.stop();
  EXPECT_GT(stats.total_responses, 10u);
  EXPECT_EQ(stats.connection_resets, 0u);
}

TEST_F(ClientEngineTest, BacksOffWhenNothingListens) {
  // Reserve a port with no listener: connects are refused; the engine must
  // retry with backoff and never crash.
  uint16_t dead_port = 0;
  {
    auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
    ASSERT_TRUE(listener.is_ok());
    dead_port = listener.value().local_address().value().port();
  }
  ClientConfig load;
  load.server = net::InetAddress::loopback(dead_port);
  load.num_clients = 2;
  load.duration = std::chrono::milliseconds(300);
  load.think_time = std::chrono::milliseconds(1);
  load.backoff_initial = std::chrono::milliseconds(10);
  load.path_for = [](size_t, std::mt19937&) { return "/"; };
  const auto stats = run_clients(load);
  EXPECT_EQ(stats.total_responses, 0u);
  EXPECT_GT(stats.connect_failures, 0u);
}

TEST_F(ClientEngineTest, PerClientPathFunction) {
  http::HttpServerConfig config;
  config.doc_root = docs_->str();
  docs_->write_file("a.html", "A");
  docs_->write_file("b.html", "B");
  http::CopsHttpServer server(http::CopsHttpServer::default_options(), config);
  ASSERT_TRUE(server.start().is_ok());

  ClientConfig load;
  load.server = net::InetAddress::loopback(server.port());
  load.num_clients = 2;
  load.duration = std::chrono::milliseconds(400);
  load.think_time = std::chrono::milliseconds(2);
  load.path_for = [](size_t index, std::mt19937&) {
    return index == 0 ? "/a.html" : "/b.html";
  };
  const auto stats = run_clients(load);
  server.stop();
  EXPECT_GT(stats.responses_per_client[0], 0u);
  EXPECT_GT(stats.responses_per_client[1], 0u);
}

}  // namespace
}  // namespace cops::loadgen
