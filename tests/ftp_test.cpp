// Tests for the FTP substrate and the end-to-end COPS-FTP server.
#include <gtest/gtest.h>

#include <thread>

#include "ftp/command.hpp"
#include "ftp/ftp_server.hpp"
#include "ftp/fs_view.hpp"
#include "ftp/user_db.hpp"
#include "tests/test_util.hpp"

namespace cops::ftp {
namespace {

// ---------- command parsing ----------------------------------------------------

TEST(FtpCommand, ParsesVerbAndArg) {
  auto cmd = parse_command("RETR file.txt");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->verb, "RETR");
  EXPECT_EQ(cmd->arg, "file.txt");
}

TEST(FtpCommand, VerbUppercased) {
  auto cmd = parse_command("user alice");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->verb, "USER");
  EXPECT_EQ(cmd->arg, "alice");
}

TEST(FtpCommand, NoArg) {
  auto cmd = parse_command("PASV");
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->verb, "PASV");
  EXPECT_TRUE(cmd->arg.empty());
}

TEST(FtpCommand, RejectsGarbage) {
  EXPECT_FALSE(parse_command("").has_value());
  EXPECT_FALSE(parse_command("TOOLONGVERB arg").has_value());
  EXPECT_FALSE(parse_command("123 x").has_value());
}

TEST(FtpCommand, PortArgRoundTrip) {
  auto target = parse_port_arg("127,0,0,1,31,144");
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->first, "127.0.0.1");
  EXPECT_EQ(target->second, 31 * 256 + 144);
  EXPECT_EQ(format_pasv("127.0.0.1", 8080), "(127,0,0,1,31,144)");
}

TEST(FtpCommand, PortArgRejectsBadInput) {
  EXPECT_FALSE(parse_port_arg("1,2,3,4,5").has_value());
  EXPECT_FALSE(parse_port_arg("256,0,0,1,1,1").has_value());
  EXPECT_FALSE(parse_port_arg("a,b,c,d,e,f").has_value());
  EXPECT_FALSE(parse_port_arg("127,0,0,1,0,0").has_value());
}

// ---------- FsView --------------------------------------------------------------

TEST(FsView, ResolveAbsoluteAndRelative) {
  EXPECT_EQ(FsView::resolve("/", "file.txt"), "/file.txt");
  EXPECT_EQ(FsView::resolve("/a", "b.txt"), "/a/b.txt");
  EXPECT_EQ(FsView::resolve("/a", "/c.txt"), "/c.txt");
}

TEST(FsView, ResolveDotSegments) {
  EXPECT_EQ(FsView::resolve("/a/b", ".."), "/a");
  EXPECT_EQ(FsView::resolve("/a", "./x/../y"), "/a/y");
}

TEST(FsView, ResolveRefusesEscape) {
  EXPECT_EQ(FsView::resolve("/", ".."), "");
  EXPECT_EQ(FsView::resolve("/a", "../../x"), "");
}

TEST(FsView, ListAndSize) {
  test::TempDir dir;
  dir.write_file("f1.txt", "12345");
  dir.write_file("sub/f2.txt", "z");
  FsView fs(dir.str());
  auto entries = fs.list("/");
  ASSERT_TRUE(entries.is_ok());
  EXPECT_EQ(entries.value().size(), 2u);
  auto size = fs.file_size("/f1.txt");
  ASSERT_TRUE(size.is_ok());
  EXPECT_EQ(size.value(), 5u);
  EXPECT_TRUE(fs.is_directory("/sub"));
  EXPECT_FALSE(fs.is_directory("/f1.txt"));
}

TEST(FsView, MutationsWork) {
  test::TempDir dir;
  FsView fs(dir.str());
  ASSERT_TRUE(fs.make_directory("/d").is_ok());
  EXPECT_TRUE(fs.is_directory("/d"));
  ASSERT_TRUE(fs.write_file("/d/f", "abc").is_ok());
  EXPECT_TRUE(fs.exists("/d/f"));
  ASSERT_TRUE(fs.remove_file("/d/f").is_ok());
  ASSERT_TRUE(fs.remove_directory("/d").is_ok());
  EXPECT_FALSE(fs.exists("/d"));
}

TEST(FsView, RemoveMissingFails) {
  test::TempDir dir;
  FsView fs(dir.str());
  EXPECT_FALSE(fs.remove_file("/ghost").is_ok());
  EXPECT_FALSE(fs.remove_directory("/ghost").is_ok());
}

TEST(FsView, ListLineFormat) {
  DirEntry entry{"file.txt", false, 1234, 0};
  const auto line = FsView::format_list_line(entry);
  EXPECT_NE(line.find("-rw-r--r--"), std::string::npos);
  EXPECT_NE(line.find("1234"), std::string::npos);
  EXPECT_NE(line.find("file.txt"), std::string::npos);
  DirEntry dir_entry{"sub", true, 0, 0};
  EXPECT_NE(FsView::format_list_line(dir_entry).find("drwx"),
            std::string::npos);
}

// ---------- UserDb ---------------------------------------------------------------

TEST(UserDb, AuthenticateKnownUser) {
  UserDb db;
  db.add_user("alice", "secret");
  EXPECT_TRUE(db.authenticate("alice", "secret"));
  EXPECT_FALSE(db.authenticate("alice", "wrong"));
  EXPECT_FALSE(db.authenticate("bob", "secret"));
}

TEST(UserDb, AnonymousGatedByFlag) {
  UserDb db;
  EXPECT_FALSE(db.authenticate("anonymous", "x"));
  db.allow_anonymous(true);
  EXPECT_TRUE(db.authenticate("anonymous", "anything"));
}

TEST(UserDb, WritePermission) {
  UserDb db;
  db.add_user("ro", "p", false);
  db.add_user("rw", "p", true);
  EXPECT_FALSE(db.can_write("ro"));
  EXPECT_TRUE(db.can_write("rw"));
  EXPECT_FALSE(db.can_write("anonymous"));
}

TEST(UserDb, LoginActivityRecorded) {
  UserDb db;
  db.record_login("alice");
  db.record_login("alice");
  EXPECT_EQ(db.login_count("alice"), 2u);
  EXPECT_EQ(db.login_count("bob"), 0u);
}

// ---------- end-to-end COPS-FTP ----------------------------------------------------

class FtpServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::make_unique<test::TempDir>();
    root_->write_file("hello.txt", "hello from ftp");
    root_->write_file("docs/readme.md", "# readme");
    auto users = std::make_shared<UserDb>();
    users->add_user("alice", "secret", /*write_allowed=*/true);
    FtpServerConfig config;
    config.root = root_->str();
    server_ = std::make_unique<CopsFtpServer>(
        CopsFtpServer::default_options(), config, users);
    auto status = server_->start();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }
  void TearDown() override { server_->stop(); }

  // Connects and waits for the 220 banner.
  std::unique_ptr<test::BlockingClient> connect_control() {
    auto client = std::make_unique<test::BlockingClient>();
    if (!client->connect("127.0.0.1", server_->port())) return nullptr;
    client->read_until("220 ");
    return client;
  }

  static std::string command(test::BlockingClient& client,
                             const std::string& line,
                             const std::string& expect_code) {
    client.send_all(line + "\r\n");
    return client.read_until(expect_code + " ");
  }

  // Parses a 227 PASV reply into a data port.
  static uint16_t pasv_port(const std::string& reply) {
    const size_t open = reply.find('(');
    const size_t close = reply.find(')', open);
    if (open == std::string::npos || close == std::string::npos) return 0;
    auto inside = reply.substr(open + 1, close - open - 1);
    int h1 = 0;
    int h2 = 0;
    int h3 = 0;
    int h4 = 0;
    int p1 = 0;
    int p2 = 0;
    if (std::sscanf(inside.c_str(), "%d,%d,%d,%d,%d,%d", &h1, &h2, &h3, &h4,
                    &p1, &p2) != 6) {
      return 0;
    }
    return static_cast<uint16_t>(p1 * 256 + p2);
  }

  void login(test::BlockingClient& client, const std::string& user = "alice",
             const std::string& pass = "secret") {
    EXPECT_NE(command(client, "USER " + user, "331").find("331"),
              std::string::npos);
    EXPECT_NE(command(client, "PASS " + pass, "230").find("230"),
              std::string::npos);
  }

  std::unique_ptr<test::TempDir> root_;
  std::unique_ptr<CopsFtpServer> server_;
};

TEST_F(FtpServerFixture, BannerAndLogin) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
}

TEST_F(FtpServerFixture, AnonymousLoginAccepted) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  command(*client, "USER anonymous", "331");
  EXPECT_NE(command(*client, "PASS guest@", "230").find("230"),
            std::string::npos);
}

TEST_F(FtpServerFixture, WrongPasswordRejected) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  command(*client, "USER alice", "331");
  EXPECT_NE(command(*client, "PASS nope", "530").find("530"),
            std::string::npos);
}

TEST_F(FtpServerFixture, CommandsRequireLogin) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  EXPECT_NE(command(*client, "PWD", "530").find("530"), std::string::npos);
  EXPECT_NE(command(*client, "RETR hello.txt", "530").find("530"),
            std::string::npos);
}

TEST_F(FtpServerFixture, PwdCwdCdup) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  EXPECT_NE(command(*client, "PWD", "257").find("\"/\""), std::string::npos);
  EXPECT_NE(command(*client, "CWD docs", "250").find("250"),
            std::string::npos);
  EXPECT_NE(command(*client, "PWD", "257").find("\"/docs\""),
            std::string::npos);
  EXPECT_NE(command(*client, "CDUP", "250").find("250"), std::string::npos);
  EXPECT_NE(command(*client, "PWD", "257").find("\"/\""), std::string::npos);
}

TEST_F(FtpServerFixture, CwdToMissingDirFails) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  EXPECT_NE(command(*client, "CWD nosuchdir", "550").find("550"),
            std::string::npos);
}

TEST_F(FtpServerFixture, SizeCommand) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  EXPECT_NE(command(*client, "SIZE hello.txt", "213").find("213 14"),
            std::string::npos);
  EXPECT_NE(command(*client, "SIZE ghost", "550").find("550"),
            std::string::npos);
}

TEST_F(FtpServerFixture, PassiveRetrDeliversFile) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  const auto pasv_reply = command(*client, "PASV", "227");
  const uint16_t port = pasv_port(pasv_reply);
  ASSERT_GT(port, 0) << pasv_reply;

  client->send_all("RETR hello.txt\r\n");
  test::BlockingClient data;
  ASSERT_TRUE(data.connect("127.0.0.1", port));
  const auto contents = data.read_some();
  EXPECT_EQ(contents, "hello from ftp");
  const auto replies = client->read_until("226 ");
  EXPECT_NE(replies.find("150 "), std::string::npos);
  EXPECT_NE(replies.find("226 "), std::string::npos);
  EXPECT_EQ(server_->hooks().transfers_completed(), 1u);
}

TEST_F(FtpServerFixture, PassiveListShowsEntries) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  const uint16_t port = pasv_port(command(*client, "PASV", "227"));
  ASSERT_GT(port, 0);
  client->send_all("LIST\r\n");
  test::BlockingClient data;
  ASSERT_TRUE(data.connect("127.0.0.1", port));
  const auto listing = data.read_some();
  EXPECT_NE(listing.find("hello.txt"), std::string::npos);
  EXPECT_NE(listing.find("docs"), std::string::npos);
  client->read_until("226 ");
}

TEST_F(FtpServerFixture, StorUploadsFile) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  const uint16_t port = pasv_port(command(*client, "PASV", "227"));
  ASSERT_GT(port, 0);
  client->send_all("STOR upload.txt\r\n");
  test::BlockingClient data;
  ASSERT_TRUE(data.connect("127.0.0.1", port));
  data.send_all("uploaded-bytes");
  data.shutdown_write();
  data.close();
  const auto replies = client->read_until("226 ");
  EXPECT_NE(replies.find("226 "), std::string::npos);
  FsView fs(root_->str());
  EXPECT_TRUE(fs.exists("/upload.txt"));
  auto size = fs.file_size("/upload.txt");
  ASSERT_TRUE(size.is_ok());
  EXPECT_EQ(size.value(), 14u);
}

TEST_F(FtpServerFixture, StorRequiresWritePermission) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  command(*client, "USER anonymous", "331");
  command(*client, "PASS x", "230");
  EXPECT_NE(command(*client, "STOR f.txt", "550").find("550"),
            std::string::npos);
}

TEST_F(FtpServerFixture, MkdRmdDele) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  EXPECT_NE(command(*client, "MKD newdir", "257").find("257"),
            std::string::npos);
  FsView fs(root_->str());
  EXPECT_TRUE(fs.is_directory("/newdir"));
  EXPECT_NE(command(*client, "RMD newdir", "250").find("250"),
            std::string::npos);
  EXPECT_FALSE(fs.exists("/newdir"));
  EXPECT_NE(command(*client, "DELE hello.txt", "250").find("250"),
            std::string::npos);
  EXPECT_FALSE(fs.exists("/hello.txt"));
}

TEST_F(FtpServerFixture, RetrMissingFileIs550) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  EXPECT_NE(command(*client, "RETR ghost.bin", "550").find("550"),
            std::string::npos);
}

TEST_F(FtpServerFixture, RetrWithoutDataSetupFails) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  // No PASV/PORT: the server cannot open a data connection.
  client->send_all("RETR hello.txt\r\n");
  const auto replies = client->read_until("425 ", 6000);
  EXPECT_NE(replies.find("425"), std::string::npos);
}

TEST_F(FtpServerFixture, QuitClosesConnection) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  const auto reply = command(*client, "QUIT", "221");
  EXPECT_NE(reply.find("221"), std::string::npos);
  // Connection should be closed by the server shortly after.
  const auto extra = client->read_some(0, 500);
  EXPECT_TRUE(extra.empty());
}

TEST_F(FtpServerFixture, UnknownCommandIs500Or502) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  client->send_all("XYZZ\r\n");
  const auto reply = client->read_until("50");
  EXPECT_TRUE(reply.find("502") != std::string::npos ||
              reply.find("500") != std::string::npos)
      << reply;
}

TEST_F(FtpServerFixture, TraversalRefused) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  EXPECT_NE(command(*client, "CWD ..", "550").find("550"), std::string::npos);
  EXPECT_NE(command(*client, "RETR ../../etc/passwd", "550").find("550"),
            std::string::npos);
}

TEST_F(FtpServerFixture, ActivePortRetr) {
  auto client = connect_control();
  ASSERT_NE(client, nullptr);
  login(*client);
  // Listen locally and tell the server to connect to us (PORT / active).
  auto listener =
      net::TcpListener::listen(net::InetAddress::loopback(0), 4);
  ASSERT_TRUE(listener.is_ok());
  const uint16_t port = listener.value().local_address().value().port();
  char arg[64];
  std::snprintf(arg, sizeof(arg), "127,0,0,1,%d,%d", port / 256, port % 256);
  EXPECT_NE(command(*client, std::string("PORT ") + arg, "200").find("200"),
            std::string::npos);
  client->send_all("RETR hello.txt\r\n");
  // Accept the server's data connection (blocking-ish poll loop).
  Result<net::TcpSocket> data = Status::would_block();
  for (int i = 0; i < 3000 && !data.is_ok(); ++i) {
    data = listener.value().accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(data.is_ok());
  ByteBuffer buf;
  for (int i = 0; i < 2000; ++i) {
    auto n = data.value().read(buf);
    if (!n.is_ok() && n.status().code() == StatusCode::kClosed) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(buf.view(), "hello from ftp");
  client->read_until("226 ");
}

TEST_F(FtpServerFixture, DynamicPoolGrowsUnderConcurrentTransfers) {
  // COPS-FTP uses synchronous completions: concurrent RETRs block workers
  // and the ProcessorController (O5 Dynamic) grows the pool.
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      auto client = connect_control();
      if (!client) return;
      command(*client, "USER alice", "331");
      command(*client, "PASS secret", "230");
      const uint16_t port = pasv_port(command(*client, "PASV", "227"));
      if (port == 0) return;
      client->send_all("RETR hello.txt\r\n");
      test::BlockingClient data;
      if (!data.connect("127.0.0.1", port)) return;
      if (data.read_some() == "hello from ftp") ok.fetch_add(1);
      client->read_until("226 ");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
}

}  // namespace
}  // namespace cops::ftp
