// Model-based FTP session tests over the simulated network.
//
// An explicit FTP control-channel state machine (authentication state,
// legal and near-legal commands with their RFC 959 reply codes) generates
// seeded command sequences and replays them through the full COPS-FTP
// stack under clean and chaotic fault plans.  The observed reply-code
// sequence must match the model exactly, fault plan or not.
//
// Data transfers (PASV/PORT/RETR/STOR/LIST) are deliberately out of scope:
// COPS-FTP opens real data sockets for those, which the simulator does not
// intercept.  The control channel — where all the protocol state lives —
// is fully exercised.
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ftp/ftp_server.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops::simnet {
namespace {

using std::chrono::milliseconds;

struct Scenario {
  std::string wire;                 // command lines, CRLF-joined
  std::vector<int> expected_codes;  // includes the 220 greeting
};

void add(Scenario& s, const std::string& line, int code) {
  s.wire += line + "\r\n";
  s.expected_codes.push_back(code);
}

// Commands legal (or near-legal) before authentication, with their codes.
void pre_login_step(std::mt19937_64& rng, Scenario& s) {
  switch (rng() % 8) {
    case 0: add(s, "NOOP", 200); break;
    case 1: add(s, "SYST", 215); break;
    case 2: add(s, "FEAT", 211); break;
    case 3: add(s, "PWD", 530); break;     // needs login
    case 4: add(s, "TYPE I", 530); break;  // needs login
    case 5: add(s, "PASS secret", 503); break;  // PASS before USER
    case 6: add(s, "XYZZ", 530); break;    // parses, but not logged in
    default: add(s, "123 bogus", 500); break;  // unparseable verb
  }
}

// Commands once authenticated (anonymous), with their codes.
void post_login_step(std::mt19937_64& rng, Scenario& s) {
  switch (rng() % 12) {
    case 0: add(s, "NOOP", 200); break;
    case 1: add(s, "SYST", 215); break;
    case 2: add(s, "FEAT", 211); break;
    case 3: add(s, "TYPE I", 200); break;
    case 4: add(s, "TYPE A", 200); break;
    case 5: add(s, "TYPE Q", 501); break;  // bad argument
    case 6: add(s, "PWD", 257); break;
    case 7: add(s, "CWD /", 250); break;
    case 8: add(s, "SIZE a.txt", 213); break;
    case 9: add(s, "SIZE no-such-file", 550); break;
    case 10: add(s, "XYZZ", 502); break;   // parsed but unimplemented
    default: add(s, "RNTO ghost.txt", 503); break;  // RNTO without RNFR
  }
}

Scenario generate_scenario(std::mt19937_64& rng) {
  Scenario s;
  s.expected_codes.push_back(220);  // greeting on connect
  const int before = static_cast<int>(rng() % 4);
  for (int i = 0; i < before; ++i) pre_login_step(rng, s);
  if (rng() % 3 == 0) {
    // A failed login first: unknown user rejected at PASS time.
    add(s, "USER mallory", 331);
    add(s, "PASS guesswork", 530);
  }
  add(s, "USER anonymous", 331);
  add(s, "PASS guest@example.org", 230);
  const int after = 3 + static_cast<int>(rng() % 8);
  for (int i = 0; i < after; ++i) post_login_step(rng, s);
  add(s, "QUIT", 221);
  return s;
}

// Extracts the reply codes from the raw control-channel bytes.  Replies are
// single-line "ddd text\r\n"; anything else fails the parse.
std::vector<int> reply_codes(const std::string& stream, std::string& error) {
  std::vector<int> codes;
  size_t pos = 0;
  while (pos < stream.size()) {
    const size_t eol = stream.find("\r\n", pos);
    if (eol == std::string::npos) {
      error = "unterminated reply line at offset " + std::to_string(pos);
      return codes;
    }
    const std::string line = stream.substr(pos, eol - pos);
    if (line.size() < 4 || line[3] != ' ' || !isdigit(line[0]) ||
        !isdigit(line[1]) || !isdigit(line[2])) {
      error = "malformed reply line: " + line;
      return codes;
    }
    codes.push_back(std::stoi(line.substr(0, 3)));
    pos = eol + 2;
  }
  return codes;
}

void run_ftp_model(uint64_t seed, const FaultPlan& plan,
                   std::vector<std::string>* trace_out = nullptr) {
  SimEngine engine(seed, plan);
  SCOPED_TRACE("replay seed=" + std::to_string(seed));

  test::TempDir dir;
  dir.write_file("a.txt", "ftp fixture file\n");

  auto options = ftp::CopsFtpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8121;
  ftp::FtpServerConfig config;
  config.root = dir.str();
  config.allow_anonymous = true;
  ftp::CopsFtpServer server(std::move(options), config);
  auto started = server.start();
  ASSERT_TRUE(started.is_ok()) << started.to_string();

  std::mt19937_64 model_rng(seed);
  const Scenario scenario = generate_scenario(model_rng);

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8121); });
  size_t pos = 0;
  int when_ms = 2;
  while (pos < scenario.wire.size()) {
    const size_t remaining = scenario.wire.size() - pos;
    const size_t chunk = 1 + model_rng() % remaining;
    const std::string piece = scenario.wire.substr(pos, chunk);
    engine.at(milliseconds(when_ms), [client, piece] { client->send(piece); });
    pos += chunk;
    when_ms += static_cast<int>(model_rng() % 3);
  }

  EXPECT_TRUE(engine.run(std::chrono::seconds(120)))
      << "scenario did not quiesce\n" << engine.trace_text();
  server.stop();

  std::string error;
  const auto codes = reply_codes(client->received(), error);
  EXPECT_TRUE(error.empty()) << error << "\nreceived:\n" << client->received();
  EXPECT_EQ(codes, scenario.expected_codes)
      << "received:\n" << client->received();
  // QUIT closes the control connection server-side.
  EXPECT_TRUE(client->peer_closed());
  EXPECT_TRUE(engine.failures().empty());
  if (trace_out != nullptr) *trace_out = engine.trace();
}

enum class Plan { kNone, kChaos };

FaultPlan to_plan(Plan plan) {
  return plan == Plan::kNone ? FaultPlan::none() : FaultPlan::chaos();
}

class FtpModelTest : public ::testing::TestWithParam<std::tuple<int, Plan>> {};

TEST_P(FtpModelTest, SessionMatchesModel) {
  const auto [seed, plan] = GetParam();
  run_ftp_model(static_cast<uint64_t>(seed), to_plan(plan));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FtpModelTest,
    ::testing::Combine(::testing::Range(1, 13),
                       ::testing::Values(Plan::kNone, Plan::kChaos)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Plan::kNone ? "_clean" : "_chaos");
    });

TEST(FtpModelDeterminismTest, SameSeedSameFullStackTrace) {
  std::vector<std::string> first;
  std::vector<std::string> second;
  run_ftp_model(515151, FaultPlan::chaos(), &first);
  run_ftp_model(515151, FaultPlan::chaos(), &second);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size())
      << "trace lengths diverged across identical runs";
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "first divergence at trace line " << i;
  }
}

}  // namespace
}  // namespace cops::simnet
