// Tests for the generative design pattern engine (options, template
// language, N-Server pattern template — Tables 1 and 2).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "gdp/option.hpp"
#include "gdp/pattern_template.hpp"
#include "gdp/template_lang.hpp"
#include "tests/test_util.hpp"

namespace cops::gdp {
namespace {

// ---------- option model --------------------------------------------------------

TEST(OptionSpec, BoolLegality) {
  OptionSpec spec{"x", "X", OptionType::kBool, {}, "no"};
  EXPECT_TRUE(spec.value_is_legal("yes"));
  EXPECT_TRUE(spec.value_is_legal("No"));
  EXPECT_FALSE(spec.value_is_legal("maybe"));
}

TEST(OptionSpec, EnumLegality) {
  OptionSpec spec{"c", "C", OptionType::kEnum, {"a", "b"}, "a"};
  EXPECT_TRUE(spec.value_is_legal("A"));
  EXPECT_FALSE(spec.value_is_legal("z"));
}

TEST(OptionSpec, IntRange) {
  OptionSpec spec{"n", "N", OptionType::kInt, {}, "1", 1, 8};
  EXPECT_TRUE(spec.value_is_legal("1"));
  EXPECT_TRUE(spec.value_is_legal("8"));
  EXPECT_FALSE(spec.value_is_legal("0"));
  EXPECT_FALSE(spec.value_is_legal("9"));
  EXPECT_FALSE(spec.value_is_legal("x"));
}

TEST(OptionTable, DefaultsFilledIn) {
  OptionTable table;
  table.add({"a", "A", OptionType::kBool, {}, "yes"});
  table.add({"b", "B", OptionType::kBool, {}, "no"});
  OptionSet set;
  set.set("b", "yes");
  const auto full = table.with_defaults(set);
  EXPECT_TRUE(full.get_bool("a"));
  EXPECT_TRUE(full.get_bool("b"));
}

TEST(OptionTable, ValidateCatchesUnknownAndIllegal) {
  OptionTable table;
  table.add({"a", "A", OptionType::kBool, {}, "yes"});
  OptionSet set;
  set.set("a", "maybe");
  set.set("ghost", "1");
  const auto problems = table.validate(set);
  EXPECT_EQ(problems.size(), 2u);
}

TEST(OptionTable, ConstraintEvaluatedWhenValuesLegal) {
  OptionTable table;
  table.add({"a", "A", OptionType::kBool, {}, "yes"});
  table.add_constraint("a must be yes", [](const OptionSet& set) {
    return set.get_bool("a") ? std::string{} : "a is no";
  });
  auto ok_set = table.with_defaults({});
  EXPECT_TRUE(table.validate(ok_set).empty());
  OptionSet bad;
  bad.set("a", "no");
  EXPECT_EQ(table.validate(bad).size(), 1u);
}

// ---------- expression language ---------------------------------------------------

OptionSet opts(std::initializer_list<std::pair<const char*, const char*>> kv) {
  OptionSet set;
  for (const auto& [k, v] : kv) set.set(k, v);
  return set;
}

TEST(Expr, IdentTruthiness) {
  auto expr = parse_expr("flag");
  ASSERT_TRUE(expr.is_ok());
  EXPECT_TRUE(expr.value()->evaluate(opts({{"flag", "yes"}})));
  EXPECT_FALSE(expr.value()->evaluate(opts({{"flag", "no"}})));
  EXPECT_FALSE(expr.value()->evaluate(opts({{"flag", "none"}})));
  EXPECT_FALSE(expr.value()->evaluate(opts({})));
}

TEST(Expr, Comparison) {
  auto expr = parse_expr("mode == \"debug\"");
  ASSERT_TRUE(expr.is_ok());
  EXPECT_TRUE(expr.value()->evaluate(opts({{"mode", "debug"}})));
  EXPECT_FALSE(expr.value()->evaluate(opts({{"mode", "production"}})));
}

TEST(Expr, NotEqualAndBareword) {
  auto expr = parse_expr("cache != none");
  ASSERT_TRUE(expr.is_ok());
  EXPECT_TRUE(expr.value()->evaluate(opts({{"cache", "lru"}})));
  EXPECT_FALSE(expr.value()->evaluate(opts({{"cache", "none"}})));
}

TEST(Expr, BooleanOperatorsAndParens) {
  auto expr = parse_expr("a && (b || !c)");
  ASSERT_TRUE(expr.is_ok());
  EXPECT_TRUE(expr.value()->evaluate(
      opts({{"a", "yes"}, {"b", "no"}, {"c", "no"}})));
  EXPECT_FALSE(expr.value()->evaluate(
      opts({{"a", "yes"}, {"b", "no"}, {"c", "yes"}})));
  EXPECT_FALSE(expr.value()->evaluate(
      opts({{"a", "no"}, {"b", "yes"}, {"c", "no"}})));
}

TEST(Expr, CollectKeys) {
  auto expr = parse_expr("a && b == \"x\" || !c");
  ASSERT_TRUE(expr.is_ok());
  std::set<std::string> keys;
  expr.value()->collect_keys(keys);
  EXPECT_EQ(keys, (std::set<std::string>{"a", "b", "c"}));
}

TEST(Expr, SyntaxErrors) {
  EXPECT_FALSE(parse_expr("a &&").is_ok());
  EXPECT_FALSE(parse_expr("(a").is_ok());
  EXPECT_FALSE(parse_expr("a == ").is_ok());
  EXPECT_FALSE(parse_expr("#bad").is_ok());
}

// ---------- template language ------------------------------------------------------

TEST(TemplateLang, PlainTextPassesThrough) {
  auto tmpl = Template::parse("line one\nline two\n");
  ASSERT_TRUE(tmpl.is_ok());
  auto out = tmpl.value().render({});
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), "line one\nline two\n");
}

TEST(TemplateLang, IfIncludesAndExcludes) {
  const char* source =
      "always\n"
      "//% if feature\n"
      "included\n"
      "//% end\n"
      "tail\n";
  auto tmpl = Template::parse(source);
  ASSERT_TRUE(tmpl.is_ok());
  auto on = tmpl.value().render(opts({{"feature", "yes"}}));
  ASSERT_TRUE(on.is_ok());
  EXPECT_EQ(on.value(), "always\nincluded\ntail\n");
  auto off = tmpl.value().render(opts({{"feature", "no"}}));
  ASSERT_TRUE(off.is_ok());
  EXPECT_EQ(off.value(), "always\ntail\n");
}

TEST(TemplateLang, ElifElseChain) {
  const char* source =
      "//% if mode == \"a\"\n"
      "A\n"
      "//% elif mode == \"b\"\n"
      "B\n"
      "//% else\n"
      "C\n"
      "//% end\n";
  auto tmpl = Template::parse(source);
  ASSERT_TRUE(tmpl.is_ok());
  EXPECT_EQ(tmpl.value().render(opts({{"mode", "a"}})).value(), "A\n");
  EXPECT_EQ(tmpl.value().render(opts({{"mode", "b"}})).value(), "B\n");
  EXPECT_EQ(tmpl.value().render(opts({{"mode", "z"}})).value(), "C\n");
}

TEST(TemplateLang, NestedConditionals) {
  const char* source =
      "//% if outer\n"
      "//% if inner\n"
      "both\n"
      "//% else\n"
      "outer-only\n"
      "//% end\n"
      "//% end\n";
  auto tmpl = Template::parse(source);
  ASSERT_TRUE(tmpl.is_ok());
  EXPECT_EQ(
      tmpl.value().render(opts({{"outer", "yes"}, {"inner", "yes"}})).value(),
      "both\n");
  EXPECT_EQ(
      tmpl.value().render(opts({{"outer", "yes"}, {"inner", "no"}})).value(),
      "outer-only\n");
  EXPECT_EQ(
      tmpl.value().render(opts({{"outer", "no"}, {"inner", "yes"}})).value(),
      "");
}

TEST(TemplateLang, Substitution) {
  auto tmpl = Template::parse("port = ${port};\n");
  ASSERT_TRUE(tmpl.is_ok());
  auto out = tmpl.value().render(opts({{"port", "8080"}}));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), "port = 8080;\n");
}

TEST(TemplateLang, ExtrasAndUnknownPassThrough) {
  auto tmpl = Template::parse("${name} keeps ${CMAKE_VAR}\n");
  ASSERT_TRUE(tmpl.is_ok());
  auto out = tmpl.value().render({}, {{"name", "App"}});
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), "App keeps ${CMAKE_VAR}\n");
}

TEST(TemplateLang, ReportsConditionAndSubstitutionKeys) {
  auto tmpl = Template::parse(
      "//% if scheduling && mode == \"debug\"\n${quota}\n//% end\n");
  ASSERT_TRUE(tmpl.is_ok());
  EXPECT_EQ(tmpl.value().condition_keys(),
            (std::set<std::string>{"scheduling", "mode"}));
  EXPECT_EQ(tmpl.value().substitution_keys(),
            (std::set<std::string>{"quota"}));
}

TEST(TemplateLang, ParseErrors) {
  EXPECT_FALSE(Template::parse("//% if a\nno end\n").is_ok());
  EXPECT_FALSE(Template::parse("//% end\n").is_ok());
  EXPECT_FALSE(Template::parse("//% else\n").is_ok());
  EXPECT_FALSE(Template::parse("//% frobnicate\n").is_ok());
  EXPECT_FALSE(
      Template::parse("//% if a\n//% else\n//% elif b\n//% end\n").is_ok());
}

// ---------- the N-Server pattern template -------------------------------------------

TEST(NServerTemplate, PresetsValidate) {
  const auto tmpl = make_nserver_template();
  EXPECT_TRUE(tmpl.options()
                  .validate(tmpl.options().with_defaults(nserver_http_options()))
                  .empty());
  EXPECT_TRUE(tmpl.options()
                  .validate(tmpl.options().with_defaults(nserver_ftp_options()))
                  .empty());
}

TEST(NServerTemplate, ConstraintRejectsSchedulingWithoutPool) {
  const auto tmpl = make_nserver_template();
  auto bad = nserver_http_options();
  bad.set("separate_pool", "no");
  bad.set("event_scheduling", "yes");
  auto rendered = tmpl.render_all(bad, {{"app_name", "X"}});
  EXPECT_FALSE(rendered.is_ok());
}

TEST(NServerTemplate, ConditionalFilesFollowOptions) {
  const auto tmpl = make_nserver_template();
  auto http = tmpl.render_all(nserver_http_options(),
                              {{"app_name", "H"}, {"listen_port", "0"}});
  ASSERT_TRUE(http.is_ok()) << http.status().to_string();
  // HTTP: async completions + LRU cache + static threads.
  EXPECT_TRUE(http.value().count("completion_config.hpp"));
  EXPECT_TRUE(http.value().count("cache_config.hpp"));
  EXPECT_FALSE(http.value().count("controller_config.hpp"));

  auto ftp = tmpl.render_all(nserver_ftp_options(),
                             {{"app_name", "F"}, {"listen_port", "0"}});
  ASSERT_TRUE(ftp.is_ok());
  // FTP: sync completions, no cache, dynamic threads.
  EXPECT_FALSE(ftp.value().count("completion_config.hpp"));
  EXPECT_FALSE(ftp.value().count("cache_config.hpp"));
  EXPECT_TRUE(ftp.value().count("controller_config.hpp"));
}

TEST(NServerTemplate, GeneratedTraitsReflectOptions) {
  const auto tmpl = make_nserver_template();
  auto rendered = tmpl.render_all(nserver_ftp_options(),
                                  {{"app_name", "F"}, {"listen_port", "0"}});
  ASSERT_TRUE(rendered.is_ok());
  const auto& traits = rendered.value().at("traits.hpp");
  EXPECT_NE(traits.find("kAsyncCompletion = false"), std::string::npos);
  EXPECT_NE(traits.find("kDynamicThreads = true"), std::string::npos);
  EXPECT_NE(traits.find("kShutdownLongIdle = true"), std::string::npos);
  EXPECT_NE(traits.find("kFileCache = false"), std::string::npos);
}

TEST(NServerTemplate, SchedulingCrosscutsGeneratedUnits) {
  // The paper's O8 example: enabling event scheduling changes the Event
  // layer, the hooks, and the processor — a crosscutting variation.
  const auto tmpl = make_nserver_template();
  auto base = nserver_http_options();
  auto with = base;
  with.set("event_scheduling", "yes");
  auto off = tmpl.render_all(base, {{"app_name", "A"}, {"listen_port", "0"}});
  auto on = tmpl.render_all(with, {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(off.is_ok());
  ASSERT_TRUE(on.is_ok());
  int changed = 0;
  for (const auto& [path, contents] : on.value()) {
    auto it = off.value().find(path);
    if (it == off.value().end() || it->second != contents) ++changed;
  }
  EXPECT_GE(changed, 4) << "scheduling should crosscut several units";
  EXPECT_NE(on.value().at("hooks.hpp").find("classify_priority"),
            std::string::npos);
  EXPECT_EQ(off.value().at("hooks.hpp").find("classify_priority"),
            std::string::npos);
}

TEST(NServerTemplate, StatsExportOffEmitsNoAdminCode) {
  const auto tmpl = make_nserver_template();
  // Presets default to stats_export=none: no admin unit, no admin wiring.
  auto off = tmpl.render_all(nserver_http_options(),
                             {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(off.is_ok());
  EXPECT_FALSE(off.value().count("admin_config.hpp"));
  EXPECT_EQ(off.value().at("server_main.cpp").find("StatsExport"),
            std::string::npos);
  EXPECT_NE(off.value().at("traits.hpp").find("kAdminExport = false"),
            std::string::npos);
}

TEST(NServerTemplate, StatsExportOnGeneratesAdminWiring) {
  const auto tmpl = make_nserver_template();
  auto with = nserver_http_options();
  with.set("profiling", "yes");
  with.set("stats_export", "admin_http");
  auto on = tmpl.render_all(with, {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(on.is_ok()) << on.status().to_string();
  ASSERT_TRUE(on.value().count("admin_config.hpp"));
  EXPECT_NE(on.value().at("admin_config.hpp").find("kAdminHost"),
            std::string::npos);
  const auto& main_cpp = on.value().at("server_main.cpp");
  EXPECT_NE(main_cpp.find("StatsExport::kAdminHttp"), std::string::npos);
  EXPECT_NE(main_cpp.find("#include \"admin_config.hpp\""),
            std::string::npos);
  EXPECT_NE(on.value().at("traits.hpp").find("kAdminExport = true"),
            std::string::npos);
}

TEST(NServerTemplate, SendPathOptionCrosscutsGeneratedUnits) {
  const auto tmpl = make_nserver_template();
  // The HTTP preset (send_path=writev) emits the send unit and wires the
  // segmented path; flipping to copy removes both without disturbing the
  // other units.
  auto writev_set = nserver_http_options();
  auto copy_set = writev_set;
  copy_set.set("send_path", "copy");
  auto on = tmpl.render_all(writev_set, {{"app_name", "A"}, {"listen_port", "0"}});
  auto off = tmpl.render_all(copy_set, {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(on.is_ok());
  ASSERT_TRUE(off.is_ok());
  EXPECT_TRUE(on.value().count("send_config.hpp"));
  EXPECT_FALSE(off.value().count("send_config.hpp"));
  EXPECT_NE(on.value().at("traits.hpp").find("kZeroCopySend = true"),
            std::string::npos);
  EXPECT_NE(off.value().at("traits.hpp").find("kZeroCopySend = false"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("SendPath::kWritev"),
            std::string::npos);
  EXPECT_NE(off.value().at("server_main.cpp").find("SendPath::kCopy"),
            std::string::npos);

  auto sendfile_set = writev_set;
  sendfile_set.set("send_path", "sendfile");
  auto sf = tmpl.render_all(sendfile_set,
                            {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(sf.is_ok());
  EXPECT_NE(sf.value().at("send_config.hpp").find("kSendfileMinBytes"),
            std::string::npos);
  EXPECT_NE(sf.value().at("server_main.cpp").find("sendfile_min_bytes"),
            std::string::npos);
  EXPECT_NE(sf.value().at("traits.hpp").find("kSendfile = true"),
            std::string::npos);
}

TEST(NServerTemplate, SendPathAppendsWithoutRenumbering) {
  // The crosscut (Table 2) gains a send_path column while the paper's
  // original columns stay put — the README option table still lists every
  // option in order.
  const auto tmpl = make_nserver_template();
  auto matrix = tmpl.crosscut();
  ASSERT_TRUE(matrix.is_ok());
  EXPECT_TRUE(matrix.value().at("Send Reply").at("send_path").existence);
  auto rendered = tmpl.render_all(nserver_http_options(),
                                  {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(rendered.is_ok());
  const auto& readme = rendered.value().at("README.md");
  const size_t stats_row = readme.find("O11+ statistics export");
  const size_t send_row = readme.find("S1 send-reply path");
  ASSERT_NE(stats_row, std::string::npos);
  ASSERT_NE(send_row, std::string::npos);
  EXPECT_LT(stats_row, send_row) << "send_path must append after O11+";
}

TEST(NServerTemplate, BufferMgmtOptionCrosscutsGeneratedUnits) {
  const auto tmpl = make_nserver_template();
  // The HTTP preset (buffer_mgmt=pooled) emits the buffer unit and wires
  // the pooled path; flipping to per_request removes both.
  auto pooled_set = nserver_http_options();
  auto per_request_set = pooled_set;
  per_request_set.set("buffer_mgmt", "per_request");
  auto on =
      tmpl.render_all(pooled_set, {{"app_name", "A"}, {"listen_port", "0"}});
  auto off = tmpl.render_all(per_request_set,
                             {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(on.is_ok());
  ASSERT_TRUE(off.is_ok());
  EXPECT_TRUE(on.value().count("buffer_config.hpp"));
  EXPECT_FALSE(off.value().count("buffer_config.hpp"));
  EXPECT_NE(on.value().at("traits.hpp").find("kPooledBuffers = true"),
            std::string::npos);
  EXPECT_NE(off.value().at("traits.hpp").find("kPooledBuffers = false"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("BufferMgmt::kPooled"),
            std::string::npos);
  EXPECT_NE(
      off.value().at("server_main.cpp").find("BufferMgmt::kPerRequest"),
      std::string::npos);
  EXPECT_NE(on.value().at("buffer_config.hpp").find("kReadBufferBlockBytes"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("read_buffer_block_bytes"),
            std::string::npos);
  // The FTP preset stays per_request (one short command per connection
  // gains nothing from recycling).
  EXPECT_EQ(nserver_ftp_options().get("buffer_mgmt"), "per_request");
}

TEST(NServerTemplate, BufferMgmtAppendsWithoutRenumbering) {
  // buffer_mgmt joins Table 2 as its own column while everything already
  // there stays put; in the README option table it rows after send_path.
  const auto tmpl = make_nserver_template();
  auto matrix = tmpl.crosscut();
  ASSERT_TRUE(matrix.is_ok());
  EXPECT_TRUE(
      matrix.value().at("Buffer Management").at("buffer_mgmt").existence);
  EXPECT_TRUE(matrix.value().at("Send Reply").at("send_path").existence);
  auto rendered = tmpl.render_all(nserver_http_options(),
                                  {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(rendered.is_ok());
  const auto& readme = rendered.value().at("README.md");
  const size_t send_row = readme.find("S1 send-reply path");
  const size_t buffer_row = readme.find("S2 buffer management");
  ASSERT_NE(send_row, std::string::npos);
  ASSERT_NE(buffer_row, std::string::npos);
  EXPECT_LT(send_row, buffer_row) << "buffer_mgmt must append after S1";
}

TEST(NServerTemplate, BodyFramingOptionCrosscutsGeneratedUnits) {
  const auto tmpl = make_nserver_template();
  // Both presets default to content_length (zero behaviour change for the
  // paper's servers); flipping to chunked emits the framing unit and wires
  // the chunked reply path.
  auto cl_set = nserver_http_options();
  auto chunked_set = cl_set;
  chunked_set.set("body_framing", "chunked");
  auto off = tmpl.render_all(cl_set, {{"app_name", "A"}, {"listen_port", "0"}});
  auto on = tmpl.render_all(chunked_set,
                            {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(off.is_ok());
  ASSERT_TRUE(on.is_ok());
  EXPECT_TRUE(on.value().count("framing_config.hpp"));
  EXPECT_FALSE(off.value().count("framing_config.hpp"));
  EXPECT_NE(on.value().at("traits.hpp").find("kChunkedReplies = true"),
            std::string::npos);
  EXPECT_NE(off.value().at("traits.hpp").find("kChunkedReplies = false"),
            std::string::npos);
  EXPECT_NE(
      on.value().at("server_main.cpp").find("BodyFraming::kChunked"),
      std::string::npos);
  EXPECT_NE(
      off.value().at("server_main.cpp").find("BodyFraming::kContentLength"),
      std::string::npos);
  EXPECT_NE(on.value().at("framing_config.hpp").find("kChunkedMinBytes"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("chunked_min_bytes"),
            std::string::npos);
  // Both shipped presets stay on content_length.
  EXPECT_EQ(nserver_http_options().get("body_framing"), "content_length");
  EXPECT_EQ(nserver_ftp_options().get("body_framing"), "content_length");
}

TEST(NServerTemplate, BodyFramingAppendsWithoutRenumbering) {
  // body_framing joins Table 2 as its own column while everything already
  // there stays put; in the README option table it rows after buffer_mgmt.
  const auto tmpl = make_nserver_template();
  auto matrix = tmpl.crosscut();
  ASSERT_TRUE(matrix.is_ok());
  EXPECT_TRUE(matrix.value().at("Body Framing").at("body_framing").existence);
  EXPECT_TRUE(
      matrix.value().at("Buffer Management").at("buffer_mgmt").existence);
  auto rendered = tmpl.render_all(nserver_http_options(),
                                  {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(rendered.is_ok());
  const auto& readme = rendered.value().at("README.md");
  const size_t buffer_row = readme.find("S2 buffer management");
  const size_t framing_row = readme.find("S3 body framing");
  ASSERT_NE(buffer_row, std::string::npos);
  ASSERT_NE(framing_row, std::string::npos);
  EXPECT_LT(buffer_row, framing_row) << "body_framing must append after S2";
}

TEST(NServerTemplate, ProxyUpstreamOptionCrosscutsGeneratedUnits) {
  const auto tmpl = make_nserver_template();
  // Both presets default to per_request (zero behaviour change for the
  // paper's servers); flipping to pooled emits the proxy unit and wires the
  // pooled upstream mode + cap into the options block.
  auto per_request_set = nserver_http_options();
  auto pooled_set = per_request_set;
  pooled_set.set("proxy_upstream", "pooled");
  auto off = tmpl.render_all(per_request_set,
                             {{"app_name", "A"}, {"listen_port", "0"}});
  auto on =
      tmpl.render_all(pooled_set, {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(off.is_ok());
  ASSERT_TRUE(on.is_ok());
  EXPECT_TRUE(on.value().count("proxy_config.hpp"));
  EXPECT_FALSE(off.value().count("proxy_config.hpp"));
  EXPECT_NE(on.value().at("traits.hpp").find("kPooledUpstream = true"),
            std::string::npos);
  EXPECT_NE(off.value().at("traits.hpp").find("kPooledUpstream = false"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("UpstreamMode::kPooled"),
            std::string::npos);
  EXPECT_NE(
      off.value().at("server_main.cpp").find("UpstreamMode::kPerRequest"),
      std::string::npos);
  EXPECT_NE(on.value().at("proxy_config.hpp").find("kUpstreamPoolCap"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("upstream_pool_cap"),
            std::string::npos);
  // Both shipped presets stay on per_request.
  EXPECT_EQ(nserver_http_options().get("proxy_upstream"), "per_request");
  EXPECT_EQ(nserver_ftp_options().get("proxy_upstream"), "per_request");
}

TEST(NServerTemplate, ProxyUpstreamAppendsWithoutRenumbering) {
  // proxy_upstream joins Table 2 as its own column while everything already
  // there stays put; in the README option table it rows after body_framing.
  const auto tmpl = make_nserver_template();
  auto matrix = tmpl.crosscut();
  ASSERT_TRUE(matrix.is_ok());
  EXPECT_TRUE(
      matrix.value().at("Proxy Upstream").at("proxy_upstream").existence);
  EXPECT_TRUE(matrix.value().at("Body Framing").at("body_framing").existence);
  auto rendered = tmpl.render_all(nserver_http_options(),
                                  {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(rendered.is_ok());
  const auto& readme = rendered.value().at("README.md");
  const size_t framing_row = readme.find("S3 body framing");
  const size_t proxy_row = readme.find("S4 proxy upstream");
  ASSERT_NE(framing_row, std::string::npos);
  ASSERT_NE(proxy_row, std::string::npos);
  EXPECT_LT(framing_row, proxy_row) << "proxy_upstream must append after S3";
}

TEST(NServerTemplate, OverloadOptionCrosscutsGeneratedUnits) {
  const auto tmpl = make_nserver_template();
  // Both presets default to watermark (zero behaviour change for the
  // paper's servers); flipping to adaptive emits the overload unit and
  // wires the adaptive mode + control-loop knobs into the options block.
  auto watermark_set = nserver_http_options();
  auto adaptive_set = watermark_set;
  adaptive_set.set("overload_control", "yes");  // S5/O9 constraint
  adaptive_set.set("overload", "adaptive");
  auto off = tmpl.render_all(watermark_set,
                             {{"app_name", "A"}, {"listen_port", "0"}});
  auto on =
      tmpl.render_all(adaptive_set, {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(off.is_ok());
  ASSERT_TRUE(on.is_ok());
  EXPECT_TRUE(on.value().count("overload_config.hpp"));
  EXPECT_FALSE(off.value().count("overload_config.hpp"));
  EXPECT_NE(on.value().at("traits.hpp").find("kAdaptiveOverload = true"),
            std::string::npos);
  EXPECT_NE(off.value().at("traits.hpp").find("kAdaptiveOverload = false"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("OverloadMode::kAdaptive"),
            std::string::npos);
  EXPECT_NE(
      off.value().at("server_main.cpp").find("OverloadMode::kWatermark"),
      std::string::npos);
  EXPECT_NE(on.value().at("overload_config.hpp").find("kOverloadTargetDelayMs"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("overload_target_delay"),
            std::string::npos);
  // Both shipped presets stay on watermark.
  EXPECT_EQ(nserver_http_options().get("overload"), "watermark");
  EXPECT_EQ(nserver_ftp_options().get("overload"), "watermark");
}

TEST(NServerTemplate, OverloadAppendsWithoutRenumbering) {
  // overload joins Table 2 as its own column while everything already there
  // stays put; in the README option table it rows after proxy_upstream.
  const auto tmpl = make_nserver_template();
  auto matrix = tmpl.crosscut();
  ASSERT_TRUE(matrix.is_ok());
  EXPECT_TRUE(matrix.value().at("Overload Manager").at("overload").existence);
  EXPECT_TRUE(
      matrix.value().at("Proxy Upstream").at("proxy_upstream").existence);
  auto rendered = tmpl.render_all(nserver_http_options(),
                                  {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(rendered.is_ok());
  const auto& readme = rendered.value().at("README.md");
  const size_t proxy_row = readme.find("S4 proxy upstream");
  const size_t overload_row = readme.find("S5 overload");
  ASSERT_NE(proxy_row, std::string::npos);
  ASSERT_NE(overload_row, std::string::npos);
  EXPECT_LT(proxy_row, overload_row) << "overload must append after S4";
}

TEST(NServerTemplate, AcceptPathOptionCrosscutsGeneratedUnits) {
  const auto tmpl = make_nserver_template();
  // Both presets default to dispatch (the paper's single-listener servers
  // are untouched); flipping to reuseport emits the shard unit and wires
  // the accept path + per-shard L1 sizing into the options block.
  auto dispatch_set = nserver_http_options();
  auto reuseport_set = dispatch_set;
  reuseport_set.set("accept_path", "reuseport");
  auto off = tmpl.render_all(dispatch_set,
                             {{"app_name", "A"}, {"listen_port", "0"}});
  auto on = tmpl.render_all(reuseport_set,
                            {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(off.is_ok());
  ASSERT_TRUE(on.is_ok());
  EXPECT_TRUE(on.value().count("shard_config.hpp"));
  EXPECT_FALSE(off.value().count("shard_config.hpp"));
  EXPECT_NE(on.value().at("traits.hpp").find("kReuseportAccept = true"),
            std::string::npos);
  EXPECT_NE(off.value().at("traits.hpp").find("kReuseportAccept = false"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("AcceptPath::kReuseport"),
            std::string::npos);
  EXPECT_NE(off.value().at("server_main.cpp").find("AcceptPath::kDispatch"),
            std::string::npos);
  EXPECT_NE(on.value().at("shard_config.hpp").find("kShardListeners"),
            std::string::npos);
  // The preset keeps a file cache, so the shard unit sizes the L1 tier and
  // server_main wires it through.
  EXPECT_NE(on.value().at("shard_config.hpp").find("kCacheL1Entries"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("cache_l1_entries"),
            std::string::npos);
  EXPECT_EQ(off.value().at("server_main.cpp").find("cache_l1_entries"),
            std::string::npos);
  // Both shipped presets stay on dispatch.
  EXPECT_EQ(nserver_http_options().get("accept_path"), "dispatch");
  EXPECT_EQ(nserver_ftp_options().get("accept_path"), "dispatch");
}

TEST(NServerTemplate, AcceptPathWithoutCacheSkipsL1Sizing) {
  // The nested conditional: a cacheless reuseport server still gets its
  // shard unit, but no L1 tier constants (the L1 fronts the L2 — without
  // an L2 there is nothing to front).
  const auto tmpl = make_nserver_template();
  auto set = nserver_http_options();
  set.set("accept_path", "reuseport");
  set.set("file_cache", "none");
  auto rendered =
      tmpl.render_all(set, {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(rendered.is_ok());
  const auto& shard = rendered.value().at("shard_config.hpp");
  EXPECT_NE(shard.find("kShardListeners"), std::string::npos);
  EXPECT_EQ(shard.find("kCacheL1Entries"), std::string::npos);
  EXPECT_EQ(rendered.value().at("server_main.cpp").find("cache_l1_entries"),
            std::string::npos);
}

TEST(NServerTemplate, AcceptPathAppendsWithoutRenumbering) {
  // accept_path joins Table 2 as its own column while everything already
  // there stays put; in the README option table it rows after overload.
  const auto tmpl = make_nserver_template();
  auto matrix = tmpl.crosscut();
  ASSERT_TRUE(matrix.is_ok());
  EXPECT_TRUE(matrix.value().at("Shard Accept").at("accept_path").existence);
  EXPECT_TRUE(matrix.value().at("Overload Manager").at("overload").existence);
  auto rendered = tmpl.render_all(nserver_http_options(),
                                  {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(rendered.is_ok());
  const auto& readme = rendered.value().at("README.md");
  const size_t overload_row = readme.find("S5 overload");
  const size_t accept_row = readme.find("S6 accept path");
  ASSERT_NE(overload_row, std::string::npos);
  ASSERT_NE(accept_row, std::string::npos);
  EXPECT_LT(overload_row, accept_row) << "accept_path must append after S5";
}

TEST(NServerTemplate, IoBackendOptionCrosscutsGeneratedUnits) {
  const auto tmpl = make_nserver_template();
  // Both presets default to epoll (the reactive paper servers are
  // untouched); flipping to io_uring emits the io_config unit and wires
  // the backend choice into the traits and the options block.
  auto epoll_set = nserver_http_options();
  auto uring_set = epoll_set;
  uring_set.set("io_backend", "io_uring");
  auto off = tmpl.render_all(epoll_set,
                             {{"app_name", "A"}, {"listen_port", "0"}});
  auto on = tmpl.render_all(uring_set,
                            {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(off.is_ok());
  ASSERT_TRUE(on.is_ok());
  EXPECT_TRUE(on.value().count("io_config.hpp"));
  EXPECT_FALSE(off.value().count("io_config.hpp"));
  EXPECT_NE(on.value().at("traits.hpp").find("kUringBackend = true"),
            std::string::npos);
  EXPECT_NE(off.value().at("traits.hpp").find("kUringBackend = false"),
            std::string::npos);
  EXPECT_NE(on.value().at("server_main.cpp").find("IoBackend::kIoUring"),
            std::string::npos);
  EXPECT_NE(off.value().at("server_main.cpp").find("IoBackend::kEpoll"),
            std::string::npos);
  EXPECT_NE(on.value().at("io_config.hpp").find("kIoUringRequested"),
            std::string::npos);
  EXPECT_NE(on.value().at("io_config.hpp").find("kUringFileSlabBytes"),
            std::string::npos);
  // Both shipped presets stay on epoll.
  EXPECT_EQ(nserver_http_options().get("io_backend"), "epoll");
  EXPECT_EQ(nserver_ftp_options().get("io_backend"), "epoll");
}

TEST(NServerTemplate, IoBackendAppendsWithoutRenumbering) {
  // io_backend joins Table 2 as its own column while everything already
  // there stays put; in the README option table it rows after accept_path.
  const auto tmpl = make_nserver_template();
  auto matrix = tmpl.crosscut();
  ASSERT_TRUE(matrix.is_ok());
  EXPECT_TRUE(matrix.value().at("I/O Backend").at("io_backend").existence);
  EXPECT_TRUE(matrix.value().at("Shard Accept").at("accept_path").existence);
  auto rendered = tmpl.render_all(nserver_http_options(),
                                  {{"app_name", "A"}, {"listen_port", "0"}});
  ASSERT_TRUE(rendered.is_ok());
  const auto& readme = rendered.value().at("README.md");
  const size_t accept_row = readme.find("S6 accept path");
  const size_t io_row = readme.find("S7 io backend");
  ASSERT_NE(accept_row, std::string::npos);
  ASSERT_NE(io_row, std::string::npos);
  EXPECT_LT(accept_row, io_row) << "io_backend must append after S6";
}

TEST(NServerTemplate, ConstraintRejectsAdaptiveOverloadWithoutO9) {
  const auto tmpl = make_nserver_template();
  auto bad = nserver_http_options();
  bad.set("overload_control", "no");
  bad.set("overload", "adaptive");
  EXPECT_FALSE(
      tmpl.render_all(bad, {{"app_name", "X"}, {"listen_port", "0"}}).is_ok());
}

TEST(NServerTemplate, ConstraintRejectsExportWithoutProfiling) {
  const auto tmpl = make_nserver_template();
  auto bad = nserver_http_options();
  bad.set("profiling", "no");
  bad.set("stats_export", "admin_http");
  EXPECT_FALSE(
      tmpl.render_all(bad, {{"app_name", "X"}, {"listen_port", "0"}}).is_ok());
}

TEST(NServerTemplate, CrosscutMatrixMatchesTable2Anchors) {
  const auto tmpl = make_nserver_template();
  auto matrix = tmpl.crosscut();
  ASSERT_TRUE(matrix.is_ok());
  const auto& m = matrix.value();
  // Table 2 anchor points: Completion Event exists per O4; Processor
  // Controller exists per O5; Cache exists per O6 and depends on O11;
  // Event depends on O4 and O8.
  EXPECT_TRUE(m.at("Completion Event").at("completion").existence);
  EXPECT_TRUE(m.at("Processor Controller").at("thread_alloc").existence);
  EXPECT_TRUE(m.at("Cache").at("file_cache").existence);
  EXPECT_TRUE(m.at("Cache").at("profiling").body);
  EXPECT_TRUE(m.at("Event").at("event_scheduling").body);
  EXPECT_TRUE(m.at("Event").at("completion").body);
}

TEST(NServerTemplate, FormatCrosscutTableRenders) {
  const auto tmpl = make_nserver_template();
  auto table = tmpl.format_crosscut_table();
  ASSERT_TRUE(table.is_ok());
  EXPECT_NE(table.value().find("Reactor"), std::string::npos);
  EXPECT_NE(table.value().find("O12"), std::string::npos);
}

TEST(NServerTemplate, GenerateWritesFilesAndStats) {
  const auto tmpl = make_nserver_template();
  test::TempDir out;
  auto report = tmpl.generate(nserver_http_options(), out.str(),
                              {{"app_name", "GenApp"}, {"listen_port", "0"}});
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GE(report.value().files.size(), 10u);
  EXPECT_GT(report.value().totals.ncss, 50);
  std::ifstream in(out.str() + "/server_main.cpp");
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("GenApp"), std::string::npos);
  EXPECT_NE(contents.find("CachePolicyKind::kLru"), std::string::npos);
}

// ---- the generic Reactor pattern template -------------------------------------

TEST(ReactorTemplate, FindPatternResolvesBuiltins) {
  EXPECT_TRUE(find_pattern("nserver").has_value());
  EXPECT_TRUE(find_pattern("reactor").has_value());
  EXPECT_FALSE(find_pattern("unknown").has_value());
}

TEST(ReactorTemplate, RendersWithDefaults) {
  const auto tmpl = make_reactor_template();
  auto rendered = tmpl.render_all({}, {{"app_name", "Sim"}});
  ASSERT_TRUE(rendered.is_ok()) << rendered.status().to_string();
  EXPECT_TRUE(rendered.value().count("event_loop_main.cpp"));
  EXPECT_TRUE(rendered.value().count("handlers.hpp"));
  // Timers default on: the periodic-timer wiring and hook are generated.
  EXPECT_NE(rendered.value().at("event_loop_main.cpp").find("run_after"),
            std::string::npos);
  EXPECT_NE(rendered.value().at("handlers.hpp").find("on_timer"),
            std::string::npos);
}

TEST(ReactorTemplate, TimersOffPrunesTimerCode) {
  const auto tmpl = make_reactor_template();
  OptionSet options;
  options.set("timers", "no");
  auto rendered = tmpl.render_all(options, {{"app_name", "Sim"}});
  ASSERT_TRUE(rendered.is_ok());
  EXPECT_EQ(rendered.value().at("event_loop_main.cpp").find("run_after"),
            std::string::npos);
  EXPECT_EQ(rendered.value().at("handlers.hpp").find("on_timer"),
            std::string::npos);
}

TEST(ReactorTemplate, SchedulingNeedsWorkerPool) {
  const auto tmpl = make_reactor_template();
  OptionSet options;
  options.set("worker_pool", "no");
  options.set("event_scheduling", "yes");
  EXPECT_FALSE(tmpl.render_all(options, {{"app_name", "X"}}).is_ok());
}

TEST(ReactorTemplate, GeneratedLoopCompiles) {
  const auto tmpl = make_reactor_template();
  test::TempDir out;
  auto report = tmpl.generate({}, out.str(), {{"app_name", "SimApp"}});
  ASSERT_TRUE(report.is_ok());
  const std::string compile = "g++ -fsyntax-only -std=c++20 -I " +
                              std::string(COPS_SOURCE_DIR) + "/src -I " +
                              out.str() + " " + out.str() +
                              "/event_loop_main.cpp 2>/dev/null";
  EXPECT_EQ(std::system(compile.c_str()), 0) << compile;
}

// The flagship property: every generated scaffold compiles.  This pins the
// whole chain — option validation, conditional inclusion, substitution —
// against the real headers.
class ScaffoldCompileTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ScaffoldCompileTest, GeneratedCodeCompiles) {
  const std::string which = GetParam();
  const auto tmpl = make_nserver_template();
  OptionSet options;
  if (which == "http") {
    options = nserver_http_options();
  } else if (which == "ftp") {
    options = nserver_ftp_options();
  } else if (which == "scheduling_debug") {
    options = nserver_http_options();
    options.set("event_scheduling", "yes");
    options.set("overload_control", "yes");
    options.set("mode", "debug");
    options.set("profiling", "yes");
    options.set("logging", "yes");
    options.set("shutdown_long_idle", "yes");
    options.set("file_cache", "custom");
  } else {  // raw: no encode/decode, inline dispatch
    options = nserver_http_options();
    options.set("encode_decode", "no");
    options.set("separate_pool", "no");
    options.set("file_cache", "none");
  }
  test::TempDir out;
  auto report = tmpl.generate(options, out.str(),
                              {{"app_name", "Scaffold"}, {"listen_port", "0"}});
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();

  const std::string compile = "g++ -fsyntax-only -std=c++20 -I " +
                              std::string(COPS_SOURCE_DIR) + "/src -I " +
                              out.str() + " " + out.str() +
                              "/server_main.cpp " + out.str() +
                              "/hooks.cpp 2>/dev/null";
  EXPECT_EQ(std::system(compile.c_str()), 0) << compile;
}

INSTANTIATE_TEST_SUITE_P(Presets, ScaffoldCompileTest,
                         ::testing::Values("http", "ftp", "scheduling_debug",
                                           "raw"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace cops::gdp
