// Model-based protocol tests for the streaming L7 proxy (src/proxy) under
// the deterministic network simulator.
//
// The model is the proxy's protocol contract, checked against scripted
// origins that misbehave on purpose (tests/proxy_test_util.hpp):
//
//   * hop-by-hop headers are stripped in BOTH directions and a Via header
//     is added in both directions (observable because the echo origin
//     returns the request head it saw as its response body);
//   * upstream connect failure → 502; an origin that accepts and goes
//     silent → 504 on the upstream header deadline (virtual clock);
//   * a malformed origin response → 502 and the connection is poisoned —
//     never re-parked, never reused;
//   * chunked bodies stream through both directions with the framing
//     forwarded byte-identically;
//   * a reused pooled connection reset between requests is retried exactly
//     once on a fresh connection, invisibly to the client;
//   * drain_backend() empties the pool without killing in-flight streams;
//   * watermark backpressure pauses reads instead of buffering the body;
//
// and every scenario replays bit-identically per seed: the proxy's event
// stream is folded into the engine trace and two same-seed runs compare
// equal (the TESTING.md model-based-testing discipline applied to the
// proxy data plane).
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proxy/proxy_server.hpp"
#include "simnet/sim_engine.hpp"
#include "tests/proxy_test_util.hpp"

namespace cops::proxy {
namespace {

using simnet::SimClient;
using simnet::SimEngine;
using test::ScriptedBackend;

constexpr uint16_t kProxyPort = 8400;
constexpr uint16_t kBackendPortBase = 8401;

ProxyConfig sim_config(SimEngine& engine) {
  ProxyConfig config;
  config.listen_port = kProxyPort;
  config.event_listener = [&engine](const std::string& event) {
    engine.record(event);
  };
  return config;
}

size_t count_in(const std::vector<std::string>& trace,
                const std::string& needle) {
  size_t hits = 0;
  for (const auto& line : trace) {
    if (line.find(needle) != std::string::npos) ++hits;
  }
  return hits;
}

std::string get_close(const std::string& path,
                      const std::string& extra_headers = "") {
  return "GET " + path + " HTTP/1.1\r\nHost: origin\r\n" + extra_headers +
         "Connection: close\r\n\r\n";
}

// ---- hop-by-hop stripping + Via, both directions ----------------------------

TEST(ModelProxyTest, HopByHopStrippedAndViaAddedBothDirections) {
  SimEngine engine(0x9a1);
  // The origin echoes the request head it received as its body, wrapped in
  // a response that carries its own hop-by-hop junk (including a header
  // *named* by Connection, which makes it hop-by-hop too).
  ScriptedBackend origin(kBackendPortBase, [](const ScriptedBackend::Request&
                                                  request) {
    const std::string& body = request.raw_head;
    return "HTTP/1.1 200 OK\r\nContent-Length: " +
           std::to_string(body.size()) +
           "\r\nConnection: keep-alive, X-Origin-Hop\r\n"
           "Keep-Alive: timeout=5\r\nX-Origin-Hop: secret\r\n"
           "X-Origin: ok\r\n\r\n" +
           body;
  });
  ASSERT_TRUE(origin.ok());

  ProxyServer proxy(sim_config(engine));
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase));
  ASSERT_TRUE(proxy.start().is_ok());

  auto* client = engine.new_client();
  engine.at(std::chrono::milliseconds(5), [client] {
    client->connect(kProxyPort);
    client->send(get_close(
        "/echo", "X-Client: yes\r\nProxy-Connection: keep-alive\r\nTE: "
                 "trailers\r\n"));
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  const std::string& reply = client->received();
  const size_t split = reply.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos) << reply;
  const std::string head = reply.substr(0, split + 4);
  const std::string body = reply.substr(split + 4);

  // Clientward head: end-to-end headers survive, hop-by-hop is gone, the
  // proxy speaks for the connection itself.
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos) << head;
  EXPECT_NE(head.find("X-Origin: ok"), std::string::npos) << head;
  EXPECT_NE(head.find("Via: 1.1 cops-proxy"), std::string::npos) << head;
  EXPECT_NE(head.find("Connection: close"), std::string::npos) << head;
  EXPECT_EQ(head.find("X-Origin-Hop"), std::string::npos) << head;
  EXPECT_EQ(head.find("Keep-Alive:"), std::string::npos) << head;

  // Upstream head (echoed back as the body): the client's end-to-end
  // headers arrived, its hop-by-hop ones did not, and Via marks the hop.
  EXPECT_NE(body.find("GET /echo HTTP/1.1"), std::string::npos) << body;
  EXPECT_NE(body.find("Host: origin"), std::string::npos) << body;
  EXPECT_NE(body.find("X-Client: yes"), std::string::npos) << body;
  EXPECT_NE(body.find("Via: 1.1 cops-proxy"), std::string::npos) << body;
  EXPECT_EQ(body.find("Proxy-Connection"), std::string::npos) << body;
  EXPECT_EQ(body.find("TE:"), std::string::npos) << body;
  EXPECT_EQ(body.find("Connection:"), std::string::npos) << body;

  EXPECT_EQ(proxy.counters().responses.load(), 1u);
  proxy.stop();
  origin.stop();
}

// ---- failure mapping: 502 on connect failure, 504 on silence ----------------

TEST(ModelProxyTest, ConnectFailureYields502) {
  SimEngine engine(0x502);
  ScriptedBackend origin(kBackendPortBase,
                         [](const ScriptedBackend::Request&) {
                           return test::simple_response("never reached");
                         });
  ASSERT_TRUE(origin.ok());
  engine.kill_port(kBackendPortBase);  // connects now refused

  ProxyServer proxy(sim_config(engine));
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase));
  ASSERT_TRUE(proxy.start().is_ok());

  auto* client = engine.new_client();
  engine.at(std::chrono::milliseconds(5), [client] {
    client->connect(kProxyPort);
    client->send(get_close("/x"));
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  EXPECT_NE(client->received().find("HTTP/1.1 502 Bad Gateway"),
            std::string::npos)
      << client->received();
  EXPECT_TRUE(client->peer_closed());
  EXPECT_EQ(proxy.counters().bad_gateway.load(), 1u);
  EXPECT_EQ(count_in(engine.trace(), "proxy-connect-fail backend=0"), 1u);
  EXPECT_EQ(count_in(engine.trace(), "proxy-502"), 1u);
  proxy.stop();
  origin.stop();
}

TEST(ModelProxyTest, SilentUpstreamYields504OnHeaderDeadline) {
  SimEngine engine(0x504);
  // Black hole: accepts, reads the request, never answers.
  ScriptedBackend origin(kBackendPortBase,
                         [](const ScriptedBackend::Request&) {
                           return std::string();
                         });
  ASSERT_TRUE(origin.ok());

  auto config = sim_config(engine);
  config.upstream_header_timeout = std::chrono::milliseconds(300);
  ProxyServer proxy(config);
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase));
  ASSERT_TRUE(proxy.start().is_ok());

  auto* client = engine.new_client();
  const auto t0 = now();
  engine.at(std::chrono::milliseconds(5), [client] {
    client->connect(kProxyPort);
    client->send(get_close("/slow"));
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now() - t0);

  EXPECT_NE(client->received().find("HTTP/1.1 504 Gateway Timeout"),
            std::string::npos)
      << client->received();
  // The deadline fired on the virtual clock: after 300ms, well before the
  // engine's 5s cutoff.
  EXPECT_GE(elapsed.count(), 300);
  EXPECT_LT(elapsed.count(), 2000);
  EXPECT_EQ(proxy.counters().gateway_timeout.load(), 1u);
  EXPECT_EQ(count_in(engine.trace(), "proxy-504"), 1u);
  EXPECT_EQ(origin.requests_seen(), 1u) << "request never reached origin";
  proxy.stop();
  origin.stop();
}

// ---- malformed origin response: 502 + the connection is poisoned ------------

TEST(ModelProxyTest, MalformedUpstreamYields502AndPoisonsConnection) {
  SimEngine engine(0xbad);
  // First exchange returns unparseable garbage; later exchanges are clean.
  auto hits = std::make_shared<int>(0);
  ScriptedBackend origin(
      kBackendPortBase, [hits](const ScriptedBackend::Request&) {
        return ++*hits == 1 ? "BANANA/9.9 tasty\r\nnot: a response\r\n\r\n"
                            : test::simple_response("clean");
      });
  ASSERT_TRUE(origin.ok());

  ProxyServer proxy(sim_config(engine));
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase));
  ASSERT_TRUE(proxy.start().is_ok());

  auto* first = engine.new_client();
  auto* second = engine.new_client();
  engine.at(std::chrono::milliseconds(5), [first] {
    first->connect(kProxyPort);
    first->send(get_close("/poison"));
  });
  engine.at(std::chrono::milliseconds(100), [second] {
    second->connect(kProxyPort);
    second->send(get_close("/after"));
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  EXPECT_NE(first->received().find("HTTP/1.1 502 Bad Gateway"),
            std::string::npos)
      << first->received();
  EXPECT_NE(second->received().find("HTTP/1.1 200 OK"), std::string::npos)
      << second->received();
  EXPECT_NE(second->received().find("clean"), std::string::npos);

  // The poisoned connection was closed, never parked: the second request
  // had to open a fresh origin connection.
  EXPECT_EQ(proxy.counters().poisoned.load(), 1u);
  EXPECT_EQ(proxy.pool_reuse_total(), 0u);
  EXPECT_EQ(origin.accepted(), 2u);
  EXPECT_EQ(count_in(engine.trace(), "proxy-upstream-poisoned"), 1u);
  proxy.stop();
  origin.stop();
}

// ---- chunked bodies stream through both directions --------------------------

TEST(ModelProxyTest, ChunkedUploadAndDownloadRelayedVerbatim) {
  SimEngine engine(0xc4c);
  const std::string upload_body = "streaming request body via the proxy";
  const std::string download_body =
      "chunk framing must cross the relay byte-identically";
  // POST /up: echo the decoded upload back with Content-Length;
  // GET /down: reply chunked.
  ScriptedBackend origin(
      kBackendPortBase, [&](const ScriptedBackend::Request& request) {
        if (request.head.method == "POST") {
          return test::simple_response(request.body);
        }
        return test::chunked_response(download_body, 9);
      });
  ASSERT_TRUE(origin.ok());

  ProxyServer proxy(sim_config(engine));
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase));
  ASSERT_TRUE(proxy.start().is_ok());

  auto* uploader = engine.new_client();
  auto* downloader = engine.new_client();
  engine.at(std::chrono::milliseconds(5), [&] {
    uploader->connect(kProxyPort);
    uploader->send(
        "POST /up HTTP/1.1\r\nHost: origin\r\nTransfer-Encoding: chunked\r\n"
        "Connection: close\r\n\r\n");
    // The body follows in separate deliveries: the relay must stream it.
    const std::string first_chunk = upload_body.substr(0, 10);
    const std::string second_chunk = upload_body.substr(10);
    char size_line[16];
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n", first_chunk.size());
    uploader->send(size_line + first_chunk + "\r\n");
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                  second_chunk.size());
    uploader->send(std::string(size_line) + second_chunk + "\r\n0\r\n\r\n");
  });
  engine.at(std::chrono::milliseconds(50), [&] {
    downloader->connect(kProxyPort);
    downloader->send(get_close("/down"));
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  // Upload: the origin decoded exactly the bytes the client chunked.
  EXPECT_NE(uploader->received().find("HTTP/1.1 200 OK"), std::string::npos)
      << uploader->received();
  EXPECT_NE(uploader->received().find(upload_body), std::string::npos);

  // Download: chunk framing crossed the relay verbatim.
  const std::string& down = downloader->received();
  const size_t split = down.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos) << down;
  const std::string head = down.substr(0, split + 4);
  const std::string framed = down.substr(split + 4);
  EXPECT_NE(head.find("Transfer-Encoding: chunked"), std::string::npos)
      << head;
  const std::string origin_reply = test::chunked_response(download_body, 9);
  EXPECT_EQ(framed, origin_reply.substr(origin_reply.find("\r\n\r\n") + 4));
  proxy.stop();
  origin.stop();
}

// ---- stale pooled connection: retried exactly once, invisibly ---------------

TEST(ModelProxyTest, StaleReusedConnectionRetriedExactlyOnce) {
  SimEngine engine(0x57a7e);
  ScriptedBackend origin(kBackendPortBase,
                         [](const ScriptedBackend::Request& request) {
                           return test::simple_response(
                               "served " + request.head.target);
                         });
  ASSERT_TRUE(origin.ok());

  ProxyServer proxy(sim_config(engine));
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase));
  ASSERT_TRUE(proxy.start().is_ok());

  auto* first = engine.new_client();
  auto* second = engine.new_client();
  engine.at(std::chrono::milliseconds(5), [first] {
    first->connect(kProxyPort);
    first->send(get_close("/one"));  // completes; origin connection parks
  });
  // Between requests, the origin machine resets every connection — the
  // parked keep-alive socket is now stale, and nothing tells the pool.
  engine.at(std::chrono::milliseconds(50),
            [&engine] { engine.kill_port(kBackendPortBase); });
  engine.at(std::chrono::milliseconds(60),
            [&engine] { engine.revive_port(kBackendPortBase); });
  engine.at(std::chrono::milliseconds(100), [second] {
    second->connect(kProxyPort);
    second->send(get_close("/two"));  // lands on the stale socket
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  EXPECT_NE(first->received().find("served /one"), std::string::npos);
  // The client never sees the stale socket: one silent retry, then 200.
  EXPECT_NE(second->received().find("HTTP/1.1 200 OK"), std::string::npos)
      << second->received() << "\n" << engine.trace_text();
  EXPECT_NE(second->received().find("served /two"), std::string::npos);
  EXPECT_EQ(proxy.counters().bad_gateway.load(), 0u);
  EXPECT_EQ(proxy.pool_stale_retry_total(), 1u);
  EXPECT_EQ(count_in(engine.trace(), "proxy-stale-retry"), 1u);
  EXPECT_EQ(count_in(engine.trace(), "proxy-pool-reuse backend=0"), 1u);
  proxy.stop();
  origin.stop();
}

// ---- drain: empties the pool, never kills an in-flight stream ---------------

TEST(ModelProxyTest, DrainBackendEmptiesPoolWithoutKillingInFlightStreams) {
  SimEngine engine(0xd7a2);
  const std::string slow_body(2048, 's');
  // Origin 0 stalls mid-body: response head + a few bytes immediately, the
  // rest 300ms later — so a drain lands while its stream is in flight.
  ScriptedBackend::Options stalling;
  stalling.immediate_bytes = 64;
  stalling.rest_delay = std::chrono::milliseconds(300);
  ScriptedBackend slow_origin(
      kBackendPortBase,
      [&](const ScriptedBackend::Request&) {
        return test::simple_response(slow_body);
      },
      stalling);
  ScriptedBackend fast_origin(kBackendPortBase + 1,
                              [](const ScriptedBackend::Request&) {
                                return test::simple_response("fast");
                              });
  ASSERT_TRUE(slow_origin.ok());
  ASSERT_TRUE(fast_origin.ok());

  ProxyServer proxy(sim_config(engine));
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase));
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase + 1));
  ASSERT_TRUE(proxy.start().is_ok());

  auto* in_flight = engine.new_client();
  auto* during_drain = engine.new_client();
  auto* after_undrain = engine.new_client();
  engine.at(std::chrono::milliseconds(5), [in_flight] {
    in_flight->connect(kProxyPort);
    in_flight->send(get_close("/slow"));  // round-robin pick: backend 0
  });
  // Drain while backend 0 still owes ~2KB of body.
  engine.at(std::chrono::milliseconds(100),
            [&proxy] { proxy.drain_backend(0); });
  engine.at(std::chrono::milliseconds(150), [during_drain] {
    during_drain->connect(kProxyPort);
    during_drain->send(get_close("/fast"));  // must route to backend 1
  });
  engine.at(std::chrono::milliseconds(500),
            [&proxy] { proxy.drain_backend(0, false); });
  engine.at(std::chrono::milliseconds(600), [after_undrain] {
    after_undrain->connect(kProxyPort);
    after_undrain->send(get_close("/again"));  // rotation reaches backend 0
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  // The in-flight stream finished intact: full status + full body.
  EXPECT_NE(in_flight->received().find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(in_flight->received().find(slow_body), std::string::npos)
      << "drain truncated an in-flight stream";
  EXPECT_NE(during_drain->received().find("fast"), std::string::npos);
  EXPECT_NE(after_undrain->received().find("HTTP/1.1 200 OK"),
            std::string::npos);

  EXPECT_EQ(fast_origin.requests_seen(), 1u);
  // The drained backend's completed connection was closed, not re-parked:
  // the post-undrain request had to open a fresh connection.
  EXPECT_EQ(slow_origin.accepted(), 2u);
  EXPECT_EQ(proxy.pool_reuse_total(), 0u);
  EXPECT_EQ(count_in(engine.trace(), "proxy-drain backend=0"), 1u);
  EXPECT_EQ(count_in(engine.trace(), "proxy-undrain backend=0"), 1u);
  EXPECT_EQ(proxy.backend_in_flight(0), 0u);
  proxy.stop();
  slow_origin.stop();
  fast_origin.stop();
}

// ---- backpressure: a slow client pauses upstream reads ----------------------

TEST(ModelProxyTest, SlowClientTripsWatermarkBackpressure) {
  SimEngine engine(0xbac0);
  // Must exceed the sim channel capacity (64 KiB): the paused client's
  // channel absorbs one capacity's worth before proxy writes EAGAIN, and only
  // the overflow accumulates in the proxy's send queue where the watermark
  // gate can see it.
  const std::string big_body(256 * 1024, 'b');
  ScriptedBackend origin(kBackendPortBase,
                         [&](const ScriptedBackend::Request&) {
                           return test::simple_response(big_body);
                         });
  ASSERT_TRUE(origin.ok());

  auto config = sim_config(engine);
  config.high_watermark = 2048;
  config.low_watermark = 512;
  ProxyServer proxy(config);
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase));
  ASSERT_TRUE(proxy.start().is_ok());

  auto* client = engine.new_client();
  engine.at(std::chrono::milliseconds(5), [client] {
    client->connect(kProxyPort);
    client->pause_reading(true);  // slow consumer from the first byte
    client->send(get_close("/big"));
  });
  engine.at(std::chrono::milliseconds(400),
            [client] { client->pause_reading(false); });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  // The full body still arrived — backpressure pauses, it never drops.
  EXPECT_NE(client->received().find("HTTP/1.1 200 OK"), std::string::npos);
  const size_t body_at = client->received().find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(client->received().substr(body_at + 4), big_body);
  EXPECT_GT(proxy.counters().backpressure.load(), 0u);
  EXPECT_GE(count_in(engine.trace(), "proxy-backpressure dir=response"), 1u);
  proxy.stop();
  origin.stop();
}

// ---- determinism: the whole scenario replays bit-identically ----------------

struct ChaosRun {
  std::vector<std::string> trace;
  std::vector<std::string> responses;
};

ChaosRun run_mixed_chaos(uint64_t seed) {
  SimEngine engine(seed);
  ScriptedBackend origin_a(kBackendPortBase,
                           [](const ScriptedBackend::Request& request) {
                             return test::simple_response("a:" +
                                                          request.head.target);
                           });
  ScriptedBackend origin_b(kBackendPortBase + 1,
                           [](const ScriptedBackend::Request& request) {
                             return test::chunked_response(
                                 "b:" + request.head.target, 5);
                           });
  EXPECT_TRUE(origin_a.ok());
  EXPECT_TRUE(origin_b.ok());

  ProxyConfig config;
  config.listen_port = kProxyPort;
  config.upstream_header_timeout = std::chrono::milliseconds(400);
  config.event_listener = [&engine](const std::string& event) {
    engine.record(event);
  };
  ProxyServer proxy(config);
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase));
  proxy.add_backend(net::InetAddress::loopback(kBackendPortBase + 1));
  EXPECT_TRUE(proxy.start().is_ok());

  std::vector<SimClient*> clients;
  for (int i = 0; i < 6; ++i) {
    auto* client = engine.new_client();
    clients.push_back(client);
    engine.at(std::chrono::milliseconds(10 + 15 * i), [client, i] {
      client->connect(kProxyPort);
      client->send(get_close("/r" + std::to_string(i)));
    });
  }
  // Backend 0 drops off the network mid-run and comes back.
  engine.at(std::chrono::milliseconds(40),
            [&engine] { engine.kill_port(kBackendPortBase); });
  engine.at(std::chrono::milliseconds(70),
            [&engine] { engine.revive_port(kBackendPortBase); });

  EXPECT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  ChaosRun run;
  run.trace = engine.trace();
  for (auto* client : clients) run.responses.push_back(client->received());
  proxy.stop();
  origin_a.stop();
  origin_b.stop();
  return run;
}

TEST(ModelProxyTest, MixedChaosTraceIsBitIdenticalPerSeed) {
  const auto first = run_mixed_chaos(0xf00d);
  const auto second = run_mixed_chaos(0xf00d);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.responses, second.responses);
}

}  // namespace
}  // namespace cops::proxy
