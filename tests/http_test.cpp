// Unit tests for the HTTP protocol library.
#include <gtest/gtest.h>

#include "common/byte_buffer.hpp"
#include "http/http_date.hpp"
#include "http/mime.hpp"
#include "http/request_parser.hpp"
#include "http/response.hpp"

namespace cops::http {
namespace {

ParseOutcome parse(const std::string& wire, HttpRequest& out) {
  ByteBuffer buf{std::string_view(wire)};
  return parse_request(buf, out);
}

// ---------- request parsing ----------------------------------------------------

TEST(RequestParser, SimpleGet) {
  HttpRequest req;
  ASSERT_EQ(parse("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.method, Method::kGet);
  EXPECT_EQ(req.path, "/index.html");
  EXPECT_EQ(req.version_major, 1);
  EXPECT_EQ(req.version_minor, 1);
  EXPECT_EQ(req.header_or("host"), "x");
}

TEST(RequestParser, IncompleteNeedsMoreWithoutConsuming) {
  ByteBuffer buf{std::string_view("GET / HTTP/1.1\r\nHost: x\r\n")};
  HttpRequest req;
  const size_t before = buf.readable();
  EXPECT_EQ(parse_request(buf, req), ParseOutcome::kIncomplete);
  EXPECT_EQ(buf.readable(), before);  // untouched
}

TEST(RequestParser, PipelinedRequestsLeaveTail) {
  ByteBuffer buf{std::string_view(
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")};
  HttpRequest req;
  ASSERT_EQ(parse_request(buf, req), ParseOutcome::kComplete);
  EXPECT_EQ(req.path, "/a");
  ASSERT_EQ(parse_request(buf, req), ParseOutcome::kComplete);
  EXPECT_EQ(req.path, "/b");
  EXPECT_TRUE(buf.empty());
}

TEST(RequestParser, QueryStringSplit) {
  HttpRequest req;
  ASSERT_EQ(parse("GET /p?a=1&b=2 HTTP/1.1\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.path, "/p");
  EXPECT_EQ(req.query, "a=1&b=2");
  EXPECT_EQ(req.target, "/p?a=1&b=2");
}

TEST(RequestParser, HeaderNamesLowercased) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nCoNtEnT-TyPe: text/x\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.header_or("content-type"), "text/x");
}

TEST(RequestParser, RepeatedHeadersCombined) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nX-A: 1\r\nX-A: 2\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.header_or("x-a"), "1, 2");
}

TEST(RequestParser, DuplicateHostRejected) {
  // RFC 7230 §5.4: more than one Host field is unambiguously malformed.
  HttpRequest req;
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\n", req),
            ParseOutcome::kMalformed);
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nHost: a\r\nHost: a\r\n\r\n", req),
            ParseOutcome::kMalformed);
}

TEST(RequestParser, ConflictingContentLengthRejected) {
  // RFC 7230 §3.3.3: differing repeated Content-Length values are a
  // request-smuggling vector and must be rejected.
  HttpRequest req;
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                  "Content-Length: 6\r\n\r\nhello!",
                  req),
            ParseOutcome::kMalformed);
}

TEST(RequestParser, IdenticalRepeatedContentLengthAccepted) {
  // ...but identical repeats collapse into one value.
  HttpRequest req;
  ASSERT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                  "Content-Length: 5\r\n\r\nhello",
                  req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.header_or("content-length"), "5");
  EXPECT_EQ(req.body, "hello");
}

TEST(RequestParser, CommaJoinedContentLengthRejected) {
  // A comma-joined list (what naive header combining would produce) must
  // not pass the strict digit parse either.
  HttpRequest req;
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello", req),
            ParseOutcome::kMalformed);
}

TEST(RequestParser, BodyViaContentLength) {
  HttpRequest req;
  ASSERT_EQ(parse("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.body, "hello");
}

TEST(RequestParser, BodyIncompleteWaits) {
  HttpRequest req;
  EXPECT_EQ(parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel", req),
            ParseOutcome::kIncomplete);
}

TEST(RequestParser, MalformedMethodRejected) {
  HttpRequest req;
  EXPECT_EQ(parse("FROB / HTTP/1.1\r\n\r\n", req), ParseOutcome::kMalformed);
}

TEST(RequestParser, MalformedVersionRejected) {
  HttpRequest req;
  EXPECT_EQ(parse("GET / HTTQ/1.1\r\n\r\n", req), ParseOutcome::kMalformed);
  EXPECT_EQ(parse("GET / HTTP/1.x\r\n\r\n", req), ParseOutcome::kMalformed);
}

TEST(RequestParser, NegativeContentLengthRejected) {
  HttpRequest req;
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", req),
            ParseOutcome::kMalformed);
}

TEST(RequestParser, OversizedHeadersRejected) {
  std::string wire = "GET / HTTP/1.1\r\n";
  wire += "X-Fill: " + std::string(20000, 'a') + "\r\n\r\n";
  HttpRequest req;
  EXPECT_EQ(parse(wire, req), ParseOutcome::kMalformed);
}

TEST(RequestParser, HeadAndVersions) {
  HttpRequest req;
  ASSERT_EQ(parse("HEAD /h HTTP/1.0\r\n\r\n", req), ParseOutcome::kComplete);
  EXPECT_EQ(req.method, Method::kHead);
  EXPECT_EQ(req.version_minor, 0);
}

// ---------- path sanitization ----------------------------------------------------

TEST(SanitizePath, PassesNormalPaths) {
  EXPECT_EQ(sanitize_path("/a/b/c.html"), "/a/b/c.html");
  EXPECT_EQ(sanitize_path("/"), "/");
}

TEST(SanitizePath, PercentDecoding) {
  EXPECT_EQ(sanitize_path("/a%20b.txt"), "/a b.txt");
  EXPECT_EQ(sanitize_path("/%41"), "/A");
}

TEST(SanitizePath, RejectsTraversal) {
  EXPECT_EQ(sanitize_path("/../etc/passwd"), "");
  EXPECT_EQ(sanitize_path("/a/../../etc"), "");
  EXPECT_EQ(sanitize_path("/%2e%2e/secret"), "");
}

TEST(SanitizePath, CollapsesDotAndDoubleSlash) {
  EXPECT_EQ(sanitize_path("/a/./b//c"), "/a/b/c");
  EXPECT_EQ(sanitize_path("/a/b/../c"), "/a/c");
}

TEST(SanitizePath, RejectsBadEscapes) {
  EXPECT_EQ(sanitize_path("/a%zz"), "");
  EXPECT_EQ(sanitize_path("/a%2"), "");
}

TEST(SanitizePath, PreservesTrailingSlash) {
  EXPECT_EQ(sanitize_path("/dir/"), "/dir/");
}

TEST(SanitizePath, RejectsRelative) { EXPECT_EQ(sanitize_path("a/b"), ""); }

// ---------- keep-alive semantics ---------------------------------------------------

TEST(KeepAlive, Http11DefaultsOn) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\n\r\n", req), ParseOutcome::kComplete);
  EXPECT_TRUE(req.keep_alive());
}

TEST(KeepAlive, Http11CloseHeaderOff) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_FALSE(req.keep_alive());
}

TEST(KeepAlive, Http10DefaultsOff) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.0\r\n\r\n", req), ParseOutcome::kComplete);
  EXPECT_FALSE(req.keep_alive());
}

TEST(KeepAlive, Http10ExplicitOn) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_TRUE(req.keep_alive());
}

// Connection is a comma-separated token *list* (RFC 7230 §6.1): `close`
// anywhere in the list closes, regardless of what else rides along, and
// matching is per-token — substrings must not count.
TEST(KeepAlive, CloseTokenInListCloses) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_FALSE(req.keep_alive());
}

TEST(KeepAlive, CloseTokenCaseInsensitiveWithSpaces) {
  HttpRequest req;
  ASSERT_EQ(
      parse("GET / HTTP/1.1\r\nConnection: keep-alive ,  CLOSE\r\n\r\n", req),
      ParseOutcome::kComplete);
  EXPECT_FALSE(req.keep_alive());
}

TEST(KeepAlive, CloseSubstringDoesNotClose) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nConnection: closedown\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_TRUE(req.keep_alive());
}

TEST(KeepAlive, Http10MixedCaseKeepAliveTokenOn) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.0\r\nConnection: x, Keep-Alive\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_TRUE(req.keep_alive());
}

// ---------- strict decode rejections (kReject + status) ------------------------

// 4-arg parse_request: deterministic rejection with a mapped status code
// instead of the silent close the 3-arg wrapper gives legacy callers.
std::pair<ParseOutcome, StatusCode> parse_strict(const std::string& wire,
                                                 HttpRequest& out) {
  ByteBuffer buf{std::string_view(wire)};
  StatusCode status = StatusCode::kOk;
  const ParseOutcome outcome =
      parse_request(buf, out, ParseLimits{}, &status);
  return {outcome, status};
}

TEST(StrictContentLength, PlusSignRejectedWith400) {
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello", req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kBadRequest);
}

TEST(StrictContentLength, TrailingGarbageRejectedWith400) {
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nContent-Length: 5x\r\n\r\nhello", req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kBadRequest);
}

TEST(StrictContentLength, InteriorWhitespaceRejectedWith400) {
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nContent-Length: 1 2\r\n\r\nxxx", req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kBadRequest);
}

TEST(StrictContentLength, Int64OverflowRejectedNotWrapped) {
  // INT64_MAX + 1: a wrapping parser would read a small bogus length and
  // desynchronize the connection.
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nContent-Length: 9223372036854775808\r\n\r\n", req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kBadRequest);
}

TEST(StrictContentLength, HugeDigitStringRejectedNotWrapped) {
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n",
      req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kBadRequest);
}

TEST(StrictContentLength, MaxInt64ItselfIsParsedNotRejected) {
  // The boundary value is legal; it trips the body-size limit (413), not
  // the syntax check (400).
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nContent-Length: 9223372036854775807\r\n\r\n", req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kPayloadTooLarge);
}

TEST(StrictContentLength, OversizeBodyRejectedWith413) {
  const ParseLimits limits;  // max_body_bytes = 1 MiB
  HttpRequest req;
  ByteBuffer buf{std::string_view(
      "POST / HTTP/1.1\r\nContent-Length: 1048577\r\n\r\n")};
  StatusCode status = StatusCode::kOk;
  EXPECT_EQ(parse_request(buf, req, limits, &status), ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kPayloadTooLarge);
}

TEST(StrictTransferEncoding, ChunkedBodyDecodes) {
  // The PR-5 stopgap answered every Transfer-Encoding with 501; chunked is
  // now a real framing layer and decodes like any other body.
  HttpRequest req;
  ByteBuffer buf{std::string_view(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n")};
  EXPECT_EQ(parse_request(buf, req), ParseOutcome::kComplete);
  EXPECT_EQ(req.body, "hello world");
  EXPECT_EQ(buf.readable(), 0u);  // the chunk framing is fully consumed
}

TEST(StrictTransferEncoding, ChunkedLeavesPipelinedRequestInBuffer) {
  HttpRequest req;
  ByteBuffer buf{std::string_view(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n"
      "GET /next HTTP/1.1\r\n\r\n")};
  ASSERT_EQ(parse_request(buf, req), ParseOutcome::kComplete);
  EXPECT_EQ(req.body, "abc");
  ASSERT_EQ(parse_request(buf, req), ParseOutcome::kComplete);
  EXPECT_EQ(req.target, "/next");
}

TEST(StrictTransferEncoding, IncompleteChunkedBodyConsumesNothing) {
  HttpRequest req;
  const std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel";
  ByteBuffer buf{std::string_view(wire)};
  EXPECT_EQ(parse_request(buf, req), ParseOutcome::kIncomplete);
  EXPECT_EQ(buf.readable(), wire.size());
}

TEST(StrictTransferEncoding, ChunkExtensionsIgnoredTrailersDiscarded) {
  HttpRequest req;
  ByteBuffer buf{std::string_view(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5;name=value\r\nhello\r\n0\r\n"
      "X-Checksum: abc123\r\n\r\n")};
  ASSERT_EQ(parse_request(buf, req), ParseOutcome::kComplete);
  EXPECT_EQ(req.body, "hello");
  // Trailer fields are validated and discarded, never merged into headers.
  EXPECT_EQ(req.headers.find_index("x-checksum"), HeaderMap::npos);
}

TEST(StrictTransferEncoding, UnsupportedCodingStillRejectedWith501) {
  // gzip (or any stack that is not exactly "chunked") keeps the
  // deterministic 501 from the pre-chunked parser.
  HttpRequest req;
  for (const char* te : {"gzip", "gzip, chunked", "chunked, gzip"}) {
    auto [outcome, status] = parse_strict(
        std::string("POST / HTTP/1.1\r\nTransfer-Encoding: ") + te +
            "\r\n\r\n",
        req);
    EXPECT_EQ(outcome, ParseOutcome::kReject) << te;
    EXPECT_EQ(status, StatusCode::kNotImplemented) << te;
  }
}

TEST(StrictTransferEncoding, ClPlusTeRejectedWith400) {
  // RFC 7230 §3.3.3: both framing headers present is the canonical
  // request-smuggling vector — never pick one, always 400 + close.
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\n"
      "Transfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
      req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kBadRequest);
}

TEST(StrictTransferEncoding, ChunkedOnHttp10RejectedWith400) {
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.0\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kBadRequest);
}

TEST(StrictTransferEncoding, HexOverflowChunkSizeRejectedWith413) {
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "ffffffffffffffff1\r\n",
      req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kPayloadTooLarge);
}

TEST(StrictTransferEncoding, BadChunkSyntaxRejectedWith400) {
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "zz\r\nhello\r\n0\r\n\r\n",
      req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kBadRequest);
}

TEST(StrictTransferEncoding, ForbiddenTrailerFieldRejectedWith400) {
  // A trailer may not rewrite framing/routing decisions already taken from
  // the header block.
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\nContent-Length: 5\r\n\r\n",
      req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kBadRequest);
}

TEST(StrictRejects, ObsFoldContinuationRejectedWith400) {
  // RFC 7230 §3.2.4 obs-fold: a leading-whitespace continuation line must
  // not be misread as a separate header — deterministic 400 instead.
  HttpRequest req;
  for (const char* fold : {" folded-value\r\n", "\tfolded-value\r\n"}) {
    auto [outcome, status] = parse_strict(
        std::string("GET / HTTP/1.1\r\nX-Long: first\r\n") + fold + "\r\n",
        req);
    EXPECT_EQ(outcome, ParseOutcome::kReject) << fold;
    EXPECT_EQ(status, StatusCode::kBadRequest) << fold;
  }
}

TEST(StrictExpect, UnsupportedExpectationRejectedWith417) {
  HttpRequest req;
  auto [outcome, status] = parse_strict(
      "POST / HTTP/1.1\r\nExpect: 200-maybe\r\nContent-Length: 1\r\n\r\nx",
      req);
  EXPECT_EQ(outcome, ParseOutcome::kReject);
  EXPECT_EQ(status, StatusCode::kExpectationFailed);
}

TEST(StrictExpect, ContinueSignalledWhileBodyInFlight) {
  HttpRequest req;
  ParseEvents events;
  ByteBuffer buf{std::string_view(
      "POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 5\r\n\r\n")};
  EXPECT_EQ(parse_request(buf, req, ParseLimits{}, events),
            ParseOutcome::kIncomplete);
  EXPECT_TRUE(events.needs_continue);
  // Once the body is fully buffered no interim reply is owed.
  ByteBuffer full{std::string_view(
      "POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 5\r\n\r\n"
      "hello")};
  EXPECT_EQ(parse_request(full, req, ParseLimits{}, events),
            ParseOutcome::kComplete);
  EXPECT_FALSE(events.needs_continue);
}

TEST(StrictExpect, ContinueSignalledForChunkedBodyInFlight) {
  HttpRequest req;
  ParseEvents events;
  ByteBuffer buf{std::string_view(
      "POST / HTTP/1.1\r\nExpect: 100-continue\r\n"
      "Transfer-Encoding: chunked\r\n\r\n")};
  EXPECT_EQ(parse_request(buf, req, ParseLimits{}, events),
            ParseOutcome::kIncomplete);
  EXPECT_TRUE(events.needs_continue);
}

TEST(StrictRejects, LegacyWrapperMapsRejectToMalformed) {
  // The 3-arg overload keeps the old silent-close contract for the baseline
  // servers: kReject degrades to kMalformed.
  HttpRequest req;
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello", req),
            ParseOutcome::kMalformed);
  EXPECT_EQ(
      parse("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", req),
      ParseOutcome::kMalformed);
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 3\r\n"
                  "Transfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n",
                  req),
            ParseOutcome::kMalformed);
}

// ---------- percent-decode hardening -------------------------------------------

TEST(SanitizePath, RejectsEncodedNul) {
  // %00 would truncate a C filesystem path at the NUL.
  EXPECT_EQ(sanitize_path("/a%00.txt"), "");
  EXPECT_EQ(sanitize_path("/%00"), "");
  EXPECT_EQ(sanitize_path("/a.txt%00.jpg"), "");
}

TEST(SanitizePath, TraversalCheckRunsOnDecodedBytes) {
  // Every encoding of ".." must hit the same post-decode check.
  EXPECT_EQ(sanitize_path("/%2e%2e/secret"), "");
  EXPECT_EQ(sanitize_path("/%2E%2E/secret"), "");
  EXPECT_EQ(sanitize_path("/a/%2e%2e/%2e%2e/etc/passwd"), "");
  EXPECT_EQ(sanitize_path("/.%2e/secret"), "");
  EXPECT_EQ(sanitize_path("/%2e./secret"), "");
}

TEST(SanitizePath, DotDotWithinRootResolves) {
  EXPECT_EQ(sanitize_path("/a/%2e%2e/b"), "/b");
  EXPECT_EQ(sanitize_path("/a/b/%2e%2e/c"), "/a/c");
}

TEST(SanitizePath, ReusedOutputBufferIsFullyReplaced) {
  std::string out = "stale previous contents";
  ASSERT_TRUE(sanitize_path_into("/x.txt", out));
  EXPECT_EQ(out, "/x.txt");
  ASSERT_FALSE(sanitize_path_into("/%00", out));
}

// ---------- response serialization ---------------------------------------------------

TEST(Response, SerializeBasics) {
  HttpResponse resp;
  resp.status = StatusCode::kOk;
  resp.body = "hello";
  resp.set_header("Content-Type", "text/plain");
  const auto wire = resp.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Server: COPS-HTTP"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nhello"), std::string::npos);
}

TEST(Response, HeadSuppressesBodyKeepsLength) {
  HttpResponse resp;
  resp.body = "data";
  resp.head_only = true;
  const auto wire = resp.serialize();
  EXPECT_NE(wire.find("Content-Length: 4"), std::string::npos);
  EXPECT_EQ(wire.find("\r\n\r\ndata"), std::string::npos);
}

TEST(Response, FileBodyUsed) {
  auto file = std::make_shared<nserver::FileData>();
  file->bytes = "file-bytes";
  HttpResponse resp;
  resp.file = file;
  const auto wire = resp.serialize();
  EXPECT_NE(wire.find("file-bytes"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 10"), std::string::npos);
}

TEST(Response, ErrorPageContainsCode) {
  const auto resp = make_error_response(StatusCode::kNotFound, true);
  EXPECT_EQ(resp.status, StatusCode::kNotFound);
  EXPECT_NE(resp.body.find("404"), std::string::npos);
  const auto wire = resp.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

// ---------- mime / date ------------------------------------------------------------

TEST(Mime, KnownExtensions) {
  EXPECT_EQ(mime_type_for("/x/index.html"), "text/html");
  EXPECT_EQ(mime_type_for("a.PNG"), "image/png");
  EXPECT_EQ(mime_type_for("style.css"), "text/css");
}

TEST(Mime, UnknownFallsBack) {
  EXPECT_EQ(mime_type_for("file.weird"), "application/octet-stream");
  EXPECT_EQ(mime_type_for("no_extension"), "application/octet-stream");
}

TEST(HttpDate, FormatsRfc7231) {
  // 2003-08-04 12:30:45 UTC
  EXPECT_EQ(format_http_date(1060000245), "Mon, 04 Aug 2003 12:30:45 GMT");
}

TEST(HttpDate, NowIsParsableShape) {
  const auto date = now_http_date();
  EXPECT_EQ(date.size(), 29u);
  EXPECT_NE(date.find("GMT"), std::string::npos);
}

// RFC 7231 §7.1.1.1: recipients MUST accept all three date formats.  The
// reference instant is the RFC's own example: 784111777 = Sun, 06 Nov 1994
// 08:49:37 GMT.
TEST(HttpDate, ParsesImfFixdate) {
  EXPECT_EQ(parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT"), 784111777);
}

TEST(HttpDate, ParsesRfc850) {
  EXPECT_EQ(parse_http_date("Sunday, 06-Nov-94 08:49:37 GMT"), 784111777);
  // Two-digit year pivot: 00-69 land in 20xx.
  EXPECT_EQ(parse_http_date("Saturday, 06-Nov-04 08:49:37 GMT"),
            parse_http_date("Sat, 06 Nov 2004 08:49:37 GMT"));
}

TEST(HttpDate, ParsesAsctime) {
  EXPECT_EQ(parse_http_date("Sun Nov  6 08:49:37 1994"), 784111777);
  // Two-digit day of month.
  EXPECT_EQ(parse_http_date("Wed Nov 16 08:49:37 1994"),
            parse_http_date("Wed, 16 Nov 1994 08:49:37 GMT"));
}

TEST(HttpDate, RoundTripsFormat) {
  EXPECT_EQ(parse_http_date(format_http_date(1060000245)), 1060000245);
  EXPECT_EQ(parse_http_date(format_http_date(784111777)), 784111777);
}

TEST(HttpDate, RejectsMalformedDates) {
  EXPECT_EQ(parse_http_date(""), -1);
  EXPECT_EQ(parse_http_date("not a date"), -1);
  EXPECT_EQ(parse_http_date("Xxx, 06 Nov 1994 08:49:37 GMT"), -1);
  EXPECT_EQ(parse_http_date("Sun, 06 Xxx 1994 08:49:37 GMT"), -1);
  // timegm would silently normalize out-of-range fields; we must not.
  EXPECT_EQ(parse_http_date("Sun, 06 Nov 1994 25:49:37 GMT"), -1);
  EXPECT_EQ(parse_http_date("Sun, 06 Nov 1994 08:61:37 GMT"), -1);
  EXPECT_EQ(parse_http_date("Sun, 00 Nov 1994 08:49:37 GMT"), -1);
  // Trailing junk.
  EXPECT_EQ(parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT extra"), -1);
}

}  // namespace
}  // namespace cops::http
