// Unit tests for the HTTP protocol library.
#include <gtest/gtest.h>

#include "common/byte_buffer.hpp"
#include "http/http_date.hpp"
#include "http/mime.hpp"
#include "http/request_parser.hpp"
#include "http/response.hpp"

namespace cops::http {
namespace {

ParseOutcome parse(const std::string& wire, HttpRequest& out) {
  ByteBuffer buf{std::string_view(wire)};
  return parse_request(buf, out);
}

// ---------- request parsing ----------------------------------------------------

TEST(RequestParser, SimpleGet) {
  HttpRequest req;
  ASSERT_EQ(parse("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.method, Method::kGet);
  EXPECT_EQ(req.path, "/index.html");
  EXPECT_EQ(req.version_major, 1);
  EXPECT_EQ(req.version_minor, 1);
  EXPECT_EQ(req.header_or("host"), "x");
}

TEST(RequestParser, IncompleteNeedsMoreWithoutConsuming) {
  ByteBuffer buf{std::string_view("GET / HTTP/1.1\r\nHost: x\r\n")};
  HttpRequest req;
  const size_t before = buf.readable();
  EXPECT_EQ(parse_request(buf, req), ParseOutcome::kIncomplete);
  EXPECT_EQ(buf.readable(), before);  // untouched
}

TEST(RequestParser, PipelinedRequestsLeaveTail) {
  ByteBuffer buf{std::string_view(
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")};
  HttpRequest req;
  ASSERT_EQ(parse_request(buf, req), ParseOutcome::kComplete);
  EXPECT_EQ(req.path, "/a");
  ASSERT_EQ(parse_request(buf, req), ParseOutcome::kComplete);
  EXPECT_EQ(req.path, "/b");
  EXPECT_TRUE(buf.empty());
}

TEST(RequestParser, QueryStringSplit) {
  HttpRequest req;
  ASSERT_EQ(parse("GET /p?a=1&b=2 HTTP/1.1\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.path, "/p");
  EXPECT_EQ(req.query, "a=1&b=2");
  EXPECT_EQ(req.target, "/p?a=1&b=2");
}

TEST(RequestParser, HeaderNamesLowercased) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nCoNtEnT-TyPe: text/x\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.header_or("content-type"), "text/x");
}

TEST(RequestParser, RepeatedHeadersCombined) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nX-A: 1\r\nX-A: 2\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.header_or("x-a"), "1, 2");
}

TEST(RequestParser, BodyViaContentLength) {
  HttpRequest req;
  ASSERT_EQ(parse("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", req),
            ParseOutcome::kComplete);
  EXPECT_EQ(req.body, "hello");
}

TEST(RequestParser, BodyIncompleteWaits) {
  HttpRequest req;
  EXPECT_EQ(parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel", req),
            ParseOutcome::kIncomplete);
}

TEST(RequestParser, MalformedMethodRejected) {
  HttpRequest req;
  EXPECT_EQ(parse("FROB / HTTP/1.1\r\n\r\n", req), ParseOutcome::kMalformed);
}

TEST(RequestParser, MalformedVersionRejected) {
  HttpRequest req;
  EXPECT_EQ(parse("GET / HTTQ/1.1\r\n\r\n", req), ParseOutcome::kMalformed);
  EXPECT_EQ(parse("GET / HTTP/1.x\r\n\r\n", req), ParseOutcome::kMalformed);
}

TEST(RequestParser, NegativeContentLengthRejected) {
  HttpRequest req;
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", req),
            ParseOutcome::kMalformed);
}

TEST(RequestParser, OversizedHeadersRejected) {
  std::string wire = "GET / HTTP/1.1\r\n";
  wire += "X-Fill: " + std::string(20000, 'a') + "\r\n\r\n";
  HttpRequest req;
  EXPECT_EQ(parse(wire, req), ParseOutcome::kMalformed);
}

TEST(RequestParser, HeadAndVersions) {
  HttpRequest req;
  ASSERT_EQ(parse("HEAD /h HTTP/1.0\r\n\r\n", req), ParseOutcome::kComplete);
  EXPECT_EQ(req.method, Method::kHead);
  EXPECT_EQ(req.version_minor, 0);
}

// ---------- path sanitization ----------------------------------------------------

TEST(SanitizePath, PassesNormalPaths) {
  EXPECT_EQ(sanitize_path("/a/b/c.html"), "/a/b/c.html");
  EXPECT_EQ(sanitize_path("/"), "/");
}

TEST(SanitizePath, PercentDecoding) {
  EXPECT_EQ(sanitize_path("/a%20b.txt"), "/a b.txt");
  EXPECT_EQ(sanitize_path("/%41"), "/A");
}

TEST(SanitizePath, RejectsTraversal) {
  EXPECT_EQ(sanitize_path("/../etc/passwd"), "");
  EXPECT_EQ(sanitize_path("/a/../../etc"), "");
  EXPECT_EQ(sanitize_path("/%2e%2e/secret"), "");
}

TEST(SanitizePath, CollapsesDotAndDoubleSlash) {
  EXPECT_EQ(sanitize_path("/a/./b//c"), "/a/b/c");
  EXPECT_EQ(sanitize_path("/a/b/../c"), "/a/c");
}

TEST(SanitizePath, RejectsBadEscapes) {
  EXPECT_EQ(sanitize_path("/a%zz"), "");
  EXPECT_EQ(sanitize_path("/a%2"), "");
}

TEST(SanitizePath, PreservesTrailingSlash) {
  EXPECT_EQ(sanitize_path("/dir/"), "/dir/");
}

TEST(SanitizePath, RejectsRelative) { EXPECT_EQ(sanitize_path("a/b"), ""); }

// ---------- keep-alive semantics ---------------------------------------------------

TEST(KeepAlive, Http11DefaultsOn) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\n\r\n", req), ParseOutcome::kComplete);
  EXPECT_TRUE(req.keep_alive());
}

TEST(KeepAlive, Http11CloseHeaderOff) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_FALSE(req.keep_alive());
}

TEST(KeepAlive, Http10DefaultsOff) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.0\r\n\r\n", req), ParseOutcome::kComplete);
  EXPECT_FALSE(req.keep_alive());
}

TEST(KeepAlive, Http10ExplicitOn) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", req),
            ParseOutcome::kComplete);
  EXPECT_TRUE(req.keep_alive());
}

// ---------- response serialization ---------------------------------------------------

TEST(Response, SerializeBasics) {
  HttpResponse resp;
  resp.status = StatusCode::kOk;
  resp.body = "hello";
  resp.set_header("Content-Type", "text/plain");
  const auto wire = resp.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Server: COPS-HTTP"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nhello"), std::string::npos);
}

TEST(Response, HeadSuppressesBodyKeepsLength) {
  HttpResponse resp;
  resp.body = "data";
  resp.head_only = true;
  const auto wire = resp.serialize();
  EXPECT_NE(wire.find("Content-Length: 4"), std::string::npos);
  EXPECT_EQ(wire.find("\r\n\r\ndata"), std::string::npos);
}

TEST(Response, FileBodyUsed) {
  auto file = std::make_shared<nserver::FileData>();
  file->bytes = "file-bytes";
  HttpResponse resp;
  resp.file = file;
  const auto wire = resp.serialize();
  EXPECT_NE(wire.find("file-bytes"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 10"), std::string::npos);
}

TEST(Response, ErrorPageContainsCode) {
  const auto resp = make_error_response(StatusCode::kNotFound, true);
  EXPECT_EQ(resp.status, StatusCode::kNotFound);
  EXPECT_NE(resp.body.find("404"), std::string::npos);
  const auto wire = resp.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

// ---------- mime / date ------------------------------------------------------------

TEST(Mime, KnownExtensions) {
  EXPECT_EQ(mime_type_for("/x/index.html"), "text/html");
  EXPECT_EQ(mime_type_for("a.PNG"), "image/png");
  EXPECT_EQ(mime_type_for("style.css"), "text/css");
}

TEST(Mime, UnknownFallsBack) {
  EXPECT_EQ(mime_type_for("file.weird"), "application/octet-stream");
  EXPECT_EQ(mime_type_for("no_extension"), "application/octet-stream");
}

TEST(HttpDate, FormatsRfc7231) {
  // 2003-08-04 12:30:45 UTC
  EXPECT_EQ(format_http_date(1060000245), "Mon, 04 Aug 2003 12:30:45 GMT");
}

TEST(HttpDate, NowIsParsableShape) {
  const auto date = now_http_date();
  EXPECT_EQ(date.size(), 29u);
  EXPECT_NE(date.find("GMT"), std::string::npos);
}

}  // namespace
}  // namespace cops::http
