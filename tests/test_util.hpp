// Shared test helpers: blocking mini-clients and temp directories.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

namespace cops::test {

// A blocking TCP client for exercising servers from test threads.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { close(); }

  bool connect(const std::string& host, uint16_t port,
               int timeout_ms = 2000) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return true;
    if (errno != EINTR) return false;
    // Interrupted connect keeps going in the kernel: wait for completion.
    pollfd pfd{fd_, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) != 1) return false;
    int err = 0;
    socklen_t len = sizeof(err);
    return ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
           err == 0;
  }

  bool send_all(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads until the connection closes or `bytes` arrive (bytes=0: til EOF).
  // EINTR is retried: a live io_uring in the process makes the kernel
  // interrupt blocking syscalls on OTHER threads for task-work delivery,
  // so a -1/EINTR recv here is routine, not end-of-stream.
  std::string read_some(size_t bytes = 0, int timeout_ms = 2000) {
    std::string out;
    char buf[4096];
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (bytes == 0 || out.size() < bytes) {
      if (std::chrono::steady_clock::now() > deadline) break;
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  // Reads until `marker` appears in the accumulated data (or timeout).
  std::string read_until(const std::string& marker, int timeout_ms = 2000) {
    std::string out;
    char buf[4096];
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (out.find(marker) == std::string::npos) {
      if (std::chrono::steady_clock::now() > deadline) break;
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

// Blocking HTTP GET; returns the full raw response (headers + body).
inline std::string http_get(uint16_t port, const std::string& path,
                            bool keep_alive = false,
                            BlockingClient* reuse = nullptr) {
  BlockingClient local;
  BlockingClient* client = reuse != nullptr ? reuse : &local;
  if (reuse == nullptr || reuse->fd() < 0) {
    if (!client->connect("127.0.0.1", port)) return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: test\r\nConnection: " +
      (keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
  if (!client->send_all(request)) return {};
  if (!keep_alive) return client->read_some();
  // keep-alive: read headers, find content-length, read exactly the body.
  std::string data = client->read_until("\r\n\r\n");
  const size_t header_end = data.find("\r\n\r\n");
  if (header_end == std::string::npos) return data;
  size_t content_length = 0;
  const std::string lower = [&] {
    std::string s = data.substr(0, header_end);
    for (auto& c : s) c = static_cast<char>(::tolower(c));
    return s;
  }();
  const size_t cl = lower.find("content-length:");
  if (cl != std::string::npos) {
    content_length = static_cast<size_t>(
        std::strtoul(lower.c_str() + cl + 15, nullptr, 10));
  }
  const size_t want = header_end + 4 + content_length;
  while (data.size() < want) {
    auto more = client->read_some(want - data.size());
    if (more.empty()) break;
    data += more;
  }
  return data;
}

// Self-deleting temporary directory.
class TempDir {
 public:
  TempDir() {
    auto base = std::filesystem::temp_directory_path();
    std::mt19937_64 rng(std::random_device{}());
    path_ = base / ("cops_test_" + std::to_string(rng()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] std::string str() const { return path_.string(); }

  void write_file(const std::string& relative, const std::string& content) {
    const auto full = path_ / relative;
    std::filesystem::create_directories(full.parent_path());
    std::ofstream out(full, std::ios::binary);
    out << content;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace cops::test
