// Tests for the networking substrate: sockets, reactor, event sources,
// timers, acceptor/connector.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/acceptor.hpp"
#include "net/connector.hpp"
#include "net/event_source.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "net/timer_queue.hpp"
#include "tests/test_util.hpp"

namespace cops::net {
namespace {

TEST(InetAddress, ParseAndFormat) {
  auto addr = InetAddress::parse("127.0.0.1", 8080);
  ASSERT_TRUE(addr.is_ok());
  EXPECT_EQ(addr.value().host(), "127.0.0.1");
  EXPECT_EQ(addr.value().port(), 8080);
  EXPECT_EQ(addr.value().to_string(), "127.0.0.1:8080");
}

TEST(InetAddress, LocalhostAlias) {
  auto addr = InetAddress::parse("localhost", 1);
  ASSERT_TRUE(addr.is_ok());
  EXPECT_EQ(addr.value().host(), "127.0.0.1");
}

TEST(InetAddress, RejectsGarbage) {
  EXPECT_FALSE(InetAddress::parse("not an ip", 1).is_ok());
  EXPECT_FALSE(InetAddress::parse("999.1.1.1", 1).is_ok());
}

TEST(TcpListener, BindsEphemeralPort) {
  auto listener = TcpListener::listen(InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  auto addr = listener.value().local_address();
  ASSERT_TRUE(addr.is_ok());
  EXPECT_GT(addr.value().port(), 0);
}

TEST(TcpListener, AcceptWouldBlockWhenNoClient) {
  auto listener = TcpListener::listen(InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  auto client = listener.value().accept();
  EXPECT_FALSE(client.is_ok());
  EXPECT_EQ(client.status().code(), StatusCode::kWouldBlock);
}

TEST(TcpSocket, LoopbackRoundTrip) {
  auto listener = TcpListener::listen(InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  const uint16_t port = listener.value().local_address().value().port();

  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port));
  // Accept may need a beat for the handshake to complete.
  Result<TcpSocket> accepted = Status::would_block();
  for (int i = 0; i < 100; ++i) {
    accepted = listener.value().accept();
    if (accepted.is_ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(accepted.is_ok());

  ASSERT_TRUE(client.send_all("ping"));
  ByteBuffer buf;
  for (int i = 0; i < 100 && buf.readable() < 4; ++i) {
    auto n = accepted.value().read(buf);
    if (!n.is_ok() && n.status().code() != StatusCode::kWouldBlock) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(buf.view(), "ping");

  ByteBuffer out{std::string_view("pong")};
  auto sent = accepted.value().write(out);
  ASSERT_TRUE(sent.is_ok());
  EXPECT_EQ(client.read_some(4), "pong");
}

TEST(TcpSocket, ReadAfterPeerCloseReturnsClosed) {
  auto listener = TcpListener::listen(InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  const uint16_t port = listener.value().local_address().value().port();
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port));
  Result<TcpSocket> accepted = Status::would_block();
  for (int i = 0; i < 100 && !accepted.is_ok(); ++i) {
    accepted = listener.value().accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(accepted.is_ok());
  client.close();
  ByteBuffer buf;
  Status status = Status::ok();
  for (int i = 0; i < 100; ++i) {
    auto n = accepted.value().read(buf);
    if (!n.is_ok() && n.status().code() != StatusCode::kWouldBlock) {
      status = n.status();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(status.code(), StatusCode::kClosed);
}

// ---------- TimerQueue -------------------------------------------------------

TEST(TimerQueue, FiresInDeadlineOrder) {
  TimerQueue timers;
  std::vector<int> order;
  const auto base = now();
  timers.schedule_at(base + std::chrono::milliseconds(2),
                     [&] { order.push_back(2); });
  timers.schedule_at(base + std::chrono::milliseconds(1),
                     [&] { order.push_back(1); });
  timers.run_due(base + std::chrono::milliseconds(10));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(TimerQueue, CancelPreventsFiring) {
  TimerQueue timers;
  bool fired = false;
  const auto id = timers.schedule_after(std::chrono::milliseconds(0),
                                        [&] { fired = true; });
  timers.cancel(id);
  timers.run_due(now() + std::chrono::seconds(1));
  EXPECT_FALSE(fired);
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(TimerQueue, FutureTimerDoesNotFireEarly) {
  TimerQueue timers;
  bool fired = false;
  timers.schedule_after(std::chrono::hours(1), [&] { fired = true; });
  timers.run_due();
  EXPECT_FALSE(fired);
  EXPECT_EQ(timers.pending(), 1u);
}

TEST(TimerQueue, NextTimeoutClampedByCap) {
  TimerQueue timers;
  EXPECT_EQ(timers.next_timeout_ms(123), 123);
  timers.schedule_after(std::chrono::milliseconds(5), [] {});
  const int timeout = timers.next_timeout_ms(1000);
  EXPECT_GE(timeout, 0);
  EXPECT_LE(timeout, 7);
}

TEST(TimerQueue, CancelChurnKeepsHeapBounded) {
  // Every request under O7 re-arms an idle timer (schedule + cancel); the
  // lazy-cancel heap must compact, not accumulate one tombstone per request.
  TimerQueue timers;
  std::vector<TimerQueue::TimerId> live;
  for (int i = 0; i < 64; ++i) {
    live.push_back(timers.schedule_after(std::chrono::hours(1), [] {}));
  }
  for (int i = 0; i < 10000; ++i) {
    const auto id = timers.schedule_after(std::chrono::hours(2), [] {});
    timers.cancel(id);
  }
  EXPECT_EQ(timers.pending(), 64u);
  // Compaction keeps tombstones <= live entries.
  EXPECT_LE(timers.heap_size(), 2 * timers.pending());
  for (const auto id : live) timers.cancel(id);
}

TEST(TimerQueue, CancelledTimerDoesNotCauseEarlyWakeup) {
  // A tombstoned heap top must not shorten the poll timeout: after the
  // soonest timer is cancelled, the next deadline is the one that counts.
  TimerQueue timers;
  const auto soon =
      timers.schedule_after(std::chrono::milliseconds(1), [] {});
  timers.schedule_after(std::chrono::hours(1), [] {});
  timers.cancel(soon);
  EXPECT_EQ(timers.next_timeout_ms(5000), 5000);
}

TEST(TimerQueue, CancelAllThenNextTimeoutIsCap) {
  TimerQueue timers;
  const auto a = timers.schedule_after(std::chrono::milliseconds(1), [] {});
  const auto b = timers.schedule_after(std::chrono::milliseconds(2), [] {});
  timers.cancel(a);
  timers.cancel(b);
  EXPECT_EQ(timers.next_timeout_ms(1234), 1234);
  EXPECT_EQ(timers.run_due(now() + std::chrono::seconds(5)), 0u);
}

TEST(TimerQueue, TimerCanScheduleAnotherTimer) {
  TimerQueue timers;
  int fired = 0;
  timers.schedule_after(std::chrono::milliseconds(0), [&] {
    ++fired;
    timers.schedule_after(std::chrono::milliseconds(0), [&] { ++fired; });
  });
  timers.run_due(now() + std::chrono::milliseconds(1));
  timers.run_due(now() + std::chrono::milliseconds(1));
  EXPECT_EQ(fired, 2);
}

// ---------- Reactor ----------------------------------------------------------

TEST(Reactor, PostRunsOnReactorThread) {
  Reactor reactor;
  std::atomic<bool> ran{false};
  std::thread::id loop_id;
  reactor.post([&] {
    ran = true;
    loop_id = std::this_thread::get_id();
  });
  reactor.start_thread();
  for (int i = 0; i < 200 && !ran; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
  EXPECT_NE(loop_id, std::this_thread::get_id());
  reactor.stop();
  reactor.join();
}

TEST(Reactor, TimerFiresApproximatelyOnTime) {
  Reactor reactor;
  std::atomic<bool> fired{false};
  const auto start = now();
  std::atomic<int64_t> delay_ms{-1};
  reactor.post([&] {
    reactor.run_after(std::chrono::milliseconds(30), [&] {
      delay_ms = to_millis(now() - start);
      fired = true;
    });
  });
  reactor.start_thread();
  for (int i = 0; i < 400 && !fired; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(fired.load());
  EXPECT_GE(delay_ms.load(), 29);
  EXPECT_LE(delay_ms.load(), 300);
  reactor.stop();
  reactor.join();
}

TEST(Reactor, StopWakesBlockedLoop) {
  Reactor reactor;
  reactor.start_thread();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto begin = now();
  reactor.stop();
  reactor.join();
  EXPECT_LT(to_millis(now() - begin), 600);
}

TEST(Reactor, PostFromMultipleThreads) {
  Reactor reactor;
  reactor.start_thread();
  std::atomic<int> count{0};
  std::vector<std::thread> posters;
  for (int t = 0; t < 4; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        reactor.post([&count] { count.fetch_add(1); });
      }
    });
  }
  for (auto& t : posters) t.join();
  for (int i = 0; i < 500 && count.load() < 2000; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(count.load(), 2000);
  reactor.stop();
  reactor.join();
}

// ---------- Acceptor / Connector ---------------------------------------------

TEST(AcceptorConnector, EstablishesConnection) {
  Reactor reactor;
  std::atomic<int> accepted{0};
  Acceptor acceptor(reactor, [&](TcpSocket sock) {
    EXPECT_TRUE(sock.valid());
    accepted.fetch_add(1);
  });
  ASSERT_TRUE(acceptor.open(InetAddress::loopback(0)).is_ok());
  const uint16_t port = acceptor.local_address().value().port();

  Connector connector(reactor);
  std::atomic<bool> connected{false};
  reactor.post([&] {
    connector.connect(InetAddress::loopback(port), [&](Result<TcpSocket> s) {
      EXPECT_TRUE(s.is_ok());
      connected = true;
    });
  });
  reactor.start_thread();
  for (int i = 0; i < 400 && (!connected || accepted == 0); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(connected.load());
  EXPECT_EQ(accepted.load(), 1);
  EXPECT_EQ(acceptor.accepted_count(), 1u);
  reactor.stop();
  reactor.join();
}

TEST(Acceptor, SuspendStopsAccepting) {
  Reactor reactor;
  std::atomic<int> accepted{0};
  Acceptor acceptor(reactor, [&](TcpSocket) { accepted.fetch_add(1); });
  ASSERT_TRUE(acceptor.open(InetAddress::loopback(0), /*backlog=*/64).is_ok());
  const uint16_t port = acceptor.local_address().value().port();
  reactor.post([&] { acceptor.suspend(); });
  reactor.start_thread();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port));  // lands in kernel backlog
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(accepted.load(), 0);

  std::atomic<bool> resumed{false};
  reactor.post([&] {
    acceptor.resume();
    resumed = true;
  });
  for (int i = 0; i < 400 && accepted.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(resumed.load());
  EXPECT_EQ(accepted.load(), 1);
  reactor.stop();
  reactor.join();
}

TEST(Connector, ReportsRefusedConnection) {
  Reactor reactor;
  // Grab a port and close the listener so connects are refused.
  uint16_t dead_port = 0;
  {
    auto listener = TcpListener::listen(InetAddress::loopback(0));
    ASSERT_TRUE(listener.is_ok());
    dead_port = listener.value().local_address().value().port();
  }
  Connector connector(reactor);
  std::atomic<bool> failed{false};
  reactor.post([&] {
    connector.connect(InetAddress::loopback(dead_port),
                      [&](Result<TcpSocket> s) {
                        EXPECT_FALSE(s.is_ok());
                        failed = true;
                      });
  });
  reactor.start_thread();
  for (int i = 0; i < 400 && !failed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(failed.load());
  reactor.stop();
  reactor.join();
}

// ---------- Event source decorators ------------------------------------------

TEST(EventSourceDecorators, UserEventsInterruptBlockedPoll) {
  Reactor reactor;
  reactor.start_thread();
  // With no sockets and no timers the poll would block for its full cap;
  // a post must still run promptly thanks to the eventfd wakeup.
  const auto start = now();
  std::atomic<bool> ran{false};
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // loop parked
  reactor.post([&] { ran = true; });
  for (int i = 0; i < 300 && !ran; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
  EXPECT_LT(to_millis(now() - start), 400);
  reactor.stop();
  reactor.join();
}

}  // namespace
}  // namespace cops::net
