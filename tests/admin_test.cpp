// End-to-end tests for the O11+ admin/metrics endpoint: a real COPS-HTTP
// server with stats_export enabled, scraped over the second listener.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http/http_server.hpp"
#include "loadgen/http_client.hpp"
#include "nserver/stats.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

using http::CopsHttpServer;
using http::HttpServerConfig;
using nserver::ServerOptions;
using nserver::StatsExport;

// Extracts the value of a single-sample Prometheus metric ("name value\n").
long metric_value(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtol(text.c_str() + at + needle.size(), nullptr, 10);
}

class AdminFixture : public ::testing::Test {
 protected:
  void start_server(ServerOptions options, HttpServerConfig config = {}) {
    docs_ = std::make_unique<test::TempDir>();
    docs_->write_file("index.html", "<html>home</html>");
    docs_->write_file("a/page.html", std::string(2000, 'p'));
    if (config.doc_root == ".") config.doc_root = docs_->str();
    options.listen_port = 0;
    server_ = std::make_unique<CopsHttpServer>(std::move(options),
                                               std::move(config));
    auto status = server_->start();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    port_ = server_->port();
    admin_port_ = server_->admin_port();
  }

  static ServerOptions admin_options() {
    auto options = CopsHttpServer::default_options();
    options.profiling = true;
    options.stats_export = StatsExport::kAdminHttp;
    options.admin_port = 0;  // kernel-chosen
    return options;
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::unique_ptr<test::TempDir> docs_;
  std::unique_ptr<CopsHttpServer> server_;
  uint16_t port_ = 0;
  uint16_t admin_port_ = 0;
};

TEST_F(AdminFixture, DisabledByDefault) {
  auto options = CopsHttpServer::default_options();
  options.profiling = true;
  start_server(options);
  EXPECT_EQ(server_->admin_port(), 0);
}

TEST_F(AdminFixture, ExportRequiresProfiling) {
  auto options = CopsHttpServer::default_options();
  options.profiling = false;
  options.stats_export = StatsExport::kAdminHttp;
  CopsHttpServer server(options, {});
  EXPECT_FALSE(server.start().is_ok());
}

TEST_F(AdminFixture, HealthzRespondsOk) {
  start_server(admin_options());
  ASSERT_NE(admin_port_, 0);
  ASSERT_NE(admin_port_, port_);
  const auto response = test::http_get(admin_port_, "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);
}

TEST_F(AdminFixture, UnknownPathIs404AndBadMethodIs405) {
  start_server(admin_options());
  EXPECT_NE(test::http_get(admin_port_, "/nope").find("404"),
            std::string::npos);
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", admin_port_));
  client.send_all("POST /stats HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(client.read_some().find("405"), std::string::npos);
}

TEST_F(AdminFixture, StatsCountersMatchScriptedWorkload) {
  start_server(admin_options());
  constexpr int kRequests = 7;
  for (int i = 0; i < kRequests; ++i) {
    const auto response = test::http_get(port_, "/index.html");
    ASSERT_NE(response.find("200 OK"), std::string::npos);
  }

  const auto response = test::http_get(admin_port_, "/stats");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const auto body = response.substr(response.find("\r\n\r\n") + 4);

  EXPECT_EQ(metric_value(body, "nserver_requests_total"), kRequests);
  EXPECT_EQ(metric_value(body, "nserver_replies_total"), kRequests);
  EXPECT_EQ(metric_value(body, "nserver_connections_accepted_total"),
            kRequests);  // one connection per blocking GET
  EXPECT_GT(metric_value(body, "nserver_bytes_read_total"), 0);
  EXPECT_GT(metric_value(body, "nserver_bytes_sent_total"), 0);
  EXPECT_GE(metric_value(body, "nserver_cache_hits_total"), 1);

  // The stage histogram family is present, with per-stage samples.
  EXPECT_NE(body.find("# TYPE nserver_stage_latency_seconds histogram"),
            std::string::npos);
  for (const char* stage : {"decode", "handle", "encode", "write", "total"}) {
    const std::string count_line = "nserver_stage_latency_seconds_count{stage=\"" +
                                   std::string(stage) + "\"} ";
    const size_t at = body.find(count_line);
    ASSERT_NE(at, std::string::npos) << stage;
    EXPECT_EQ(std::strtol(body.c_str() + at + count_line.size(), nullptr, 10),
              kRequests)
        << stage;
  }
  EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);
}

TEST_F(AdminFixture, StatsJsonAndPerConnectionGauges) {
  start_server(admin_options());
  // A live keep-alive connection with two requests on it.
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port_));
  ASSERT_FALSE(test::http_get(port_, "/index.html", true, &client).empty());
  ASSERT_FALSE(test::http_get(port_, "/a/page.html", true, &client).empty());

  const auto response = test::http_get(admin_port_, "/stats.json");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const auto body = response.substr(response.find("\r\n\r\n") + 4);
  EXPECT_NE(body.find("\"requests\":2"), std::string::npos);
  EXPECT_NE(body.find("\"connections_open\":1"), std::string::npos);
  EXPECT_NE(body.find("\"stages\":"), std::string::npos);
  // The per-connection entry reports its byte/request gauges.
  EXPECT_NE(body.find("\"connections\":[{"), std::string::npos);
  EXPECT_NE(body.find("\"requests\":2}"), std::string::npos);
  EXPECT_NE(body.find("\"peer\":\"127.0.0.1:"), std::string::npos);
}

TEST_F(AdminFixture, LoadgenScrapeMatchesObservedResponses) {
  start_server(admin_options());
  loadgen::ClientConfig config;
  auto addr = net::InetAddress::parse("127.0.0.1", port_);
  ASSERT_TRUE(addr.is_ok());
  config.server = addr.value();
  config.num_clients = 4;
  config.duration = std::chrono::milliseconds(300);
  config.think_time = std::chrono::milliseconds(1);
  config.path_for = [](size_t, std::mt19937&) {
    return std::string("/index.html");
  };
  config.admin_scrape_port = admin_port_;
  const auto stats = loadgen::run_clients(config);
  ASSERT_GT(stats.total_responses, 0u);
  ASSERT_FALSE(stats.admin_stats_text.empty());
  // Every response the generator observed was a reply the server counted
  // (the server may have sent a final reply the generator didn't read).
  const long replies =
      metric_value(stats.admin_stats_text, "nserver_replies_total");
  EXPECT_GE(replies, static_cast<long>(stats.total_responses));
  EXPECT_GE(metric_value(stats.admin_stats_text, "nserver_requests_total"),
            static_cast<long>(stats.total_responses));
}

TEST_F(AdminFixture, HealthzReturns503WhileDraining) {
  // An in-flight request (slowed by decode_delay) holds the drain open long
  // enough to observe the admin endpoint report it: /healthz must flip to
  // 503 "draining" the moment drain() starts, which is what upstream load
  // balancer health checks key off to stop routing new sessions here.
  auto options = admin_options();
  options.processor_threads = 1;
  HttpServerConfig config;
  config.decode_delay = std::chrono::milliseconds(400);
  start_server(options, std::move(config));

  const auto before = test::http_get(admin_port_, "/healthz");
  EXPECT_NE(before.find("200 OK"), std::string::npos);

  test::BlockingClient slow;
  ASSERT_TRUE(slow.connect("127.0.0.1", port_));
  ASSERT_TRUE(slow.send_all(
      "GET /index.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread drainer([this] {
    EXPECT_TRUE(server_->server().drain(std::chrono::seconds(5)));
  });
  // The drain flag is visible immediately, while the request is in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto during = test::http_get(admin_port_, "/healthz");
  EXPECT_NE(during.find("503"), std::string::npos) << during;
  EXPECT_NE(during.find("draining"), std::string::npos) << during;
  drainer.join();

  // The in-flight request was allowed to finish (graceful, not abrupt) —
  // drain() ends in stop(), so the admin endpoint is gone afterwards, but
  // the slow client's response was written before the connection wound down.
  EXPECT_NE(slow.read_some().find("200 OK"), std::string::npos);
}

TEST_F(AdminFixture, OverloadShedReturns503WithRetryAfter) {
  // O9 shed tier: while the processor queue is saturated the server answers
  // with an explicit 503 + Retry-After instead of only suspending accept,
  // and /healthz reports the overload — both visible, countable signals for
  // an upstream balancer's passive ejection.
  auto options = admin_options();
  options.overload_control = true;
  options.overload_shed = true;
  options.queue_high_watermark = 3;
  options.queue_low_watermark = 1;
  options.housekeeping_interval = std::chrono::milliseconds(10);
  options.processor_threads = 1;
  HttpServerConfig config;
  config.decode_delay = std::chrono::milliseconds(10);
  start_server(options, std::move(config));

  // Flood: 8 connections, each with 6 pipelined requests (the last one
  // Connection: close so readers below terminate on EOF).  48 requests at
  // 10ms decode each keep the single processor saturated for ~500ms.
  const std::string keep =
      "GET /index.html HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n";
  const std::string last =
      "GET /index.html HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  std::vector<std::unique_ptr<test::BlockingClient>> flooders;
  for (int i = 0; i < 8; ++i) {
    auto client = std::make_unique<test::BlockingClient>();
    ASSERT_TRUE(client->connect("127.0.0.1", port_));
    std::string burst;
    for (int r = 0; r < 5; ++r) burst += keep;
    burst += last;
    ASSERT_TRUE(client->send_all(burst));
    flooders.push_back(std::move(client));
  }

  // Wait for the overload controller to trip…
  bool suspended = false;
  for (int i = 0; i < 2000 && !suspended; ++i) {
    suspended = !server_->server().accepting();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(suspended);
  // …and the admin health check reports it while the backlog lasts.
  const auto health = test::http_get(admin_port_, "/healthz");
  EXPECT_NE(health.find("503"), std::string::npos) << health;
  EXPECT_NE(health.find("overloaded"), std::string::npos) << health;

  // Some pipelined requests were answered with the shed response.
  bool saw_shed_response = false;
  for (auto& client : flooders) {
    const auto raw = client->read_some(0, 5000);
    if (raw.find("503 Service Unavailable") != std::string::npos &&
        raw.find("Retry-After: 1") != std::string::npos) {
      saw_shed_response = true;
    }
  }
  EXPECT_TRUE(saw_shed_response);
  flooders.clear();

  const auto shed = server_->server().profile().requests_shed;
  EXPECT_GT(shed, 0u);
  // The counter is exported through /stats.
  const auto response = test::http_get(admin_port_, "/stats");
  const auto body = response.substr(response.find("\r\n\r\n") + 4);
  EXPECT_EQ(metric_value(body, "nserver_requests_shed_total"),
            static_cast<long>(shed));
}

TEST_F(AdminFixture, AdminSurvivesManyScrapes) {
  start_server(admin_options());
  for (int i = 0; i < 20; ++i) {
    const auto response = test::http_get(admin_port_, "/stats");
    ASSERT_NE(response.find("200 OK"), std::string::npos) << i;
  }
  // The index page lists the endpoints.
  EXPECT_NE(test::http_get(admin_port_, "/").find("/stats"),
            std::string::npos);
}

}  // namespace
}  // namespace cops
