// Tests for the distributed N-Server front end (the paper's Section VI
// future work): the TCP relay data plane and the load-balancing control
// plane, including a full distributed COPS-HTTP cluster on loopback.
#include <gtest/gtest.h>

#include <thread>

#include "cluster/load_balancer.hpp"
#include "http/http_server.hpp"
#include "loadgen/http_client.hpp"
#include "tests/test_util.hpp"

namespace cops::cluster {
namespace {

// Simple echo backend for relay tests: accepts one connection, echoes all
// bytes until EOF, then closes.
class EchoBackend {
 public:
  EchoBackend() {
    auto listener = net::TcpListener::listen(net::InetAddress::loopback(0), 16);
    EXPECT_TRUE(listener.is_ok());
    listener_ = std::move(listener).take();
    thread_ = std::thread([this] { run(); });
  }
  ~EchoBackend() {
    // Join before closing: the run() thread polls the (non-blocking)
    // listener, so closing it concurrently would race Fd::reset/get.
    running_ = false;
    if (thread_.joinable()) thread_.join();
    listener_.close();
  }
  [[nodiscard]] uint16_t port() {
    return listener_.local_address().value().port();
  }
  [[nodiscard]] int connections() const { return connections_.load(); }

 private:
  void run() {
    while (running_.load()) {
      auto client = listener_.accept();
      if (!client.is_ok()) {
        if (!running_.load()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      connections_.fetch_add(1);
      // Blocking-ish echo until EOF.
      auto sock = std::move(client).take();
      ByteBuffer buf;
      const auto deadline = now() + std::chrono::seconds(5);
      while (running_.load() && now() < deadline) {
        auto n = sock.read(buf);
        if (n.is_ok()) {
          sock.write(buf);
          continue;
        }
        if (n.status().code() == StatusCode::kClosed) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      sock.close();
    }
  }

  net::TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> running_{true};
  std::atomic<int> connections_{0};
};

TEST(LoadBalancer, RequiresBackends) {
  LoadBalancer balancer({});
  EXPECT_FALSE(balancer.start().is_ok());
}

TEST(LoadBalancer, RelaysBytesBothWays) {
  EchoBackend backend;
  LoadBalancerConfig config;
  LoadBalancer balancer(config);
  balancer.add_backend(net::InetAddress::loopback(backend.port()));
  ASSERT_TRUE(balancer.start().is_ok());

  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", balancer.port()));
  ASSERT_TRUE(client.send_all("through the relay"));
  EXPECT_EQ(client.read_some(17), "through the relay");
  // Half-close propagates: shutting down our write ends the echo loop and
  // the relay closes our read side.
  client.shutdown_write();
  EXPECT_EQ(client.read_some(0, 2000), "");
  balancer.stop();
  EXPECT_EQ(balancer.total_sessions(), 1u);
}

TEST(LoadBalancer, RoundRobinSpreadsAcrossBackends) {
  EchoBackend a;
  EchoBackend b;
  LoadBalancerConfig config;
  config.policy = BalancePolicy::kRoundRobin;
  LoadBalancer balancer(config);
  balancer.add_backend(net::InetAddress::loopback(a.port()));
  balancer.add_backend(net::InetAddress::loopback(b.port()));
  ASSERT_TRUE(balancer.start().is_ok());

  for (int i = 0; i < 6; ++i) {
    test::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", balancer.port()));
    client.send_all("x");
    EXPECT_EQ(client.read_some(1), "x");
    client.close();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const auto stats = balancer.backend_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].connections, 3u);
  EXPECT_EQ(stats[1].connections, 3u);
  balancer.stop();
}

TEST(LoadBalancer, SkipsDeadBackend) {
  // Backend 0 is a dead port; every client must land on backend 1.
  uint16_t dead_port = 0;
  {
    auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
    ASSERT_TRUE(listener.is_ok());
    dead_port = listener.value().local_address().value().port();
  }
  EchoBackend alive;
  LoadBalancerConfig config;
  LoadBalancer balancer(config);
  balancer.add_backend(net::InetAddress::loopback(dead_port));
  balancer.add_backend(net::InetAddress::loopback(alive.port()));
  ASSERT_TRUE(balancer.start().is_ok());

  for (int i = 0; i < 4; ++i) {
    test::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", balancer.port()));
    client.send_all("y");
    EXPECT_EQ(client.read_some(1), "y") << "client " << i;
    client.close();
  }
  const auto stats = balancer.backend_stats();
  EXPECT_EQ(stats[1].connections, 4u);
  EXPECT_GT(stats[0].connect_failures, 0u);
  balancer.stop();
}

TEST(LoadBalancer, AllBackendsDeadDropsClient) {
  uint16_t dead_port = 0;
  {
    auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
    ASSERT_TRUE(listener.is_ok());
    dead_port = listener.value().local_address().value().port();
  }
  LoadBalancerConfig config;
  LoadBalancer balancer(config);
  balancer.add_backend(net::InetAddress::loopback(dead_port));
  ASSERT_TRUE(balancer.start().is_ok());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", balancer.port()));
  // The balancer closes us once the backend refuses.
  EXPECT_EQ(client.read_some(0, 2000), "");
  for (int i = 0; i < 300 && balancer.dropped_clients() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(balancer.dropped_clients(), 1u);
  balancer.stop();
}

// ---- the distributed COPS-HTTP cluster -------------------------------------------

TEST(DistributedNServer, BalancerPlusTwoWorkersServeHttp) {
  test::TempDir docs;
  docs.write_file("page.html", std::string(800, 'd'));

  // Two worker COPS-HTTP servers (standing in for the paper's "network of
  // workstations" — see DESIGN.md substitutions).
  http::HttpServerConfig worker_config;
  worker_config.doc_root = docs.str();
  http::CopsHttpServer worker_a(http::CopsHttpServer::default_options(),
                                worker_config);
  http::CopsHttpServer worker_b(http::CopsHttpServer::default_options(),
                                worker_config);
  ASSERT_TRUE(worker_a.start().is_ok());
  ASSERT_TRUE(worker_b.start().is_ok());

  LoadBalancerConfig config;
  config.policy = BalancePolicy::kLeastConnections;
  LoadBalancer balancer(config);
  balancer.add_backend(net::InetAddress::loopback(worker_a.port()));
  balancer.add_backend(net::InetAddress::loopback(worker_b.port()));
  ASSERT_TRUE(balancer.start().is_ok());

  // Drive the cluster through the load generator.
  loadgen::ClientConfig load;
  load.server = net::InetAddress::loopback(balancer.port());
  load.num_clients = 8;
  load.think_time = std::chrono::milliseconds(2);
  // Generous relative to the >40-responses assertion so the test also holds
  // under sanitizer slowdowns (TSan runs ~10x slower).
  load.duration = std::chrono::milliseconds(1500);
  load.path_for = [](size_t, std::mt19937&) { return "/page.html"; };
  const auto stats = loadgen::run_clients(load);

  EXPECT_GT(stats.total_responses, 40u);
  EXPECT_GT(stats.jain_fairness(), 0.8);
  // Both workers served traffic.
  const auto backend_stats = balancer.backend_stats();
  EXPECT_GT(backend_stats[0].connections, 0u);
  EXPECT_GT(backend_stats[1].connections, 0u);
  const auto profile_a = worker_a.hooks().responses_sent();
  const auto profile_b = worker_b.hooks().responses_sent();
  EXPECT_GT(profile_a, 0u);
  EXPECT_GT(profile_b, 0u);

  balancer.stop();
  worker_a.stop();
  worker_b.stop();
}

}  // namespace
}  // namespace cops::cluster
