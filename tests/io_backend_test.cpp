// S7 io_backend tests: UringPoller mechanics (oneshot-poll readiness with
// level-triggered equivalence, multishot-accept staging and re-arm after
// cancellation), registered-buffer recycling, the UringFileEngine Proactor,
// graceful fallback when the probe reports no uring, and the differential
// guarantee that io_backend=epoll and io_backend=io_uring put byte-identical
// reply streams on the wire — over simnet chaos plans (the sim seam sits
// below the backend split) and over real loopback sockets.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer_pool.hpp"
#include "http/http_server.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "net/uring.hpp"
#include "nserver/file_io_service.hpp"
#include "nserver/uring_file_engine.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops::net {
namespace {

#define SKIP_WITHOUT_URING()                                       \
  do {                                                             \
    if (!uring_available()) {                                      \
      GTEST_SKIP() << "io_uring unavailable on this kernel/build"; \
    }                                                              \
  } while (0)

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0) {
      a = sv[0];
      b = sv[1];
    }
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

size_t wait_once(Poller& poller, std::vector<ReadyFd>& out, int timeout_ms) {
  out.clear();
  auto n = poller.wait(out, timeout_ms);
  EXPECT_TRUE(n.is_ok()) << n.status().to_string();
  return n.is_ok() ? n.value() : 0;
}

TEST(UringPollerTest, FallsBackToEpollWhenForcedUnavailable) {
  test_force_uring_unavailable(true);
  EXPECT_FALSE(uring_available());
  EXPECT_EQ(UringPoller::create(), nullptr);
  Poller poller(PollBackend::kUring);
  EXPECT_TRUE(poller.valid());
  EXPECT_EQ(poller.backend(), PollBackend::kEpoll);
  test_force_uring_unavailable(false);
  // The forced flag must not stick (later tests rely on the real probe).
  EXPECT_EQ(uring_available(), uring_compiled() && uring_available());
}

TEST(UringPollerTest, OneshotPollDeliversLevelTriggeredReadiness) {
  SKIP_WITHOUT_URING();
  Poller poller(PollBackend::kUring);
  ASSERT_EQ(poller.backend(), PollBackend::kUring);
  SocketPair pair;
  ASSERT_GE(pair.a, 0);
  ASSERT_TRUE(poller.add(pair.a, kReadable).is_ok());

  std::vector<ReadyFd> out;
  EXPECT_EQ(wait_once(poller, out, 30), 0u) << "spurious readiness";

  ASSERT_EQ(::write(pair.b, "xy", 2), 2);
  ASSERT_EQ(wait_once(poller, out, 1000), 1u);
  EXPECT_EQ(out[0].fd, pair.a);
  EXPECT_TRUE(out[0].events & kReadable);

  // Level-triggered equivalence: data still unread, the re-armed oneshot
  // poll must fire again; once drained it must not.
  ASSERT_EQ(wait_once(poller, out, 1000), 1u) << "no re-delivery while "
                                                 "bytes remain buffered";
  char buf[4];
  ASSERT_EQ(::read(pair.a, buf, sizeof buf), 2);
  EXPECT_EQ(wait_once(poller, out, 30), 0u) << "readiness after drain";

  // Interest change while armed: POLL_REMOVE + re-arm for the new mask.
  ASSERT_TRUE(poller.modify(pair.a, kWritable).is_ok());
  ASSERT_EQ(wait_once(poller, out, 1000), 1u);
  EXPECT_TRUE(out[0].events & kWritable);

  ASSERT_TRUE(poller.remove(pair.a).is_ok());
  EXPECT_EQ(wait_once(poller, out, 30), 0u) << "events after remove";
}

TEST(UringPollerTest, PeerCloseReportsReadable) {
  SKIP_WITHOUT_URING();
  Poller poller(PollBackend::kUring);
  SocketPair pair;
  ASSERT_TRUE(poller.add(pair.a, kReadable).is_ok());
  ::close(pair.b);
  pair.b = -1;
  std::vector<ReadyFd> out;
  ASSERT_EQ(wait_once(poller, out, 1000), 1u);
  // RDHUP maps to readable so the read path observes EOF, exactly like the
  // epoll backend.
  EXPECT_TRUE(out[0].events & kReadable);
}

int drain_accepts(net::TcpListener& listener, Poller& poller, int want,
                  int max_waits = 50) {
  int accepted = 0;
  std::vector<ReadyFd> out;
  for (int i = 0; i < max_waits && accepted < want; ++i) {
    wait_once(poller, out, 200);
    for (const auto& ready : out) {
      if (ready.fd != listener.fd()) continue;
      while (true) {
        auto sock = listener.accept();
        if (!sock.is_ok()) break;
        ++accepted;
      }
    }
  }
  return accepted;
}

TEST(UringPollerTest, MultishotAcceptStreamsConnections) {
  SKIP_WITHOUT_URING();
  auto listener_result = TcpListener::listen(InetAddress::loopback(0));
  ASSERT_TRUE(listener_result.is_ok());
  auto& listener = listener_result.value();
  const uint16_t port = listener.local_address().value().port();

  Poller poller(PollBackend::kUring);
  ASSERT_TRUE(poller.add(listener.fd(), kReadable).is_ok());

  std::vector<test::BlockingClient> clients(3);
  for (auto& client : clients) {
    ASSERT_TRUE(client.connect("127.0.0.1", port));
  }
  EXPECT_EQ(drain_accepts(listener, poller, 3), 3);
}

TEST(UringPollerTest, MultishotAcceptRearmsAfterCancellation) {
  SKIP_WITHOUT_URING();
  auto listener_result = TcpListener::listen(InetAddress::loopback(0));
  ASSERT_TRUE(listener_result.is_ok());
  auto& listener = listener_result.value();
  const uint16_t port = listener.local_address().value().port();

  Poller poller(PollBackend::kUring);
  ASSERT_TRUE(poller.add(listener.fd(), kReadable).is_ok());
  {
    test::BlockingClient first;
    ASSERT_TRUE(first.connect("127.0.0.1", port));
    ASSERT_EQ(drain_accepts(listener, poller, 1), 1);
  }

  // Cancel the accept stream (suspend, as the overload lever does), then
  // re-register: the multishot SQE must be re-armed and keep streaming.
  ASSERT_TRUE(poller.remove(listener.fd()).is_ok());
  std::vector<ReadyFd> out;
  wait_once(poller, out, 30);  // reap the cancellation
  ASSERT_TRUE(poller.add(listener.fd(), kReadable).is_ok());

  test::BlockingClient second;
  ASSERT_TRUE(second.connect("127.0.0.1", port));
  EXPECT_EQ(drain_accepts(listener, poller, 1), 1)
      << "accept stream dead after cancellation + re-add";
}

TEST(UringOpsTest, SyncOverRingOpsKeepSyscallErrnoContract) {
  SKIP_WITHOUT_URING();
  enable_uring_ops();
  ASSERT_TRUE(uring_ops_enabled());
  SocketPair pair;
  ASSERT_GE(pair.a, 0);
  EXPECT_EQ(uring_send(pair.a, "hello", 5), 5);
  char buf[16];
  EXPECT_EQ(uring_recv(pair.b, buf, sizeof buf), 5);
  EXPECT_EQ(std::string(buf, 5), "hello");
  // Empty socket: MSG_DONTWAIT keeps the EAGAIN contract.
  errno = 0;
  EXPECT_EQ(uring_recv(pair.b, buf, sizeof buf), -1);
  EXPECT_EQ(errno, EAGAIN);
  // Vectored send.
  struct iovec iov[2];
  iov[0].iov_base = const_cast<char*>("ab");
  iov[0].iov_len = 2;
  iov[1].iov_base = const_cast<char*>("cde");
  iov[1].iov_len = 3;
  EXPECT_EQ(uring_sendmsg(pair.a, iov, 2), 5);
  EXPECT_EQ(uring_recv(pair.b, buf, sizeof buf), 5);
  EXPECT_EQ(std::string(buf, 5), "abcde");
  disable_uring_ops();
  EXPECT_FALSE(uring_ops_enabled());
}

TEST(RegisteredBufferPoolTest, RecyclesSlotsWithoutTouchingTheSource) {
  BufferPool source(4096, /*max_free=*/8);
  RegisteredBufferPool pool(source, 4);
  EXPECT_EQ(pool.slots(), 4u);
  EXPECT_EQ(pool.available(), 4u);
  EXPECT_EQ(pool.slab_bytes(), 4096u);

  int slots[4];
  for (int& slot : slots) {
    slot = pool.acquire();
    ASSERT_GE(slot, 0);
    EXPECT_NE(pool.data(slot), nullptr);
  }
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.acquire(), -1) << "over-acquire must fail, not allocate";
  EXPECT_EQ(pool.reuses(), 0u);

  pool.release(slots[2]);
  const int again = pool.acquire();
  EXPECT_EQ(again, slots[2]);
  EXPECT_EQ(pool.reuses(), 1u) << "recycled slot not counted";
  for (int slot : slots) pool.release(slot);
  EXPECT_EQ(pool.available(), 4u);
}

}  // namespace
}  // namespace cops::net

// ---- UringFileEngine: the kernel Proactor behind FileIoService -----------

namespace cops::nserver {
namespace {

Result<FileDataPtr> engine_load(UringFileEngine& engine, const std::string& path,
                                const FileLoadOptions& load = {}) {
  std::promise<Result<FileDataPtr>> promise;
  auto future = promise.get_future();
  engine.submit(path, load,
                [&promise](Result<FileDataPtr> r) { promise.set_value(std::move(r)); });
  if (future.wait_for(std::chrono::seconds(5)) != std::future_status::ready) {
    return Status::internal("engine load timed out");
  }
  return future.get();
}

TEST(UringFileEngineTest, ReadsSmallFilesThroughRegisteredBuffers) {
  if (!net::uring_available()) GTEST_SKIP() << "io_uring unavailable";
  auto engine = UringFileEngine::create();
  ASSERT_NE(engine, nullptr);
  test::TempDir dir;
  dir.write_file("small.txt", "uring small file\n");
  auto result = engine_load(*engine, (dir.path() / "small.txt").string());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value()->bytes, "uring small file\n");
  EXPECT_GT(result.value()->mtime_seconds, 0);
  EXPECT_EQ(engine->fixed_reads() + engine->plain_reads(), 1u);
  engine->stop();
}

TEST(UringFileEngineTest, ReadsLargeFilesBeyondTheSlabSize) {
  if (!net::uring_available()) GTEST_SKIP() << "io_uring unavailable";
  auto engine = UringFileEngine::create();
  ASSERT_NE(engine, nullptr);
  test::TempDir dir;
  // 100 KB > the 64 KB registered slab: must chain plain READs.
  std::string big;
  big.reserve(100 * 1024);
  for (int i = 0; i < 100 * 1024; ++i) {
    big += static_cast<char>('a' + i % 26);
  }
  dir.write_file("big.bin", big);
  auto result = engine_load(*engine, (dir.path() / "big.bin").string());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value()->bytes, big);
  EXPECT_GE(engine->plain_reads(), 1u);
  engine->stop();
}

TEST(UringFileEngineTest, SendfileEligibleLoadsReturnAnOpenDescriptor) {
  if (!net::uring_available()) GTEST_SKIP() << "io_uring unavailable";
  auto engine = UringFileEngine::create();
  ASSERT_NE(engine, nullptr);
  test::TempDir dir;
  dir.write_file("served.bin", std::string(4096, 'z'));
  FileLoadOptions load;
  load.open_for_sendfile = true;
  load.sendfile_min_bytes = 1024;
  auto result = engine_load(*engine, (dir.path() / "served.bin").string(), load);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GE(result.value()->fd, 0);
  EXPECT_EQ(result.value()->fd_size, 4096u);
  EXPECT_TRUE(result.value()->bytes.empty());
  engine->stop();
}

TEST(UringFileEngineTest, MissingFileReportsNotFound) {
  if (!net::uring_available()) GTEST_SKIP() << "io_uring unavailable";
  auto engine = UringFileEngine::create();
  ASSERT_NE(engine, nullptr);
  auto result = engine_load(*engine, "/nonexistent/cops/uring/file");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine->pending(), 0u);
  engine->stop();
}

TEST(FileIoServiceTest, UringModeRoutesAsyncLoadsThroughTheEngine) {
  if (!net::uring_available()) GTEST_SKIP() << "io_uring unavailable";
  FileIoService service(/*threads=*/1, /*use_uring=*/true);
  ASSERT_TRUE(service.using_uring());
  test::TempDir dir;
  dir.write_file("f.txt", "engine routed\n");
  std::promise<Result<FileDataPtr>> promise;
  auto future = promise.get_future();
  service.async_read((dir.path() / "f.txt").string(), CompletionToken{},
                     [&promise](Result<FileDataPtr> r) {
                       promise.set_value(std::move(r));
                     },
                     [](std::function<void()> fn) { fn(); });
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  auto result = future.get();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value()->bytes, "engine routed\n");
  EXPECT_EQ(service.completed(), 1u);
  EXPECT_EQ(service.uring_engine()->fixed_reads() +
                service.uring_engine()->plain_reads(),
            1u);
}

}  // namespace
}  // namespace cops::nserver

// ---- differential: epoll vs io_uring, simnet chaos plans -----------------
// The sim seam sits below the backend split (Poller checks is_sim_fd before
// consulting the ring), so every chaos plan must produce byte-identical
// reply streams regardless of the configured backend.

namespace cops::simnet {
namespace {

using std::chrono::milliseconds;

std::string sim_wire() {
  return "GET /a.txt HTTP/1.1\r\nHost: sim\r\n\r\n"
         "GET /b.bin HTTP/1.1\r\nHost: sim\r\n\r\n"
         "HEAD /b.bin HTTP/1.1\r\nHost: sim\r\n\r\n"
         "GET /missing HTTP/1.1\r\nHost: sim\r\n\r\n"
         "GET /a.txt HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n";
}

// Replays the fixed scenario over simnet with the given backend and chaos
// plan; returns the exact bytes the client observed.
std::string run_sim(uint64_t seed, const FaultPlan& plan,
                    nserver::IoBackend backend) {
  SimEngine engine(seed, plan);
  test::TempDir dir;
  dir.write_file("a.txt", "sim alpha\n");
  std::string big;
  for (int i = 0; i < 3000; ++i) big += static_cast<char>('A' + i % 26);
  dir.write_file("b.bin", big);
  const auto fixed_mtime = std::chrono::file_clock::from_sys(
      std::chrono::sys_seconds(std::chrono::seconds(784111777)));
  std::filesystem::last_write_time(dir.path() / "a.txt", fixed_mtime);
  std::filesystem::last_write_time(dir.path() / "b.bin", fixed_mtime);

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8090;
  options.io_backend = backend;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  EXPECT_TRUE(started.is_ok()) << started.to_string();
  if (!started.is_ok()) return {};

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  const std::string wire = sim_wire();
  engine.at(milliseconds(2),
            [client, head = wire.substr(0, wire.size() / 3)] {
              client->send(head);
            });
  engine.at(milliseconds(4),
            [client, tail = wire.substr(wire.size() / 3)] {
              client->send(tail);
            });
  EXPECT_TRUE(engine.run(std::chrono::seconds(120)))
      << "scenario did not quiesce";
  server.stop();
  EXPECT_TRUE(engine.failures().empty());
  return client->received();
}

// Mixed chaos plans: each seed exercises a different fault cocktail.
FaultPlan plan_for_seed(uint64_t seed) {
  switch (seed % 4) {
    case 0: return FaultPlan::none();
    case 1: return FaultPlan::chaos();
    case 2: {
      FaultPlan plan;  // read-side storm
      plan.read_eintr = 0.35;
      plan.read_eagain = 0.25;
      plan.short_read = 0.80;
      plan.accept_eintr = 0.50;
      plan.channel_capacity = 61;
      return plan;
    }
    default: {
      FaultPlan plan;  // write-side storm
      plan.write_eintr = 0.35;
      plan.write_eagain = 0.25;
      plan.short_write = 0.90;
      plan.channel_capacity = 97;
      return plan;
    }
  }
}

class IoBackendSimDifferential : public ::testing::TestWithParam<int> {};

TEST_P(IoBackendSimDifferential, BackendsAreByteIdenticalUnderChaos) {
  const auto seed = static_cast<uint64_t>(GetParam());
  const FaultPlan plan = plan_for_seed(seed);
  const std::string epoll_bytes =
      run_sim(seed, plan, nserver::IoBackend::kEpoll);
  const std::string uring_bytes =
      run_sim(seed, plan, nserver::IoBackend::kIoUring);
  ASSERT_FALSE(epoll_bytes.empty());
  EXPECT_EQ(epoll_bytes, uring_bytes)
      << "reply streams diverged between io backends (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoBackendSimDifferential,
                         ::testing::Range(1, 9), [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cops::simnet

// ---- differential: epoll vs io_uring over real loopback ------------------

namespace cops::http {
namespace {

struct ParsedResponse {
  std::string status_line;
  std::string body;
};

// Normalises a raw keep-alive response: status line + body (Date and other
// per-run headers excluded by construction).
ParsedResponse parse_response(const std::string& raw) {
  ParsedResponse parsed;
  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return parsed;
  parsed.status_line = raw.substr(0, line_end);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    parsed.body = raw.substr(header_end + 4);
  }
  return parsed;
}

class IoBackendLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!net::uring_available()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel/build";
    }
    dir_.write_file("a.txt", "loopback alpha\n");
    dir_.write_file("empty.txt", "");
    std::string big;
    for (int i = 0; i < 300 * 1024; ++i) {
      big += static_cast<char>('a' + i % 23);
    }
    dir_.write_file("big.bin", big);
    big_size_ = big.size();

    epoll_ = start_server(nserver::IoBackend::kEpoll);
    uring_ = start_server(nserver::IoBackend::kIoUring);
    ASSERT_NE(epoll_, nullptr);
    ASSERT_NE(uring_, nullptr);
    ASSERT_EQ(uring_->server().effective_io_backend(),
              nserver::IoBackend::kIoUring)
        << "probe passed but the uring server fell back to epoll";
  }

  void TearDown() override {
    if (epoll_) epoll_->stop();
    if (uring_) uring_->stop();
  }

  std::unique_ptr<CopsHttpServer> start_server(nserver::IoBackend backend) {
    auto options = CopsHttpServer::default_options();
    options.io_backend = backend;
    // sendfile path with a threshold under big.bin so the fd-serving branch
    // runs on both backends; two dispatchers so cross-shard accept dispatch
    // runs over the uring wakeup path too.
    options.send_path = nserver::SendPath::kSendfile;
    options.sendfile_min_bytes = 256 * 1024;
    options.dispatcher_threads = 2;
    HttpServerConfig config;
    config.doc_root = dir_.str();
    auto server = std::make_unique<CopsHttpServer>(options, config);
    auto started = server->start();
    EXPECT_TRUE(started.is_ok()) << started.to_string();
    if (!started.is_ok()) return nullptr;
    return server;
  }

  test::TempDir dir_;
  size_t big_size_ = 0;
  std::unique_ptr<CopsHttpServer> epoll_;
  std::unique_ptr<CopsHttpServer> uring_;
};

TEST_F(IoBackendLoopbackTest, KeepAliveSessionsAreByteIdenticalAcrossSeeds) {
  const std::vector<std::string> paths = {"/a.txt", "/empty.txt", "/missing",
                                          "/big.bin"};
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    test::BlockingClient epoll_client;
    test::BlockingClient uring_client;
    ASSERT_TRUE(epoll_client.connect("127.0.0.1", epoll_->port()));
    ASSERT_TRUE(uring_client.connect("127.0.0.1", uring_->port()));
    const int requests = 2 + static_cast<int>(rng() % 4);
    for (int i = 0; i < requests; ++i) {
      const std::string& path = paths[rng() % paths.size()];
      const auto from_epoll = parse_response(
          test::http_get(epoll_->port(), path, true, &epoll_client));
      const auto from_uring = parse_response(
          test::http_get(uring_->port(), path, true, &uring_client));
      EXPECT_EQ(from_epoll.status_line, from_uring.status_line) << path;
      EXPECT_EQ(from_epoll.body, from_uring.body) << path;
    }
  }
}

TEST_F(IoBackendLoopbackTest, UringServesSendfileSizedFilesIntact) {
  const std::string raw = test::http_get(uring_->port(), "/big.bin");
  const auto parsed = parse_response(raw);
  EXPECT_EQ(parsed.status_line, "HTTP/1.1 200 OK");
  ASSERT_EQ(parsed.body.size(), big_size_);
  for (size_t i = 0; i < parsed.body.size(); i += 37) {
    ASSERT_EQ(parsed.body[i], static_cast<char>('a' + i % 23))
        << "body corruption at offset " << i;
  }
}

TEST(IoBackendFallbackTest, ServerDegradesToEpollWhenProbeFails) {
  net::test_force_uring_unavailable(true);
  test::TempDir dir;
  dir.write_file("f.txt", "fallback body\n");
  auto options = CopsHttpServer::default_options();
  options.io_backend = nserver::IoBackend::kIoUring;
  HttpServerConfig config;
  config.doc_root = dir.str();
  CopsHttpServer server(options, config);
  auto started = server.start();
  net::test_force_uring_unavailable(false);
  ASSERT_TRUE(started.is_ok()) << started.to_string();
  EXPECT_EQ(server.server().effective_io_backend(),
            nserver::IoBackend::kEpoll);
  EXPECT_EQ(server.server().options().io_backend,
            nserver::IoBackend::kIoUring)
      << "requested option must be preserved for reporting";
  const auto raw = test::http_get(server.port(), "/f.txt");
  EXPECT_NE(raw.find("200 OK"), std::string::npos);
  EXPECT_NE(raw.find("fallback body"), std::string::npos);
  server.stop();
}

TEST(IoBackendEndToEndTest, UringBackedServerServesWithEngineFileLoads) {
  if (!net::uring_available()) GTEST_SKIP() << "io_uring unavailable";
  test::TempDir dir;
  dir.write_file("f.txt", "served by the ring\n");
  auto options = CopsHttpServer::default_options();
  options.io_backend = nserver::IoBackend::kIoUring;
  options.cache_policy = nserver::CachePolicyKind::kNone;  // every GET loads
  HttpServerConfig config;
  config.doc_root = dir.str();
  CopsHttpServer server(options, config);
  ASSERT_TRUE(server.start().is_ok());
  ASSERT_EQ(server.server().effective_io_backend(),
            nserver::IoBackend::kIoUring);
  auto* file_service = server.server().file_service();
  ASSERT_NE(file_service, nullptr);
  ASSERT_TRUE(file_service->using_uring());
  for (int i = 0; i < 3; ++i) {
    const auto raw = test::http_get(server.port(), "/f.txt");
    EXPECT_NE(raw.find("200 OK"), std::string::npos);
    EXPECT_NE(raw.find("served by the ring"), std::string::npos);
  }
  auto* engine = file_service->uring_engine();
  EXPECT_GE(engine->fixed_reads() + engine->plain_reads(), 3u)
      << "file loads bypassed the uring engine";
  server.stop();
}

}  // namespace
}  // namespace cops::http
