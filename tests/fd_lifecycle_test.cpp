// Accept / fd-lifecycle bugfix regressions:
//
//   * EMFILE accept storm — the reserve-descriptor shed plus the
//     suspend-and-timer-resume backstop: the pending client gets a prompt
//     close instead of hanging in the listen queue, reactor wakeups stay
//     bounded while descriptors are exhausted, and accepting resumes once
//     they free up.
//   * CLOEXEC everywhere — a fork+exec'd child must inherit no server
//     descriptors (listeners, connections, epoll, eventfd, io_uring).
//   * load_file TOCTOU — size/mtime must come from the same descriptor
//     that gets served, even when the path is swapped between any
//     stat-like step and the open.
//   * accept EINTR — a signal-interrupted accept4 retries instead of
//     surfacing a spurious error to the Acceptor.
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "http/http_server.hpp"
#include "net/acceptor.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "nserver/file_io_service.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

// ---- EMFILE accept storm -------------------------------------------------

class FdExhaustionTest : public ::testing::Test {
 protected:
  void TearDown() override { release_burned(); }

  // Opens /dev/null until the process is out of descriptors.
  void burn_all_fds() {
    while (true) {
      const int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
      if (fd < 0) break;
      burned_.push_back(fd);
    }
  }

  void release_burned() {
    for (int fd : burned_) ::close(fd);
    burned_.clear();
  }

  std::vector<int> burned_;
};

TEST_F(FdExhaustionTest, ShedsPendingClientAndResumesAfterBackoff) {
  net::Reactor reactor;
  std::atomic<int> accepted{0};
  std::vector<net::TcpSocket> kept;  // reactor-thread confined
  net::Acceptor acceptor(reactor, [&](net::TcpSocket socket) {
    ++accepted;
    kept.push_back(std::move(socket));
  });
  acceptor.set_exhaustion_backoff_ms(50);
  ASSERT_TRUE(
      acceptor.open(net::InetAddress::loopback(0), /*backlog=*/16).is_ok());
  const uint16_t port = acceptor.local_address().value().port();
  reactor.start_thread("fd-exhaustion");

  // Park the listener so the victim connection queues in the kernel while
  // we exhaust the descriptor table.
  {
    std::promise<void> parked;
    reactor.post([&] {
      ASSERT_TRUE(acceptor.suspend().is_ok());
      parked.set_value();
    });
    parked.get_future().wait();
  }
  test::BlockingClient victim;
  ASSERT_TRUE(victim.connect("127.0.0.1", port));
  // A second victim queues behind the first; it must connect while this
  // process still has descriptors for the client socket.
  test::BlockingClient second_victim;
  ASSERT_TRUE(second_victim.connect("127.0.0.1", port));
  // Warm UBSan's dynamic-type cache for the promise specialization the
  // post-exhaustion probe uses: the sanitizer's cold-path vptr probe needs
  // a pipe, and at zero free descriptors that pipe cannot be created, so a
  // perfectly valid object would be reported as having an invalid vptr.
  {
    std::promise<std::pair<uint64_t, uint64_t>> warmup;
    warmup.set_value({0, 0});
    (void)warmup.get_future().get();
  }
  burn_all_fds();
  {
    std::promise<void> resumed;
    reactor.post([&] {
      ASSERT_TRUE(acceptor.resume().is_ok());
      resumed.set_value();
    });
    resumed.get_future().wait();
  }

  // The reserve-descriptor trick must accept-then-close the victim: a
  // prompt EOF, not a listen-queue hang.  (Pre-fix, accept just failed and
  // the victim stayed queued until it timed out.)
  EXPECT_TRUE(victim.read_some(1, 3000).empty())
      << "shed connection not promptly closed";

  // Backstop: the listener is deregistered, so wakeups are bounded while
  // the exhaustion lasts.  Overflow handling may tick once per 50 ms
  // resume attempt but must not spin.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::promise<std::pair<uint64_t, uint64_t>> probe;
  reactor.post([&] {
    probe.set_value({acceptor.overflow_events(), acceptor.shed_count()});
  });
  const auto [overflows, shed] = probe.get_future().get();
  EXPECT_GE(overflows, 1u);
  EXPECT_GE(shed, 1u);
  EXPECT_LE(overflows, 10u)
      << "unbounded wakeups: the level-triggered listener is spinning";

  // Recovery: free the descriptors and the resume timer re-registers the
  // listener; new connections are accepted again.
  release_burned();
  for (int i = 0; i < 50 && accepted.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  test::BlockingClient survivor;
  ASSERT_TRUE(survivor.connect("127.0.0.1", port));
  for (int i = 0; i < 50 && accepted.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(accepted.load(), 1) << "accepting never resumed after recovery";

  std::promise<void> closed;
  reactor.post([&] {
    kept.clear();
    acceptor.close();
    closed.set_value();
  });
  closed.get_future().wait();
  reactor.stop();
  reactor.join();
}

// ---- CLOEXEC sweep -------------------------------------------------------

TEST(CloexecTest, ForkedChildInheritsNoServerDescriptors) {
  test::TempDir dir;
  dir.write_file("f.txt", "cloexec probe\n");
  auto options = http::CopsHttpServer::default_options();
  options.dispatcher_threads = 2;  // several epoll/eventfd/listener fds
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(options, config);
  ASSERT_TRUE(server.start().is_ok());
  // A live accepted connection too, so per-connection fds are in play.
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  ASSERT_FALSE(test::http_get(server.port(), "/f.txt", true, &client).empty());

  // fork+exec (popen runs /bin/sh) and inventory every descriptor the
  // child ended up with, one "<fd> <target>" line each.  Server-side fds
  // are all O_CLOEXEC, so none of socket/eventpoll/eventfd/io_uring may
  // appear past the stdio range.  Fds 0-2 are excluded: stdio is inherited
  // from the test runner by design, and some harnesses (ctest under a
  // wrapper) hand the test a socketpair as stdin.
  FILE* pipe = ::popen(
      "for f in /proc/self/fd/*; do echo \"${f##*/} $(readlink \"$f\")\"; "
      "done 2>/dev/null",
      "r");
  ASSERT_NE(pipe, nullptr);
  std::string all_fds;
  std::string child_fds;
  char buf[256];
  while (::fgets(buf, sizeof buf, pipe) != nullptr) {
    all_fds += buf;
    const long fd_num = std::strtol(buf, nullptr, 10);
    if (fd_num <= 2) continue;
    child_fds += buf;
  }
  ::pclose(pipe);

  // Stdio always exists, so an empty inventory means the probe never ran.
  // An empty *filtered* inventory is a pass: nothing leaked past stdio.
  ASSERT_FALSE(all_fds.empty());
  EXPECT_EQ(child_fds.find("socket:"), std::string::npos)
      << "child inherited a socket:\n" << child_fds;
  EXPECT_EQ(child_fds.find("eventpoll"), std::string::npos)
      << "child inherited an epoll instance:\n" << child_fds;
  EXPECT_EQ(child_fds.find("eventfd"), std::string::npos)
      << "child inherited an eventfd:\n" << child_fds;
  EXPECT_EQ(child_fds.find("io_uring"), std::string::npos)
      << "child inherited an io_uring instance:\n" << child_fds;
  server.stop();
}

// ---- load_file TOCTOU ----------------------------------------------------

class ToctouTest : public ::testing::Test {
 protected:
  void TearDown() override {
    nserver::FileIoService::set_test_pre_open_hook(nullptr);
  }

  static void set_mtime(const std::string& path, time_t seconds) {
    struct utimbuf times{seconds, seconds};
    ASSERT_EQ(::utime(path.c_str(), &times), 0);
  }
};

TEST_F(ToctouTest, SwappedFileServesConsistentBytesSizeAndMtime) {
  test::TempDir dir;
  const std::string path = (dir.path() / "swap.txt").string();
  dir.write_file("swap.txt", "OLD");
  set_mtime(path, 1000000);

  // The hook fires right before ::open — after any point where metadata
  // could have been captured from the original file.  Pre-fix, load_file
  // stat'ed first and read second: it would report the OLD mtime and OLD
  // size with whatever bytes the NEW file supplied (truncated/padded).
  bool swapped = false;
  nserver::FileIoService::set_test_pre_open_hook(
      [&](const std::string& hooked) {
        if (swapped || hooked != path) return;
        swapped = true;
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "REPLACEMENT-CONTENT";
        out.close();
        set_mtime(path, 2000000);
      });

  auto result = nserver::FileIoService::load_file(path, {});
  ASSERT_TRUE(swapped);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto& data = *result.value();
  // Everything must describe the file that was actually served.
  EXPECT_EQ(data.bytes, "REPLACEMENT-CONTENT");
  EXPECT_EQ(data.size(), data.bytes.size());
  EXPECT_EQ(data.mtime_seconds, 2000000);
}

TEST_F(ToctouTest, SwappedSendfileLoadDescribesTheServedDescriptor) {
  test::TempDir dir;
  const std::string path = (dir.path() / "big.bin").string();
  dir.write_file("big.bin", std::string(512, 'o'));  // below the threshold

  bool swapped = false;
  nserver::FileIoService::set_test_pre_open_hook(
      [&](const std::string& hooked) {
        if (swapped || hooked != path) return;
        swapped = true;
        // Grow past the sendfile threshold: the decision and the size must
        // both come from the opened descriptor.
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << std::string(8192, 'n');
      });

  nserver::FileLoadOptions load;
  load.open_for_sendfile = true;
  load.sendfile_min_bytes = 4096;
  auto result = nserver::FileIoService::load_file(path, load);
  ASSERT_TRUE(swapped);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto& data = *result.value();
  ASSERT_GE(data.fd, 0) << "post-swap size is sendfile-eligible";
  EXPECT_EQ(data.fd_size, 8192u);
  struct stat st{};
  ASSERT_EQ(::fstat(data.fd, &st), 0);
  EXPECT_EQ(static_cast<uint64_t>(st.st_size), data.fd_size)
      << "advertised size diverges from the descriptor being served";
}

}  // namespace
}  // namespace cops

// ---- accept EINTR (simulated signal storm) -------------------------------

namespace cops::simnet {
namespace {

TEST(AcceptEintrTest, InterruptedAcceptRetriesWithinOneDispatch) {
  FaultPlan plan;
  plan.accept_eintr = 0.9;  // per-attempt, seeded: the retry loop terminates
  SimEngine engine(/*seed=*/7, plan);
  test::TempDir dir;
  dir.write_file("a.txt", "eintr alpha\n");

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8090;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  ASSERT_TRUE(server.start().is_ok());

  auto* client = engine.new_client();
  engine.at(std::chrono::milliseconds(1), [client] { client->connect(8090); });
  engine.at(std::chrono::milliseconds(2), [client] {
    client->send("GET /a.txt HTTP/1.1\r\nHost: sim\r\n"
                 "Connection: close\r\n\r\n");
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(120))) << engine.trace_text();
  server.stop();

  // The fault fired and the connection was still served: sys_accept
  // retried the EINTR inside the dispatch instead of surfacing it.
  bool fault_injected = false;
  for (const auto& line : engine.trace()) {
    if (line.find("fault accept-eintr") != std::string::npos) {
      fault_injected = true;
      break;
    }
  }
  EXPECT_TRUE(fault_injected) << "scenario never exercised the EINTR path";
  EXPECT_NE(client->received().find("200 OK"), std::string::npos);
  EXPECT_NE(client->received().find("eintr alpha"), std::string::npos);
  EXPECT_TRUE(client->peer_closed());
}

}  // namespace
}  // namespace cops::simnet
