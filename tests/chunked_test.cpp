// Chunked transfer-coding tests (chaos label).
//
// Three layers:
//   1. ChunkedDecoder unit tests — split invariance (byte-by-byte feeds),
//      extensions, trailers, and every rejection class;
//   2. simnet upload differentials — a chunked POST dripped one octet per
//      virtual tick through a full nserver echo stack decodes to exactly
//      the bytes a Content-Length POST of the same body produces, under
//      fault-free and chaos plans, bit-identically per seed;
//   3. simnet download differentials — body_framing=chunked replies carry
//      the file bytes intact across send_path=copy/writev/sendfile with
//      byte-identical wire streams, plus full-stack 100-continue / 417 /
//      obs-fold regression coverage.
#include <algorithm>
#include <any>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "http/http_server.hpp"
#include "http/request_parser.hpp"
#include "http/response.hpp"
#include "nserver/request_context.hpp"
#include "nserver/server.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops::http {
namespace {

// ---- ChunkedDecoder unit tests ----------------------------------------------

struct DecodeRun {
  ChunkedDecoder::Status status = ChunkedDecoder::Status::kNeedMore;
  std::string body;
  size_t consumed = 0;
};

// One-shot decode of the full stream.
DecodeRun decode_all(std::string_view stream, ParseLimits limits = {}) {
  ChunkedDecoder decoder;
  DecodeRun run;
  run.status = decoder.feed(stream, &run.consumed, run.body, limits);
  return run;
}

// Incremental decode: re-present the unconsumed tail plus `step` more
// octets on every feed — the usage pattern the doc comment promises.
DecodeRun decode_stepped(std::string_view stream, size_t step,
                         ParseLimits limits = {}) {
  ChunkedDecoder decoder;
  DecodeRun run;
  std::string pending;
  size_t offered = 0;
  while (offered < stream.size()) {
    const size_t take = std::min(step, stream.size() - offered);
    pending.append(stream.substr(offered, take));
    offered += take;
    size_t consumed = 0;
    run.status = decoder.feed(pending, &consumed, run.body, limits);
    run.consumed += consumed;
    pending.erase(0, consumed);
    if (run.status != ChunkedDecoder::Status::kNeedMore) break;
  }
  return run;
}

const char kChunkedStream[] =
    "10\r\n0123456789abcdef\r\n"
    "5;ext=\"quoted\"\r\nhello\r\n"
    "1\r\n!\r\n"
    "0\r\n"
    "X-Checksum: cafe\r\n"
    "\r\n";
const char kChunkedBody[] = "0123456789abcdefhello!";

TEST(ChunkedDecoderTest, DecodesOneShot) {
  const DecodeRun run = decode_all(kChunkedStream);
  EXPECT_EQ(run.status, ChunkedDecoder::Status::kDone);
  EXPECT_EQ(run.body, kChunkedBody);
  EXPECT_EQ(run.consumed, sizeof(kChunkedStream) - 1);
}

TEST(ChunkedDecoderTest, SplitInvariantAtEveryStepSize) {
  const DecodeRun oracle = decode_all(kChunkedStream);
  ASSERT_EQ(oracle.status, ChunkedDecoder::Status::kDone);
  for (size_t step = 1; step <= sizeof(kChunkedStream) - 1; ++step) {
    const DecodeRun run = decode_stepped(kChunkedStream, step);
    EXPECT_EQ(run.status, oracle.status) << "step=" << step;
    EXPECT_EQ(run.body, oracle.body) << "step=" << step;
    EXPECT_EQ(run.consumed, oracle.consumed) << "step=" << step;
  }
}

TEST(ChunkedDecoderTest, UppercaseHexAndEmptyTrailer) {
  const DecodeRun run = decode_all("A\r\n0123456789\r\n0\r\n\r\n");
  EXPECT_EQ(run.status, ChunkedDecoder::Status::kDone);
  EXPECT_EQ(run.body, "0123456789");
}

TEST(ChunkedDecoderTest, BadHexRejected) {
  EXPECT_EQ(decode_all("xyz\r\n").status, ChunkedDecoder::Status::kBadSyntax);
  EXPECT_EQ(decode_all("\r\n").status, ChunkedDecoder::Status::kBadSyntax);
  // Data not followed by CRLF.
  EXPECT_EQ(decode_all("3\r\nabcXX0\r\n\r\n").status,
            ChunkedDecoder::Status::kBadSyntax);
}

TEST(ChunkedDecoderTest, HexOverflowRejectedAsTooLarge) {
  // 17 hex digits overflow any sane size; must not wrap silently.
  EXPECT_EQ(decode_all("ffffffffffffffff1\r\n").status,
            ChunkedDecoder::Status::kTooLarge);
}

TEST(ChunkedDecoderTest, BodyOverLimitRejected) {
  ParseLimits limits;
  limits.max_body_bytes = 8;
  // A single declared chunk over the cap...
  EXPECT_EQ(decode_all("9\r\n", limits).status,
            ChunkedDecoder::Status::kTooLarge);
  // ...and an accumulation across chunks.
  EXPECT_EQ(decode_all("6\r\nabcdef\r\n6\r\nabcdef\r\n", limits).status,
            ChunkedDecoder::Status::kTooLarge);
}

TEST(ChunkedDecoderTest, ForbiddenTrailerFieldsRejected) {
  for (const char* name :
       {"Content-Length", "Transfer-Encoding", "Host", "Trailer",
        "Connection", "Expect"}) {
    const std::string stream =
        std::string("0\r\n") + name + ": x\r\n\r\n";
    EXPECT_EQ(decode_all(stream).status, ChunkedDecoder::Status::kBadTrailer)
        << name;
  }
  // Obs-folded trailer lines are rejected like obs-folded headers.
  EXPECT_EQ(decode_all("0\r\nX-A: 1\r\n cont\r\n\r\n").status,
            ChunkedDecoder::Status::kBadTrailer);
  // A missing colon is not a trailer field at all.
  EXPECT_EQ(decode_all("0\r\nnot-a-field\r\n\r\n").status,
            ChunkedDecoder::Status::kBadTrailer);
}

TEST(ChunkedDecoderTest, ResetMakesDecoderReusable) {
  ChunkedDecoder decoder;
  std::string body;
  size_t consumed = 0;
  ASSERT_EQ(decoder.feed("3\r\nabc\r\n0\r\n\r\n", &consumed, body, {}),
            ChunkedDecoder::Status::kDone);
  EXPECT_EQ(decoder.decoded_bytes(), 3u);
  decoder.reset();
  body.clear();
  ASSERT_EQ(decoder.feed("2\r\nxy\r\n0\r\n\r\n", &consumed, body, {}),
            ChunkedDecoder::Status::kDone);
  EXPECT_EQ(body, "xy");
  EXPECT_EQ(decoder.decoded_bytes(), 2u);
}

}  // namespace
}  // namespace cops::http

namespace cops::simnet {
namespace {

using std::chrono::milliseconds;

// ---- upload differential over a full nserver echo stack ---------------------

// HTTP echo hooks: decode with the real parser (100-continue and reject
// handling included), reply with the decoded body under Content-Length
// framing.  The reply depends only on the decoded body — so any two request
// framings of the same body must produce byte-identical reply streams.
class EchoHooks : public nserver::AppHooks {
 public:
  nserver::DecodeResult decode(nserver::RequestContext& ctx,
                               ByteBuffer& in) override {
    auto& state = ctx.app_state();
    if (!state) state = std::make_shared<bool>(false);
    auto* continue_sent = static_cast<bool*>(state.get());
    http::HttpRequest request;
    http::ParseEvents events;
    switch (http::parse_request(in, request, {}, events)) {
      case http::ParseOutcome::kIncomplete:
        if (events.needs_continue && !*continue_sent) {
          *continue_sent = true;
          ctx.send("HTTP/1.1 100 Continue\r\n\r\n");
        }
        return nserver::DecodeResult::need_more();
      case http::ParseOutcome::kMalformed:
        return nserver::DecodeResult::error();
      case http::ParseOutcome::kReject:
        return nserver::DecodeResult::reject(
            http::make_error_response(events.reject_status,
                                      /*keep_alive=*/false)
                .serialize());
      case http::ParseOutcome::kComplete:
        *continue_sent = false;
        return nserver::DecodeResult::request_ready(std::move(request));
    }
    return nserver::DecodeResult::error();
  }

  void handle(nserver::RequestContext& ctx, std::any request) override {
    const auto req = std::any_cast<http::HttpRequest>(std::move(request));
    if (!req.keep_alive()) ctx.close_after_reply();
    ctx.reply(std::string("HTTP/1.1 200 OK\r\nContent-Length: ") +
              std::to_string(req.body.size()) + "\r\n\r\n" + req.body);
  }
};

std::string upload_body() {
  std::string body;
  for (int i = 0; i < 6; ++i) {
    body += "payload line " + std::to_string(i) + "\n";
  }
  return body;
}

// The same body, framed two ways.
std::string cl_upload_wire() {
  const std::string body = upload_body();
  return "POST /echo HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n"
         "Content-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string chunked_upload_wire() {
  const std::string body = upload_body();
  std::string wire =
      "POST /echo HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n"
      "Transfer-Encoding: chunked\r\n\r\n";
  // Uneven chunk sizes so CRLF boundaries land mid-line.
  size_t pos = 0;
  size_t take = 7;
  while (pos < body.size()) {
    const size_t n = std::min(take, body.size() - pos);
    char size_line[16];
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n", n);
    wire += size_line;
    wire += body.substr(pos, n) + "\r\n";
    pos += n;
    take = take * 2 + 1;
  }
  wire += "0\r\nX-Trailer: ok\r\n\r\n";
  return wire;
}

struct EchoRun {
  std::string received;
  std::vector<std::string> trace;
};

// Drips `wire` into a deterministic echo server one octet per virtual tick
// (the worst-case TCP segmentation) under the given fault plan.
EchoRun run_echo_drip(uint64_t seed, const FaultPlan& plan,
                      const std::string& wire) {
  SimEngine engine(seed, plan);
  SCOPED_TRACE("echo drip seed=" + std::to_string(seed));

  auto options = deterministic_options();
  options.listen_port = 8090;
  nserver::Server server(options, std::make_shared<EchoHooks>());
  auto started = server.start();
  EXPECT_TRUE(started.is_ok()) << started.to_string();
  if (!started.is_ok()) return {};

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  for (size_t i = 0; i < wire.size(); ++i) {
    const std::string octet(1, wire[i]);
    engine.at(milliseconds(2 + static_cast<int>(i)),
              [client, octet] { client->send(octet); });
  }

  EXPECT_TRUE(engine.run(std::chrono::seconds(120)))
      << "echo drip did not quiesce\n" << engine.trace_text();
  server.stop();
  EXPECT_TRUE(client->peer_closed());
  EXPECT_TRUE(engine.failures().empty());
  return {client->received(), engine.trace()};
}

class ChunkedUploadSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(ChunkedUploadSeedTest, DrippedChunkedUploadMatchesContentLength) {
  const auto seed = static_cast<uint64_t>(GetParam());
  for (const auto& plan : {FaultPlan::none(), FaultPlan::chaos()}) {
    const EchoRun cl = run_echo_drip(seed, plan, cl_upload_wire());
    const EchoRun chunked = run_echo_drip(seed, plan, chunked_upload_wire());
    // The echo reply carries the decoded body: both framings of the same
    // body must draw byte-identical reply streams.
    ASSERT_FALSE(cl.received.empty());
    EXPECT_EQ(chunked.received, cl.received);
    EXPECT_NE(cl.received.find(upload_body()), std::string::npos);
  }
}

TEST_P(ChunkedUploadSeedTest, SameSeedSameChunkedTrace) {
  const auto seed = static_cast<uint64_t>(GetParam());
  const EchoRun first = run_echo_drip(seed, FaultPlan::chaos(),
                                      chunked_upload_wire());
  const EchoRun second = run_echo_drip(seed, FaultPlan::chaos(),
                                       chunked_upload_wire());
  ASSERT_FALSE(first.trace.empty());
  ASSERT_EQ(first.trace.size(), second.trace.size());
  for (size_t i = 0; i < first.trace.size(); ++i) {
    ASSERT_EQ(first.trace[i], second.trace[i])
        << "first divergence at trace line " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkedUploadSeedTest, ::testing::Range(1, 5),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---- chunked downloads: body_framing=chunked over every send path -----------

std::string small_file() { return "alpha file: the quick brown fox\n"; }
std::string big_file() {
  std::string out;
  out.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    out += static_cast<char>('A' + (i * 7) % 26);
  }
  return out;
}

// De-chunks a chunked message body.  Returns false on any framing violation.
bool dechunk(std::string_view stream, std::string& body, std::string& error) {
  size_t pos = 0;
  while (true) {
    const size_t eol = stream.find("\r\n", pos);
    if (eol == std::string_view::npos) {
      error = "missing CRLF after chunk size";
      return false;
    }
    size_t size = 0;
    size_t digits = 0;
    for (size_t i = pos; i < eol; ++i) {
      const char c = stream[i];
      int v;
      if (c >= '0' && c <= '9') v = c - '0';
      else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
      else break;
      size = size * 16 + static_cast<size_t>(v);
      ++digits;
    }
    if (digits == 0) {
      error = "no hex digits in chunk size line";
      return false;
    }
    pos = eol + 2;
    if (size == 0) break;  // last-chunk; no trailers expected from us
    if (pos + size + 2 > stream.size()) {
      error = "truncated chunk data";
      return false;
    }
    body.append(stream.substr(pos, size));
    pos += size;
    if (stream.substr(pos, 2) != "\r\n") {
      error = "chunk data not CRLF-terminated";
      return false;
    }
    pos += 2;
  }
  if (stream.substr(pos, 2) != "\r\n") {
    error = "missing trailer terminator";
    return false;
  }
  pos += 2;
  if (pos != stream.size()) {
    error = "trailing bytes after last chunk";
    return false;
  }
  return true;
}

struct DownloadRun {
  std::string received;
};

DownloadRun run_download(uint64_t seed, const FaultPlan& plan,
                         nserver::SendPath send_path, const std::string& wire,
                         size_t sendfile_min_bytes = 256 * 1024) {
  SimEngine engine(seed, plan);
  SCOPED_TRACE("download seed=" + std::to_string(seed));

  test::TempDir dir;
  dir.write_file("a.txt", small_file());
  dir.write_file("b.bin", big_file());
  // Pin the docroot mtimes: the copy/writev/sendfile differential compares
  // whole reply streams, and Last-Modified must not depend on which
  // wall-clock second each run created its files in.
  const auto fixed_mtime = std::chrono::file_clock::from_sys(
      std::chrono::sys_seconds(std::chrono::seconds(784111777)));
  std::filesystem::last_write_time(dir.path() / "a.txt", fixed_mtime);
  std::filesystem::last_write_time(dir.path() / "b.bin", fixed_mtime);

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8090;
  options.send_path = send_path;
  options.sendfile_min_bytes = sendfile_min_bytes;
  // Chunk-frame replies of 64 bytes and up, in 256-byte chunks: a.txt
  // (32 B) stays Content-Length, b.bin (2000 B) goes out in 8 chunks.
  options.body_framing = nserver::BodyFraming::kChunked;
  options.chunked_min_bytes = 64;
  options.reply_chunk_bytes = 256;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  EXPECT_TRUE(started.is_ok()) << started.to_string();
  if (!started.is_ok()) return {};

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  engine.at(milliseconds(2), [client, wire] { client->send(wire); });

  EXPECT_TRUE(engine.run(std::chrono::seconds(120)))
      << "download did not quiesce\n" << engine.trace_text();
  server.stop();
  EXPECT_TRUE(client->peer_closed());
  EXPECT_TRUE(engine.failures().empty());
  return {client->received()};
}

std::string get_b_wire() {
  return "GET /b.bin HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n";
}

class ChunkedDownloadSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(ChunkedDownloadSeedTest, ChunkedReplyCarriesFileBytesIntact) {
  const auto seed = static_cast<uint64_t>(GetParam());
  for (const auto& plan : {FaultPlan::none(), FaultPlan::chaos()}) {
    const DownloadRun run =
        run_download(seed, plan, nserver::SendPath::kWritev, get_b_wire());
    const size_t header_end = run.received.find("\r\n\r\n");
    ASSERT_NE(header_end, std::string::npos) << run.received;
    const std::string head = run.received.substr(0, header_end);
    EXPECT_NE(head.find("Transfer-Encoding: chunked"), std::string::npos)
        << head;
    EXPECT_EQ(head.find("Content-Length"), std::string::npos) << head;
    std::string body;
    std::string error;
    ASSERT_TRUE(dechunk(
        std::string_view(run.received).substr(header_end + 4), body, error))
        << error << "\nreceived:\n" << run.received;
    EXPECT_EQ(body, big_file());
  }
}

TEST_P(ChunkedDownloadSeedTest, SmallFileStaysContentLengthFramed) {
  const auto seed = static_cast<uint64_t>(GetParam());
  const DownloadRun run = run_download(
      seed, FaultPlan::none(), nserver::SendPath::kWritev,
      "GET /a.txt HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n");
  const size_t header_end = run.received.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::string head = run.received.substr(0, header_end);
  EXPECT_EQ(head.find("Transfer-Encoding"), std::string::npos) << head;
  EXPECT_NE(head.find("Content-Length: 32"), std::string::npos) << head;
  EXPECT_EQ(run.received.substr(header_end + 4), small_file());
}

TEST_P(ChunkedDownloadSeedTest, HeadRequestIsNeverChunked) {
  const auto seed = static_cast<uint64_t>(GetParam());
  const DownloadRun run = run_download(
      seed, FaultPlan::none(), nserver::SendPath::kWritev,
      "HEAD /b.bin HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n");
  const size_t header_end = run.received.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::string head = run.received.substr(0, header_end);
  EXPECT_EQ(head.find("Transfer-Encoding"), std::string::npos) << head;
  EXPECT_NE(head.find("Content-Length: 2000"), std::string::npos) << head;
  EXPECT_EQ(run.received.size(), header_end + 4);  // zero body bytes
}

TEST_P(ChunkedDownloadSeedTest, CopyWritevSendfileByteIdentical) {
  // The copy path serializes chunk framing into one string; the writev path
  // gathers owned size lines around zero-copy cache slices; the sendfile
  // path interleaves owned framing with in-kernel file sends.  All three
  // must put the identical byte stream on the wire.
  const auto seed = static_cast<uint64_t>(GetParam());
  const DownloadRun copy =
      run_download(seed, FaultPlan::none(), nserver::SendPath::kCopy,
                   get_b_wire());
  const DownloadRun writev =
      run_download(seed, FaultPlan::none(), nserver::SendPath::kWritev,
                   get_b_wire());
  const DownloadRun sendfile =
      run_download(seed, FaultPlan::none(), nserver::SendPath::kSendfile,
                   get_b_wire(), /*sendfile_min_bytes=*/128);
  ASSERT_FALSE(copy.received.empty());
  EXPECT_EQ(writev.received, copy.received);
  EXPECT_EQ(sendfile.received, copy.received);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkedDownloadSeedTest,
                         ::testing::Range(1, 4), [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---- full-stack parser-hardening regressions --------------------------------

struct FileServerRun {
  std::string received;
  bool peer_closed = false;
};

FileServerRun run_file_server(uint64_t seed,
                              const std::vector<std::string>& sends,
                              int gap_ms = 2) {
  SimEngine engine(seed, FaultPlan::none());
  test::TempDir dir;
  dir.write_file("a.txt", small_file());

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8090;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  EXPECT_TRUE(started.is_ok()) << started.to_string();
  if (!started.is_ok()) return {};

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  int when_ms = 2;
  for (const auto& piece : sends) {
    engine.at(milliseconds(when_ms), [client, piece] { client->send(piece); });
    when_ms += gap_ms;
  }

  EXPECT_TRUE(engine.run(std::chrono::seconds(120)))
      << "run did not quiesce\n" << engine.trace_text();
  server.stop();
  EXPECT_TRUE(engine.failures().empty());
  return {client->received(), client->peer_closed()};
}

size_t count_of(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + 1)) {
    ++count;
  }
  return count;
}

TEST(ExpectContinueTest, InterimContinueEmittedOnceBeforeFinalReply) {
  // Headers arrive first; the body is withheld until the server commits to
  // reading it.  A conforming server answers the Expect with exactly one
  // interim 100 before the final status.  (Regression: the pre-chunked
  // server never emitted 100 Continue at all.)
  const FileServerRun run = run_file_server(
      7001,
      {"POST /a.txt HTTP/1.1\r\nHost: sim\r\nExpect: 100-continue\r\n"
       "Content-Length: 5\r\nConnection: close\r\n\r\n",
       "hello"},
      /*gap_ms=*/5);
  const size_t interim = run.received.find("HTTP/1.1 100 Continue\r\n\r\n");
  ASSERT_NE(interim, std::string::npos)
      << "no interim 100 Continue:\n" << run.received;
  EXPECT_EQ(interim, 0u) << "100 Continue is not the first reply";
  EXPECT_EQ(count_of(run.received, "HTTP/1.1 100 "), 1u)
      << "100 Continue emitted more than once:\n" << run.received;
  // The final reply follows (POST on a file server: 405).
  EXPECT_NE(run.received.find("HTTP/1.1 405", interim),
            std::string::npos)
      << run.received;
}

TEST(ExpectContinueTest, NoContinueWhenBodyArrivesWithHeaders) {
  const std::string body = "hello";
  const FileServerRun run = run_file_server(
      7002,
      {"POST /a.txt HTTP/1.1\r\nHost: sim\r\nExpect: 100-continue\r\n"
       "Content-Length: 5\r\nConnection: close\r\n\r\n" +
       body});
  EXPECT_EQ(count_of(run.received, "HTTP/1.1 100 "), 0u)
      << "needless interim reply:\n" << run.received;
  EXPECT_EQ(run.received.rfind("HTTP/1.1 405", 0), 0u) << run.received;
}

TEST(ExpectContinueTest, UnsupportedExpectationDraws417AndCloses) {
  const FileServerRun run = run_file_server(
      7003, {"POST /a.txt HTTP/1.1\r\nHost: sim\r\nExpect: 200-maybe\r\n"
             "Content-Length: 5\r\n\r\nhello"});
  EXPECT_EQ(run.received.rfind("HTTP/1.1 417", 0), 0u) << run.received;
  EXPECT_EQ(count_of(run.received, "HTTP/1.1 "), 1u);
  EXPECT_TRUE(run.peer_closed);
}

TEST(ObsFoldTest, FoldedHeaderDraws400AndCloses) {
  const FileServerRun run = run_file_server(
      7004, {"GET /a.txt HTTP/1.1\r\nHost: sim\r\nX-Long: first\r\n"
             " folded continuation\r\n\r\n"
             "GET /a.txt HTTP/1.1\r\nHost: sim\r\n\r\n"});
  EXPECT_EQ(run.received.rfind("HTTP/1.1 400", 0), 0u) << run.received;
  // Nothing after the reject is decoded: the pipelined GET dies with the
  // connection.
  EXPECT_EQ(count_of(run.received, "HTTP/1.1 "), 1u) << run.received;
  EXPECT_TRUE(run.peer_closed);
}

}  // namespace
}  // namespace cops::simnet
