// Unit tests for src/common utilities.
#include <gtest/gtest.h>

#include <thread>

#include "common/byte_buffer.hpp"
#include "common/config_file.hpp"
#include "common/histogram.hpp"
#include "common/jain.hpp"
#include "common/mpmc_queue.hpp"
#include "common/quota_priority_queue.hpp"
#include "common/rate_limiter.hpp"
#include "common/source_stats.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "common/zipf.hpp"

namespace cops {
namespace {

// ---------- ByteBuffer -------------------------------------------------------

TEST(ByteBuffer, AppendAndView) {
  ByteBuffer buf;
  EXPECT_TRUE(buf.empty());
  buf.append("hello ");
  buf.append("world");
  EXPECT_EQ(buf.view(), "hello world");
  EXPECT_EQ(buf.readable(), 11u);
}

TEST(ByteBuffer, ConsumeAdvancesReadCursor) {
  ByteBuffer buf{std::string_view("abcdef")};
  buf.consume(3);
  EXPECT_EQ(buf.view(), "def");
  buf.consume(3);
  EXPECT_TRUE(buf.empty());
}

TEST(ByteBuffer, ConsumePastEndClamps) {
  ByteBuffer buf{std::string_view("xy")};
  buf.consume(10);
  EXPECT_TRUE(buf.empty());
}

TEST(ByteBuffer, PrepareCommitPartial) {
  ByteBuffer buf;
  uint8_t* dst = buf.prepare(100);
  std::memcpy(dst, "1234", 4);
  buf.commit(4);
  EXPECT_EQ(buf.view(), "1234");
}

TEST(ByteBuffer, CommitZeroLeavesBufferUnchanged) {
  ByteBuffer buf{std::string_view("keep")};
  buf.prepare(64);
  buf.commit(0);
  EXPECT_EQ(buf.view(), "keep");
}

TEST(ByteBuffer, FindLocatesNeedle) {
  ByteBuffer buf{std::string_view("GET / HTTP/1.1\r\n\r\nrest")};
  EXPECT_EQ(buf.find("\r\n\r\n"), 14u);
  EXPECT_EQ(buf.find("zzz"), std::string_view::npos);
}

TEST(ByteBuffer, FindAfterConsumeIsRelative) {
  ByteBuffer buf{std::string_view("aaaaXbbbbX")};
  buf.consume(5);
  EXPECT_EQ(buf.find("X"), 4u);
}

TEST(ByteBuffer, ReadCopiesAndConsumes) {
  ByteBuffer buf{std::string_view("abcdef")};
  char out[4] = {};
  EXPECT_EQ(buf.read(out, 3), 3u);
  EXPECT_EQ(std::string(out, 3), "abc");
  EXPECT_EQ(buf.view(), "def");
}

TEST(ByteBuffer, TakeStringDrains) {
  ByteBuffer buf{std::string_view("payload")};
  EXPECT_EQ(buf.take_string(), "payload");
  EXPECT_TRUE(buf.empty());
}

TEST(ByteBuffer, CompactionPreservesContent) {
  ByteBuffer buf;
  const std::string big(10000, 'a');
  buf.append(big);
  buf.consume(6000);
  buf.append("tail");
  EXPECT_EQ(buf.readable(), 4004u);
  EXPECT_EQ(buf.view().substr(4000), "tail");
}

// ---------- MpmcQueue --------------------------------------------------------

TEST(MpmcQueue, FifoOrder) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
}

TEST(MpmcQueue, TryPopEmptyReturnsNullopt) {
  MpmcQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, BoundedTryPushFailsWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(MpmcQueue, ShutdownDrainsThenReturnsNullopt) {
  MpmcQueue<int> q;
  q.push(42);
  q.shutdown();
  EXPECT_FALSE(q.push(43));
  EXPECT_EQ(*q.pop(), 42);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, ShutdownWakesBlockedConsumer) {
  MpmcQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.shutdown();
  consumer.join();
}

TEST(MpmcQueue, ConcurrentProducersConsumersDeliverAll) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  std::atomic<int> consumed{0};
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto v = q.pop();
        if (!v) return;
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  q.shutdown();
  for (size_t c = kProducers; c < threads.size(); ++c) threads[c].join();
  EXPECT_EQ(consumed.load(), kPerProducer * kProducers);
  EXPECT_EQ(sum.load(),
            static_cast<long>(kProducers) * kPerProducer * (kPerProducer - 1) / 2);
}

// ---------- QuotaPriorityQueue ----------------------------------------------

TEST(QuotaPriorityQueue, HighPriorityFirst) {
  QuotaPriorityQueue<int> q({8, 1});
  q.push(100, 1);
  q.push(1, 0);
  q.push(2, 0);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 100);
}

TEST(QuotaPriorityQueue, QuotaPreventsStarvation) {
  // Quota 2 for level 0, 1 for level 1: out of every 3 dequeues under
  // saturation, one must come from the low-priority level.
  QuotaPriorityQueue<int> q({2, 1});
  for (int i = 0; i < 6; ++i) q.push(i, 0);       // high
  for (int i = 100; i < 103; ++i) q.push(i, 1);   // low
  std::vector<int> order;
  for (int i = 0; i < 9; ++i) order.push_back(*q.pop());
  // Pattern: 2 high, 1 low, repeated.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 100);
  EXPECT_EQ(order[3], 2);
  EXPECT_EQ(order[4], 3);
  EXPECT_EQ(order[5], 101);
}

TEST(QuotaPriorityQueue, PriorityClampedToLastLevel) {
  QuotaPriorityQueue<int> q({1, 1});
  q.push(7, 99);  // clamped to level 1
  EXPECT_EQ(q.level_size(1), 1u);
  EXPECT_EQ(*q.pop(), 7);
}

TEST(QuotaPriorityQueue, ShutdownUnblocksPop) {
  QuotaPriorityQueue<int> q({1});
  std::thread t([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.shutdown();
  t.join();
}

TEST(QuotaPriorityQueue, DrainsAfterQuotaRounds) {
  QuotaPriorityQueue<int> q({1, 1});
  for (int i = 0; i < 50; ++i) q.push(i, i % 2);
  int count = 0;
  while (q.try_pop()) ++count;
  EXPECT_EQ(count, 50);
}

// Property: with quotas {qh, ql} and saturated queues, the long-run ratio of
// dequeues approaches qh:ql.
class QuotaRatioTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QuotaRatioTest, LongRunRatioMatchesQuotas) {
  const auto [qh, ql] = GetParam();
  QuotaPriorityQueue<int> q(
      {static_cast<size_t>(qh), static_cast<size_t>(ql)});
  const int total = 600;
  for (int i = 0; i < total; ++i) q.push(0, 0);
  for (int i = 0; i < total; ++i) q.push(1, 1);
  int high = 0;
  int low = 0;
  // Sample the steady-state mix while both levels stay non-empty.
  for (int i = 0; i < total; ++i) {
    const int level = *q.pop();
    (level == 0 ? high : low) += 1;
  }
  const double expected = static_cast<double>(qh) / (qh + ql);
  const double actual = static_cast<double>(high) / (high + low);
  EXPECT_NEAR(actual, expected, 0.02) << "qh=" << qh << " ql=" << ql;
}

INSTANTIATE_TEST_SUITE_P(Ratios, QuotaRatioTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{4, 1}, std::pair{8, 1},
                                           std::pair{3, 2}));

// ---------- ThreadPool -------------------------------------------------------

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.stop();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ResizeGrows) {
  ThreadPool pool(1);
  pool.resize(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  pool.stop();
}

TEST(ThreadPool, ResizeShrinks) {
  ThreadPool pool(4);
  pool.resize(1);
  // Retirement is cooperative; give workers a moment to observe it.
  for (int i = 0; i < 100 && pool.num_threads() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(pool.num_threads(), 1u);
  // Pool still works after shrinking.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.stop();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SubmitAfterStopFails) {
  ThreadPool pool(1);
  pool.stop();
  EXPECT_FALSE(pool.submit([] {}));
}

// ---------- Histogram --------------------------------------------------------

TEST(Histogram, MeanAndCount) {
  Histogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean_micros(), 200.0);
  EXPECT_EQ(h.max_micros(), 300);
}

TEST(Histogram, QuantileBounds) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(10);
  h.record(100000);
  EXPECT_LE(h.quantile_micros(0.5), 16);
  EXPECT_GE(h.quantile_micros(0.999), 100000 / 2);
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  a.record(10);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_micros(), 20.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_micros(), 0.0);
  EXPECT_EQ(h.quantile_micros(0.99), 0);
}

TEST(Histogram, ConcurrentRecording) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) h.record(i % 1000);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 40000u);
}

// ---------- Jain fairness ----------------------------------------------------

TEST(Jain, EqualAllocationIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<int>{5, 5, 5, 5}), 1.0);
}

TEST(Jain, KOfNServedGivesKOverN) {
  // 2 of 4 clients equally served, 2 starved → 0.5 (paper's k/N property).
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<int>{7, 7, 0, 0}), 0.5);
}

TEST(Jain, AllZeroIsFair) {
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<int>{0, 0}), 1.0);
}

TEST(Jain, SkewReducesIndex) {
  const double skewed = jain_fairness(std::vector<int>{100, 1, 1, 1});
  EXPECT_LT(skewed, 0.4);
  EXPECT_GT(skewed, 0.25);  // floor is 1/N = 0.25
}

// ---------- Zipf -------------------------------------------------------------

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfDistribution z(100, 1.0);
  double total = 0;
  for (size_t i = 0; i < 100; ++i) total += z.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfDistribution z(50, 1.0);
  EXPECT_GT(z.probability(0), z.probability(1));
  EXPECT_GT(z.probability(1), z.probability(10));
}

TEST(Zipf, SampleDeterministicByU) {
  ZipfDistribution z(10, 1.0);
  EXPECT_EQ(z.sample(0.0), 0u);
  EXPECT_EQ(z.sample(0.999999), 9u);
}

TEST(Zipf, EmpiricalFrequencyMatchesTheory) {
  ZipfDistribution z(20, 1.0);
  std::mt19937 rng(1);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[z(rng)]++;
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.probability(0), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[5]) / n, z.probability(5), 0.01);
}

// ---------- RateLimiter ------------------------------------------------------

TEST(RateLimiter, BurstAllowsImmediateAcquire) {
  RateLimiter limiter(1000.0, 100.0);
  EXPECT_TRUE(limiter.try_acquire(100.0));
  EXPECT_FALSE(limiter.try_acquire(50.0));
}

TEST(RateLimiter, RefillsOverTime) {
  RateLimiter limiter(10000.0, 10.0);
  EXPECT_TRUE(limiter.try_acquire(10.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(limiter.try_acquire(10.0));  // ~50 tokens refilled
}

TEST(RateLimiter, DebtDelaysFutureAcquires) {
  RateLimiter limiter(1000.0, 10.0);
  limiter.acquire_debt(1000.0);
  const auto wait = limiter.time_until_available(0.0);
  EXPECT_GT(wait.count(), 0);
}

// ---------- string_util ------------------------------------------------------

TEST(StringUtil, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtil, SplitKeepsEmpties) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtil, SplitTrimmedDropsEmpties) {
  auto parts = split_trimmed(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringUtil, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("a", "ab"));
}

TEST(StringUtil, ParseNonNegative) {
  EXPECT_EQ(parse_non_negative("0"), 0);
  EXPECT_EQ(parse_non_negative("12345"), 12345);
  EXPECT_EQ(parse_non_negative("-1"), -1);
  EXPECT_EQ(parse_non_negative("12x"), -1);
  EXPECT_EQ(parse_non_negative(""), -1);
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(replace_all("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
}

// ---------- ConfigFile -------------------------------------------------------

TEST(ConfigFile, ParsesKeyValues) {
  auto cfg = ConfigFile::parse("# comment\nname = value\nnum=42\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_or("name", ""), "value");
  EXPECT_EQ(*cfg.value().get_int("num"), 42);
}

TEST(ConfigFile, BoolVariants) {
  auto cfg = ConfigFile::parse("a=yes\nb=No\nc=true\nd=0\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_TRUE(*cfg.value().get_bool("a"));
  EXPECT_FALSE(*cfg.value().get_bool("b"));
  EXPECT_TRUE(*cfg.value().get_bool("c"));
  EXPECT_FALSE(*cfg.value().get_bool("d"));
}

TEST(ConfigFile, RejectsMalformedLine) {
  EXPECT_FALSE(ConfigFile::parse("this is not a kv pair\n").is_ok());
}

TEST(ConfigFile, LaterAssignmentWins) {
  auto cfg = ConfigFile::parse("k=1\nk=2\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(*cfg.value().get_int("k"), 2);
}

TEST(ConfigFile, MissingKeyIsNullopt) {
  auto cfg = ConfigFile::parse("k=1\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_FALSE(cfg.value().get("absent").has_value());
  EXPECT_FALSE(cfg.value().get_int("k2").has_value());
}

// ---------- SourceStats ------------------------------------------------------

TEST(SourceStats, CountsClassesMethodsNcss) {
  const char* source = R"cpp(
// a comment that mentions class Fake
/* block comment; with a semicolon */
class Widget {
 public:
  void draw() { count_ = 1; render(); }
 private:
  int count_ = 0;
};
struct Point { int x; int y; };
)cpp";
  const auto stats = analyze_source(source);
  EXPECT_EQ(stats.classes, 2);
  EXPECT_GE(stats.methods, 1);
  EXPECT_GT(stats.ncss, 5);
}

TEST(SourceStats, IgnoresStringLiteralContents) {
  const auto stats = analyze_source(R"cpp(
const char* s = "class NotAClass { void fake() {;;;} }";
)cpp");
  EXPECT_EQ(stats.classes, 0);
  EXPECT_EQ(stats.methods, 0);
}

TEST(SourceStats, ForwardDeclarationNotCounted) {
  const auto stats = analyze_source("class Fwd;\nstruct G;\n");
  EXPECT_EQ(stats.classes, 0);
}

TEST(SourceStats, KeywordsNotMethods) {
  const auto stats = analyze_source(R"cpp(
void f() {
  if (x) { y(); }
  for (int i = 0; i < 3; ++i) { z(); }
  while (cond) { w(); }
}
)cpp");
  EXPECT_EQ(stats.methods, 1);  // only f itself
}

TEST(SourceStats, AccumulateOperator) {
  SourceStats a{1, 2, 3};
  SourceStats b{4, 5, 6};
  a += b;
  EXPECT_EQ(a.classes, 5);
  EXPECT_EQ(a.methods, 7);
  EXPECT_EQ(a.ncss, 9);
}

}  // namespace
}  // namespace cops
