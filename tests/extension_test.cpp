// Extension-point tests: new Event Source decorators (the paper's "there
// should be an effective mechanism for new event sources to be added"), the
// copsgen CLI end-to-end, HTTP auto-index, and FTP rename.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "http/http_server.hpp"
#include "ftp/ftp_server.hpp"
#include "net/event_source.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

// ---- a user-defined Event Source decorator ------------------------------------

// Counts polls and injects a synthetic "heartbeat" ready-event every N
// polls — the kind of application event source (sensor, internal queue,
// simulation clock) the Decorator composition exists for.
class HeartbeatEventSource : public net::EventSourceDecorator {
 public:
  HeartbeatEventSource(std::unique_ptr<net::EventSource> inner, int every,
                       std::function<void()> beat)
      : EventSourceDecorator(std::move(inner)),
        every_(every),
        beat_(std::move(beat)) {}

  Status poll(std::vector<net::ReadyCallback>& out, int timeout_ms) override {
    auto status = inner().poll(out, timeout_ms);
    if (!status.is_ok()) return status;
    if (++polls_ % every_ == 0) out.push_back(beat_);
    return Status::ok();
  }

  [[nodiscard]] int polls() const { return polls_; }

 private:
  int every_;
  std::function<void()> beat_;
  int polls_ = 0;
};

TEST(EventSourceExtension, DecoratorInjectsSyntheticEvents) {
  auto base = std::make_unique<net::SocketEventSource>();
  int beats = 0;
  HeartbeatEventSource source(std::move(base), /*every=*/3,
                              [&beats] { ++beats; });
  std::vector<net::ReadyCallback> ready;
  for (int i = 0; i < 9; ++i) {
    ready.clear();
    ASSERT_TRUE(source.poll(ready, 0).is_ok());
    for (auto& callback : ready) callback();
  }
  EXPECT_EQ(beats, 3);
  EXPECT_EQ(source.polls(), 9);
}

TEST(EventSourceExtension, DecoratorForwardsRegistration) {
  auto base = std::make_unique<net::SocketEventSource>();
  HeartbeatEventSource source(std::move(base), 1000, [] {});
  // Registration calls pass through the decorator to the socket source.
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(0));
  ASSERT_TRUE(listener.is_ok());
  class NopHandler : public net::EventHandler {
    void handle_event(int, uint32_t) override {}
  } handler;
  EXPECT_TRUE(
      source.register_handler(listener.value().fd(), &handler, net::kReadable)
          .is_ok());
  EXPECT_TRUE(source.update_interest(listener.value().fd(), net::kReadable)
                  .is_ok());
  EXPECT_TRUE(source.deregister(listener.value().fd()).is_ok());
}

// ---- copsgen CLI end-to-end ------------------------------------------------------

class CopsgenCliTest : public ::testing::Test {
 protected:
  // The CLI binary lives in the build tree (path baked in at compile time).
  static std::string binary() { return std::string(COPS_BINARY_DIR) + "/tools/copsgen"; }

  static int run(const std::string& args, const std::string& out_file) {
    const std::string cmd = binary() + " " + args + " > " + out_file + " 2>&1";
    return std::system(cmd.c_str());
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
};

TEST_F(CopsgenCliTest, ListOptionsPrintsAllTwelve) {
  test::TempDir dir;
  const auto out = dir.str() + "/out.txt";
  ASSERT_EQ(run("--list-options", out), 0);
  const auto text = slurp(out);
  for (const char* key :
       {"dispatcher_threads", "separate_pool", "encode_decode", "completion",
        "thread_alloc", "file_cache", "shutdown_long_idle",
        "event_scheduling", "overload_control", "mode", "profiling",
        "logging"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

TEST_F(CopsgenCliTest, GeneratesFromOptionsFile) {
  test::TempDir dir;
  std::ofstream options(dir.str() + "/app.options");
  options << "file_cache = hyper-g\nevent_scheduling = yes\nmode = debug\n";
  options.close();
  const auto out = dir.str() + "/out.txt";
  ASSERT_EQ(run("--options " + dir.str() + "/app.options --out " + dir.str() +
                    "/gen --name CliApp",
                out), 0)
      << slurp(out);
  const auto traits = slurp(dir.str() + "/gen/traits.hpp");
  EXPECT_NE(traits.find("kEventScheduling = true"), std::string::npos);
  EXPECT_NE(traits.find("kDebugMode = true"), std::string::npos);
  EXPECT_NE(traits.find("CliApp"), std::string::npos);
  // hyper-g selects the cache config unit.
  EXPECT_NE(slurp(dir.str() + "/gen/cache_config.hpp").find("hyper-g"),
            std::string::npos);
}

TEST_F(CopsgenCliTest, RejectsIllegalOptionValue) {
  test::TempDir dir;
  std::ofstream options(dir.str() + "/bad.options");
  options << "file_cache = magic\n";
  options.close();
  const auto out = dir.str() + "/out.txt";
  EXPECT_NE(run("--options " + dir.str() + "/bad.options --out " + dir.str() +
                    "/gen",
                out), 0);
  EXPECT_NE(slurp(out).find("illegal value"), std::string::npos);
}

TEST_F(CopsgenCliTest, PresetGeneratesFtpScaffold) {
  test::TempDir dir;
  const auto out = dir.str() + "/out.txt";
  ASSERT_EQ(run("--preset cops-ftp --out " + dir.str() + "/gen", out), 0);
  // Dynamic allocation ⇒ controller config exists; sync ⇒ no completion cfg.
  EXPECT_TRUE(std::ifstream(dir.str() + "/gen/controller_config.hpp").good());
  EXPECT_FALSE(std::ifstream(dir.str() + "/gen/completion_config.hpp").good());
}

// ---- HTTP auto-index ----------------------------------------------------------

TEST(AutoIndex, ListsDirectoryAndRedirects) {
  test::TempDir docs;
  docs.write_file("photos/a.jpg", "jpegbytes");
  docs.write_file("photos/b.jpg", "jpegbytes");
  http::HttpServerConfig config;
  config.doc_root = docs.str();
  config.auto_index = true;
  http::CopsHttpServer server(http::CopsHttpServer::default_options(),
                              config);
  ASSERT_TRUE(server.start().is_ok());

  // Slash-less directory path redirects.
  const auto redirect = test::http_get(server.port(), "/photos");
  EXPECT_NE(redirect.find("301 Moved Permanently"), std::string::npos);
  EXPECT_NE(redirect.find("Location: /photos/"), std::string::npos);

  // With the slash: generated listing.
  const auto listing = test::http_get(server.port(), "/photos/");
  EXPECT_NE(listing.find("200 OK"), std::string::npos);
  EXPECT_NE(listing.find("a.jpg"), std::string::npos);
  EXPECT_NE(listing.find("b.jpg"), std::string::npos);

  server.stop();
}

TEST(AutoIndex, IndexFileStillWins) {
  test::TempDir docs;
  docs.write_file("d/index.html", "real-index");
  docs.write_file("d/other.txt", "x");
  http::HttpServerConfig config;
  config.doc_root = docs.str();
  config.auto_index = true;
  http::CopsHttpServer server(http::CopsHttpServer::default_options(),
                              config);
  ASSERT_TRUE(server.start().is_ok());
  const auto response = test::http_get(server.port(), "/d/");
  EXPECT_NE(response.find("real-index"), std::string::npos);
  EXPECT_EQ(response.find("other.txt"), std::string::npos);
  server.stop();
}

TEST(AutoIndex, DisabledByDefault) {
  test::TempDir docs;
  docs.write_file("d/file.txt", "x");
  http::HttpServerConfig config;
  config.doc_root = docs.str();
  http::CopsHttpServer server(http::CopsHttpServer::default_options(),
                              config);
  ASSERT_TRUE(server.start().is_ok());
  const auto response = test::http_get(server.port(), "/d/");
  EXPECT_NE(response.find("404"), std::string::npos);
  server.stop();
}

// ---- FTP rename -----------------------------------------------------------------

TEST(FtpRename, RnfrRntoMovesFile) {
  test::TempDir root;
  root.write_file("old.txt", "contents");
  auto users = std::make_shared<ftp::UserDb>();
  users->add_user("rw", "pw", /*write_allowed=*/true);
  ftp::FtpServerConfig config;
  config.root = root.str();
  ftp::CopsFtpServer server(ftp::CopsFtpServer::default_options(), config,
                            users);
  ASSERT_TRUE(server.start().is_ok());

  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  client.read_until("220 ");
  client.send_all("USER rw\r\n");
  client.read_until("331 ");
  client.send_all("PASS pw\r\n");
  client.read_until("230 ");
  client.send_all("RNFR old.txt\r\n");
  EXPECT_NE(client.read_until("350 ").find("350"), std::string::npos);
  client.send_all("RNTO new.txt\r\n");
  EXPECT_NE(client.read_until("250 ").find("250"), std::string::npos);

  ftp::FsView fs(root.str());
  EXPECT_FALSE(fs.exists("/old.txt"));
  EXPECT_TRUE(fs.exists("/new.txt"));
  server.stop();
}

TEST(FtpRename, RntoWithoutRnfrRejected) {
  test::TempDir root;
  auto users = std::make_shared<ftp::UserDb>();
  users->add_user("rw", "pw", true);
  ftp::FtpServerConfig config;
  config.root = root.str();
  ftp::CopsFtpServer server(ftp::CopsFtpServer::default_options(), config,
                            users);
  ASSERT_TRUE(server.start().is_ok());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  client.read_until("220 ");
  client.send_all("USER rw\r\nPASS pw\r\n");
  client.read_until("230 ");
  client.send_all("RNTO x\r\n");
  EXPECT_NE(client.read_until("503 ").find("503"), std::string::npos);
  server.stop();
}

TEST(FtpRename, RequiresWritePermission) {
  test::TempDir root;
  root.write_file("f", "x");
  ftp::FtpServerConfig config;
  config.root = root.str();
  ftp::CopsFtpServer server(ftp::CopsFtpServer::default_options(), config);
  ASSERT_TRUE(server.start().is_ok());
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  client.read_until("220 ");
  client.send_all("USER anonymous\r\nPASS x\r\n");
  client.read_until("230 ");
  client.send_all("RNFR f\r\n");
  EXPECT_NE(client.read_until("550 ").find("550"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace cops
