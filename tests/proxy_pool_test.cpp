// Lifecycle tests for the proxy's upstream machinery: the passive
// UpstreamPool invariants (cap under burst, LIFO idle reuse, fresh-path
// eviction, drain semantics) in isolation; the shared lb_policy selection
// helpers — including the round-robin modulo guard that is the regression
// fix for the cursor indexing past a shrunk backend set; the LoadBalancer
// shrink scenario that used to hit exactly that; and simnet integration for
// the pieces that only show up end-to-end (waiter wakeup at the connection
// cap, P2C determinism, ring-hash affinity).
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/lb_policy.hpp"
#include "cluster/load_balancer.hpp"
#include "http/http_server.hpp"
#include "proxy/proxy_server.hpp"
#include "proxy/upstream_pool.hpp"
#include "simnet/sim_engine.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/proxy_test_util.hpp"

namespace cops::proxy {
namespace {

using simnet::SimClient;
using simnet::SimEngine;
using test::ScriptedBackend;

// Fake fds for the passive pool tests: far above any real descriptor the
// process owns (close() harmlessly reports EBADF) and far below the sim-fd
// range.
constexpr int kFakeFdBase = 1 << 20;

net::TcpSocket fake_socket(int n) {
  return net::TcpSocket(net::Fd(kFakeFdBase + n));
}

// ---- UpstreamPool: passive invariants ---------------------------------------

TEST(UpstreamPoolTest, CapAdmitsUpToLimitThenParksCallers) {
  UpstreamPool pool(1, {.max_per_backend = 2, .max_idle_per_backend = 2});
  net::TcpSocket out;
  EXPECT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  EXPECT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  EXPECT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kAtCapacity);
  EXPECT_EQ(pool.in_use(0), 2u);
  EXPECT_EQ(pool.miss_total(), 2u);
  EXPECT_EQ(pool.reuse_total(), 0u);
}

TEST(UpstreamPoolTest, IdleReuseIsLifo) {
  UpstreamPool pool(1, {.max_per_backend = 4, .max_idle_per_backend = 4});
  net::TcpSocket out;
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  pool.release(0, fake_socket(1), /*reusable=*/true);
  pool.release(0, fake_socket(2), /*reusable=*/true);
  ASSERT_EQ(pool.idle(0), 2u);

  // Most recently parked comes back first: the hottest keep-alive socket
  // stays in rotation, the coldest ages toward eviction.
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kReused);
  EXPECT_EQ(out.fd(), kFakeFdBase + 2);
  out.close();
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kReused);
  EXPECT_EQ(out.fd(), kFakeFdBase + 1);
  out.close();
  EXPECT_EQ(pool.reuse_total(), 2u);
}

TEST(UpstreamPoolTest, AcquireFreshBypassesIdleAndEvictsOldestAtCap) {
  UpstreamPool pool(1, {.max_per_backend = 2, .max_idle_per_backend = 2});
  net::TcpSocket out;
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  pool.release(0, fake_socket(1), /*reusable=*/true);  // oldest idle
  pool.release(0, fake_socket(2), /*reusable=*/true);

  // The stale-retry path never touches the idle list for reuse — the retry
  // must not land on another socket from the same (possibly stale) era.
  // At the total cap it evicts the OLDEST idle socket to make room.
  EXPECT_EQ(pool.acquire_fresh(0), UpstreamPool::Acquire::kConnect);
  EXPECT_EQ(pool.idle(0), 1u);
  EXPECT_EQ(pool.in_use(0), 1u);
  EXPECT_EQ(pool.stale_retry_total(), 1u);
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kReused);
  EXPECT_EQ(out.fd(), kFakeFdBase + 2) << "evicted the wrong (newest) socket";
  out.close();
}

TEST(UpstreamPoolTest, NonReusableReleaseClosesInsteadOfParking) {
  UpstreamPool pool(1, {.max_per_backend = 2, .max_idle_per_backend = 2});
  net::TcpSocket out;
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  pool.release(0, fake_socket(1), /*reusable=*/false);
  EXPECT_EQ(pool.idle(0), 0u);
  EXPECT_EQ(pool.in_use(0), 0u);
}

TEST(UpstreamPoolTest, IdleCapBoundsParking) {
  UpstreamPool pool(1, {.max_per_backend = 8, .max_idle_per_backend = 1});
  net::TcpSocket out;
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  pool.release(0, fake_socket(1), /*reusable=*/true);
  pool.release(0, fake_socket(2), /*reusable=*/true);  // over the idle cap
  EXPECT_EQ(pool.idle(0), 1u);
}

TEST(UpstreamPoolTest, DrainEmptiesIdleBlocksReparkingKeepsInFlight) {
  UpstreamPool pool(1, {.max_per_backend = 4, .max_idle_per_backend = 4});
  net::TcpSocket out;
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  pool.release(0, fake_socket(1), /*reusable=*/true);
  ASSERT_EQ(pool.idle(0), 1u);
  ASSERT_EQ(pool.in_use(0), 1u);

  pool.drain(0);
  EXPECT_TRUE(pool.draining(0));
  EXPECT_EQ(pool.idle(0), 0u) << "drain must empty the idle side immediately";
  EXPECT_EQ(pool.in_use(0), 1u) << "drain must not touch in-flight streams";

  // A release during the drain closes instead of re-parking.
  pool.release(0, fake_socket(2), /*reusable=*/true);
  EXPECT_EQ(pool.idle(0), 0u);
  EXPECT_EQ(pool.in_use(0), 0u);

  // Undrain restores normal parking.
  pool.drain(0, false);
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  pool.release(0, fake_socket(3), /*reusable=*/true);
  EXPECT_EQ(pool.idle(0), 1u);
  pool.close_all();
}

TEST(UpstreamPoolTest, AbandonFreesTheCapSlot) {
  UpstreamPool pool(1, {.max_per_backend = 1, .max_idle_per_backend = 1});
  net::TcpSocket out;
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
  ASSERT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kAtCapacity);
  pool.abandon(0);  // the admitted connect failed
  EXPECT_EQ(pool.acquire(0, &out), UpstreamPool::Acquire::kConnect);
}

// ---- lb_policy: the selection helpers ---------------------------------------

// Regression for the round-robin shrink bug: the cursor free-runs across
// backend-set changes, so without the modulo guard at pick time a cursor
// advanced against a 3-backend set indexes past the end of a 2-backend set
// (`backends_[cursor % old_count]` after a remove — an out-of-bounds read,
// and with `cursor %= count` only at increment time, a stale cursor value
// still lands outside the shrunk set).  pick_round_robin() reduces against
// the count that is live NOW, so every cursor value is in range.
TEST(LbPolicyTest, RoundRobinModuloGuardSurvivesShrink) {
  uint64_t cursor = 0;
  // Advance as if three backends had been rotating for a while.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(cluster::pick_round_robin(cursor, 3), cursor % 3);
    ++cursor;
  }
  ASSERT_EQ(cursor, 7u);
  // The set shrinks to 2, then to 1; the stale cursor must stay in range.
  for (int i = 0; i < 4; ++i) {
    EXPECT_LT(cluster::pick_round_robin(cursor, 2), 2u);
    ++cursor;
  }
  EXPECT_EQ(cluster::pick_round_robin(cursor, 1), 0u);
  // Huge cursor (years of uptime), any live count.
  EXPECT_LT(cluster::pick_round_robin(0xffffffffffffffffull, 3), 3u);
  // The rotation property is preserved: consecutive cursors cycle.
  EXPECT_EQ(cluster::pick_round_robin(10, 2), 0u);
  EXPECT_EQ(cluster::pick_round_robin(11, 2), 1u);
}

TEST(LbPolicyTest, LeastLoadedTiesBreakLow) {
  EXPECT_EQ(cluster::pick_least_loaded({3, 1, 2}), 1u);
  EXPECT_EQ(cluster::pick_least_loaded({2, 2, 2}), 0u);
  EXPECT_EQ(cluster::pick_least_loaded({5, 0, 0}), 1u);
  EXPECT_EQ(cluster::pick_least_loaded({7}), 0u);
}

TEST(LbPolicyTest, P2CDeterministicPerSeedAndPrefersLessLoaded) {
  std::mt19937_64 rng_a(0x9e3779b9u);
  std::mt19937_64 rng_b(0x9e3779b9u);
  const std::vector<size_t> loads = {4, 0, 9, 2, 7};
  for (int i = 0; i < 64; ++i) {
    const size_t pick_a = cluster::pick_p2c(rng_a, loads);
    const size_t pick_b = cluster::pick_p2c(rng_b, loads);
    EXPECT_EQ(pick_a, pick_b) << "same seed must mean same picks";
    ASSERT_LT(pick_a, loads.size());
  }
  // With exactly two backends both are always drawn, so the less loaded
  // one always wins.
  std::mt19937_64 rng(7);
  const std::vector<size_t> two = {5, 1};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(cluster::pick_p2c(rng, two), 1u);
  std::mt19937_64 rng_one(7);
  EXPECT_EQ(cluster::pick_p2c(rng_one, {42}), 0u);
}

TEST(LbPolicyTest, HashRingAffinityStableWhenSetShrinks) {
  cluster::HashRing four;
  four.build(4);
  cluster::HashRing three;
  three.build(3);
  size_t moved = 0;
  // The varying path segment goes first: FNV-1a hashes of keys differing
  // only in a trailing digit cluster tightly on the ring (the last bytes
  // mostly perturb low bits), which would starve some backends of test
  // coverage without making the ring wrong.
  for (int i = 0; i < 200; ++i) {
    const std::string key = "/" + std::to_string(i) + "/object";
    const size_t before = four.pick(key);
    const size_t after = three.pick(key);
    ASSERT_LT(before, 4u);
    ASSERT_LT(after, 3u);
    if (before < 3) {
      // Vnode points depend only on the backend index, so keys owned by a
      // surviving backend never move when another backend departs.
      EXPECT_EQ(after, before) << key;
    } else {
      ++moved;  // keys owned by the departed backend redistribute
    }
  }
  EXPECT_GT(moved, 0u) << "backend 3 owned nothing — vnode spread broken";

  const auto order = four.pick_order("/1/object");
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), four.pick("/1/object"));
  EXPECT_EQ(std::set<size_t>(order.begin(), order.end()).size(), order.size());
}

TEST(LbPolicyTest, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(cluster::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(cluster::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(cluster::fnv1a64("/a"), cluster::fnv1a64("/b"));
}

// ---- LoadBalancer: the shrink scenario that motivated the guard -------------

TEST(ProxyPoolSimTest, BalancerSurvivesBackendRemovalWithStaleCursor) {
  SimEngine engine(0x5471);
  test::TempDir docs;
  docs.write_file("index.html", "<html>shrink</html>");

  std::vector<std::unique_ptr<http::CopsHttpServer>> backends;
  for (int i = 0; i < 3; ++i) {
    auto options = http::CopsHttpServer::default_options();
    simnet::make_deterministic(options);
    options.listen_port = static_cast<uint16_t>(8101 + i);
    http::HttpServerConfig config;
    config.doc_root = docs.str();
    backends.push_back(std::make_unique<http::CopsHttpServer>(
        std::move(options), config));
    ASSERT_TRUE(backends.back()->start().is_ok());
  }

  cluster::LoadBalancerConfig config;
  config.listen_port = 8100;
  cluster::LoadBalancer balancer(config);
  for (int i = 0; i < 3; ++i) {
    balancer.add_backend(
        net::InetAddress::loopback(static_cast<uint16_t>(8101 + i)));
  }
  ASSERT_TRUE(balancer.start().is_ok());

  const std::string request =
      "GET /index.html HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n";
  std::vector<SimClient*> clients;
  // Wave 1 advances the round-robin cursor well past the post-shrink count.
  for (int i = 0; i < 4; ++i) {
    auto* client = engine.new_client();
    clients.push_back(client);
    engine.at(std::chrono::milliseconds(10 + 5 * i), [client, request] {
      client->connect(8100);
      client->send(request);
    });
  }
  // Decommission two backends; the cursor (now 4) is stale for count=1.
  engine.at(std::chrono::milliseconds(100),
            [&balancer] { balancer.remove_backend(2); });
  engine.at(std::chrono::milliseconds(110),
            [&balancer] { balancer.remove_backend(1); });
  for (int i = 0; i < 3; ++i) {
    auto* client = engine.new_client();
    clients.push_back(client);
    engine.at(std::chrono::milliseconds(150 + 5 * i), [client, request] {
      client->connect(8100);
      client->send(request);
    });
  }
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  for (size_t i = 0; i < clients.size(); ++i) {
    EXPECT_NE(clients[i]->received().find("HTTP/1.1 200 OK"),
              std::string::npos)
        << "client " << i << " got: " << clients[i]->received();
  }
  EXPECT_EQ(balancer.dropped_clients(), 0u);
  const auto stats = balancer.backend_stats();
  ASSERT_EQ(stats.size(), 1u);
  // The surviving backend carried at least the whole post-shrink wave (its
  // wave-1 share depends on the rotation phase, which is an internal).
  EXPECT_GE(stats[0].connections, 3u);

  balancer.stop();
  for (auto& backend : backends) backend->stop();
}

// ---- simnet integration: waiters, P2C, ring hash ----------------------------

TEST(ProxyPoolSimTest, CapParksSecondSessionUntilReleaseThenReuses) {
  SimEngine engine(0xca9);
  const std::string body(2048, 'x');
  // The origin stalls each response mid-body for 200ms, so two back-to-back
  // clients overlap at the proxy while the per-backend cap is 1.
  ScriptedBackend::Options stalling;
  stalling.immediate_bytes = 64;
  stalling.rest_delay = std::chrono::milliseconds(200);
  ScriptedBackend origin(
      8401,
      [&](const ScriptedBackend::Request&) {
        return test::simple_response(body);
      },
      stalling);
  ASSERT_TRUE(origin.ok());

  ProxyConfig config;
  config.listen_port = 8400;
  config.pool_max_per_backend = 1;
  config.pool_max_idle_per_backend = 1;
  config.event_listener = [&engine](const std::string& event) {
    engine.record(event);
  };
  ProxyServer proxy(config);
  proxy.add_backend(net::InetAddress::loopback(8401));
  ASSERT_TRUE(proxy.start().is_ok());

  auto* first = engine.new_client();
  auto* second = engine.new_client();
  const std::string request =
      "GET /f HTTP/1.1\r\nHost: o\r\nConnection: close\r\n\r\n";
  engine.at(std::chrono::milliseconds(5), [&, request] {
    first->connect(8400);
    first->send(request);
  });
  engine.at(std::chrono::milliseconds(20), [&, request] {
    second->connect(8400);
    second->send(request);
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  EXPECT_NE(first->received().find(body), std::string::npos);
  EXPECT_NE(second->received().find(body), std::string::npos);
  // One origin connection served both: the second session parked at the
  // cap, woke on the release, and reused the keep-alive socket.
  EXPECT_EQ(origin.accepted(), 1u);
  EXPECT_EQ(proxy.pool_miss_total(), 1u);
  EXPECT_EQ(proxy.pool_reuse_total(), 1u);
  const auto trace = engine.trace_text();
  EXPECT_NE(trace.find("proxy-pool-wait backend=0"), std::string::npos)
      << trace;
  EXPECT_NE(trace.find("proxy-pool-reuse backend=0"), std::string::npos);
  proxy.stop();
  origin.stop();
}

TEST(ProxyPoolSimTest, RingHashRoutesSameTargetToSameBackend) {
  SimEngine engine(0x4149);
  ScriptedBackend origin_a(8401, [](const ScriptedBackend::Request&) {
    return test::simple_response("from-a");
  });
  ScriptedBackend origin_b(8402, [](const ScriptedBackend::Request&) {
    return test::simple_response("from-b");
  });
  ASSERT_TRUE(origin_a.ok());
  ASSERT_TRUE(origin_b.ok());

  ProxyConfig config;
  config.listen_port = 8400;
  config.policy = cluster::BalancePolicy::kRingHash;
  ProxyServer proxy(config);
  proxy.add_backend(net::InetAddress::loopback(8401));
  proxy.add_backend(net::InetAddress::loopback(8402));
  ASSERT_TRUE(proxy.start().is_ok());

  std::vector<SimClient*> clients;
  for (int i = 0; i < 3; ++i) {
    auto* client = engine.new_client();
    clients.push_back(client);
    engine.at(std::chrono::milliseconds(10 + 20 * i), [client] {
      client->connect(8400);
      client->send(
          "GET /sticky/path HTTP/1.1\r\nHost: o\r\nConnection: close\r\n\r\n");
    });
  }
  ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

  // All three requests for the same target landed on one backend.
  const uint64_t a = origin_a.requests_seen();
  const uint64_t b = origin_b.requests_seen();
  EXPECT_EQ(a + b, 3u);
  EXPECT_TRUE(a == 3 || b == 3) << "affinity split: a=" << a << " b=" << b;
  for (auto* client : clients) {
    EXPECT_NE(client->received().find("HTTP/1.1 200 OK"), std::string::npos);
  }
  proxy.stop();
  origin_a.stop();
  origin_b.stop();
}

TEST(ProxyPoolSimTest, P2CPolicyIsDeterministicPerSeed) {
  auto run_once = [] {
    SimEngine engine(0x2c2c);
    ScriptedBackend origin_a(8401, [](const ScriptedBackend::Request&) {
      return test::simple_response("a");
    });
    ScriptedBackend origin_b(8402, [](const ScriptedBackend::Request&) {
      return test::simple_response("b");
    });
    EXPECT_TRUE(origin_a.ok());
    EXPECT_TRUE(origin_b.ok());

    ProxyConfig config;
    config.listen_port = 8400;
    config.policy = cluster::BalancePolicy::kPowerOfTwoChoices;
    config.seed = 0x1234;
    config.event_listener = [&engine](const std::string& event) {
      engine.record(event);
    };
    ProxyServer proxy(config);
    proxy.add_backend(net::InetAddress::loopback(8401));
    proxy.add_backend(net::InetAddress::loopback(8402));
    EXPECT_TRUE(proxy.start().is_ok());

    std::vector<SimClient*> clients;
    for (int i = 0; i < 6; ++i) {
      auto* client = engine.new_client();
      clients.push_back(client);
      engine.at(std::chrono::milliseconds(10 + 10 * i), [client, i] {
        client->connect(8400);
        client->send("GET /p" + std::to_string(i) +
                     " HTTP/1.1\r\nHost: o\r\nConnection: close\r\n\r\n");
      });
    }
    EXPECT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();
    std::vector<std::string> received;
    for (auto* client : clients) received.push_back(client->received());
    auto trace = engine.trace();
    proxy.stop();
    origin_a.stop();
    origin_b.stop();
    return std::make_pair(std::move(trace), std::move(received));
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

}  // namespace
}  // namespace cops::proxy
