// perf-smoke: the allocation-counting gate behind BENCH_request_path.json.
//
// This TU provides the operator-new interposer (COPS_ALLOC_COUNTER_IMPLEMENT
// — tests only, never linked into the shipped libraries) and replays the
// request-path harness in its quick configuration.  Guards the invariant the
// committed baseline rests on: with buffer_mgmt=pooled, the steady-state
// keep-alive decode loop performs ZERO heap allocations per request, and at
// least 50% fewer allocated bytes than per_request.
#define COPS_ALLOC_COUNTER_IMPLEMENT
#include "bench/alloc_counter.hpp"

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/request_path_harness.hpp"
#include "common/buffer_pool.hpp"
#include "common/byte_buffer.hpp"
#include "http/request_parser.hpp"
#include "net/uring.hpp"
#include "nserver/l1_cache.hpp"

namespace cops::bench {
namespace {

TEST(AllocCountTest, InterposerCountsThisThreadsAllocations) {
  reset_alloc_counters();
  {
    auto* p = new std::string(1024, 'x');  // forces a real heap block
    delete p;
  }
  const AllocCounters counters = alloc_counters();
  EXPECT_GE(counters.count, 1u);
  EXPECT_GE(counters.bytes, sizeof(std::string));
  reset_alloc_counters();
  EXPECT_EQ(alloc_counters().count, 0u);
}

TEST(AllocCountTest, PooledRequestPathIsAllocationFree) {
  const auto config = request_path_quick_config();
  uint64_t checksum_per_request = 0;
  uint64_t checksum_pooled = 0;
  const RequestPathRow per_request =
      run_request_path_mode(config, "per_request", &checksum_per_request);
  const RequestPathRow pooled =
      run_request_path_mode(config, "pooled", &checksum_pooled);

  ASSERT_EQ(per_request.requests, config.measured_requests);
  ASSERT_EQ(pooled.requests, config.measured_requests);
  // Both modes decoded the identical request stream identically.
  EXPECT_EQ(checksum_per_request, checksum_pooled);

  // The interposer is alive: the classical path must allocate.
  ASSERT_GT(per_request.steady_allocs, 0u)
      << "per_request counted zero allocations — interposer inactive";

  // Gate 1: pooled steady state is allocation-free.
  EXPECT_EQ(pooled.steady_allocs, 0u)
      << pooled.steady_allocs << " allocations ("
      << pooled.steady_alloc_bytes << " bytes) leaked into the pooled "
      << "keep-alive decode loop";
  // Gate 2: >= 50% fewer bytes than per_request.
  EXPECT_LE(pooled.alloc_bytes_per_request,
            0.5 * per_request.alloc_bytes_per_request);
}

TEST(AllocCountTest, ChunkedDecodeOnWarmScratchIsAllocationFree) {
  // The chunked decoder must ride the same zero-allocation pooled path as
  // Content-Length bodies: after warm-up the scratch request's body string
  // and header map have the capacity they need, the ChunkedDecoder itself
  // lives on the stack, and the in-buffer is recycled — so a steady-state
  // chunked request decodes without touching the heap.
  http::HttpRequest scratch;
  ByteBuffer in;
  const std::string wire =
      "POST /upload HTTP/1.1\r\n"
      "Host: bench\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "10\r\n0123456789abcdef\r\n"
      "8;ext=tok\r\nGHIJKLMN\r\n"
      "0\r\n"
      "X-Checksum: ignored\r\n"
      "\r\n";
  for (int i = 0; i < 32; ++i) {  // warm every capacity in the cycle
    in.append(wire);
    ASSERT_EQ(http::parse_request(in, scratch),
              http::ParseOutcome::kComplete);
    ASSERT_EQ(scratch.body, "0123456789abcdefGHIJKLMN");
  }
  ASSERT_TRUE(in.empty());

  reset_alloc_counters();
  for (int i = 0; i < 256; ++i) {
    in.append(wire);
    ASSERT_EQ(http::parse_request(in, scratch),
              http::ParseOutcome::kComplete);
  }
  const AllocCounters counters = alloc_counters();
  EXPECT_EQ(counters.count, 0u)
      << counters.count << " allocations (" << counters.bytes
      << " bytes) leaked into the steady-state chunked decode loop";
}

TEST(AllocCountTest, L1CacheHitPathIsAllocationFree) {
  // The scale-out design leans on the per-shard L1 hit being a hash, one
  // atomic<shared_ptr> load, a key compare, and two stamp checks — no heap.
  // A regression here (say, a string copy or a logging allocation sneaking
  // into lookup()) would put an allocator hot spot back on every cached
  // reply of every shard.
  nserver::L1FileCache l1(128, 256 * 1024,
                          std::chrono::milliseconds(60000));
  auto data = std::make_shared<nserver::FileData>();
  data->path = "/hot.txt";
  data->bytes.assign(4096, 'h');
  const std::string key = "/hot.txt";
  constexpr uint64_t kEpoch = 1;
  l1.promote(key, data, kEpoch);
  for (int i = 0; i < 16; ++i) {  // warm-up: the hit path, not first touch
    ASSERT_NE(l1.lookup(key, kEpoch), nullptr);
  }

  reset_alloc_counters();
  size_t served = 0;
  for (int i = 0; i < 4096; ++i) {
    auto hit = l1.lookup(key, kEpoch);
    if (hit != nullptr && hit->bytes.size() == 4096) ++served;
  }
  const AllocCounters counters = alloc_counters();
  EXPECT_EQ(served, 4096u);
  EXPECT_EQ(counters.count, 0u)
      << counters.count << " allocations (" << counters.bytes
      << " bytes) leaked into the L1 hit path";
}

TEST(AllocCountTest, RegisteredBufferRecyclingIsAllocationFree) {
  // The io_uring file engine recycles READ_FIXED slots from a fixed slab
  // set registered once at startup.  Steady-state acquire/release cycling
  // must never touch the heap — otherwise every uring file load would pay
  // an allocator round-trip the registered buffers exist to avoid.
  BufferPool slabs(16 * 1024, 8);
  net::RegisteredBufferPool pool(slabs, 8);
  std::vector<int> held;
  held.reserve(8);
  for (int i = 0; i < 8; ++i) {  // warm-up: first touch maps every slab
    const int slot = pool.acquire();
    ASSERT_GE(slot, 0);
    held.push_back(slot);
  }
  for (int slot : held) pool.release(slot);
  held.clear();

  reset_alloc_counters();
  for (int round = 0; round < 1024; ++round) {
    for (int i = 0; i < 8; ++i) {
      const int slot = pool.acquire();
      ASSERT_GE(slot, 0);
      std::memset(pool.data(slot), round & 0xff, 64);
      held.push_back(slot);
    }
    ASSERT_EQ(pool.acquire(), -1);  // exhaustion reports, not allocates
    for (int slot : held) pool.release(slot);
    held.clear();
  }
  const AllocCounters counters = alloc_counters();
  EXPECT_EQ(counters.count, 0u)
      << counters.count << " allocations (" << counters.bytes
      << " bytes) leaked into the registered-buffer recycle loop";
  EXPECT_GE(pool.reuses(), 8 * 1024u);
}

TEST(AllocCountTest, QuickRunEmitsValidJson) {
  const auto config = request_path_quick_config();
  std::vector<RequestPathRow> rows;
  rows.push_back(run_request_path_mode(config, "per_request"));
  rows.push_back(run_request_path_mode(config, "pooled"));

  const std::string json = request_path_rows_to_json(rows, /*quick=*/true);
  std::string error;
  EXPECT_TRUE(validate_request_path_json(json, &error)) << error;

  const std::string path =
      std::string(COPS_BINARY_DIR) + "/BENCH_request_path_smoke.json";
  std::ofstream out(path, std::ios::trunc);
  out << json;
  ASSERT_TRUE(out.good());
}

TEST(AllocCountTest, ValidatorRejectsMalformedJson) {
  std::string error;
  EXPECT_FALSE(validate_request_path_json("{\"rows\": [", &error));
  EXPECT_FALSE(validate_request_path_json("{}", &error));
  // Drop a required key from an otherwise-valid document.
  std::vector<RequestPathRow> rows(2);
  rows[0].mode = "per_request";
  rows[1].mode = "pooled";
  std::string json = request_path_rows_to_json(rows, true);
  size_t pos = 0;
  size_t hits = 0;
  while ((pos = json.find("\"steady_allocs\"", pos)) != std::string::npos) {
    json.replace(pos, 15, "\"steady_allocz\"");
    ++hits;
  }
  ASSERT_EQ(hits, 2u);  // one per row
  EXPECT_FALSE(validate_request_path_json(json, &error));
}

}  // namespace
}  // namespace cops::bench
