// Unit tests for the N-Server framework components.
#include <gtest/gtest.h>

#include <thread>

#include "nserver/debug_trace.hpp"
#include "nserver/event_processor.hpp"
#include "nserver/file_cache.hpp"
#include "nserver/file_io_service.hpp"
#include "nserver/options.hpp"
#include "nserver/overload_control.hpp"
#include "nserver/processor_controller.hpp"
#include "nserver/profiler.hpp"
#include "tests/test_util.hpp"

namespace cops::nserver {
namespace {

Event make_event(std::function<void()> fn, int priority = 0,
                 EventKind kind = EventKind::kUser) {
  Event e;
  e.kind = kind;
  e.priority = priority;
  e.action = std::move(fn);
  return e;
}

// ---------- EventProcessor ---------------------------------------------------

TEST(EventProcessor, ProcessesSubmittedEvents) {
  EventProcessor processor({.name = "t", .threads = 2});
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    processor.submit(make_event([&] { count.fetch_add(1); }));
  }
  processor.stop();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(processor.processed(), 200u);
}

TEST(EventProcessor, InlineModeRunsOnCaller) {
  EventProcessor processor({.name = "inline", .threads = 0});
  EXPECT_TRUE(processor.inline_mode());
  std::thread::id runner;
  processor.submit(make_event([&] { runner = std::this_thread::get_id(); }));
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(EventProcessor, SubmitAfterStopFails) {
  EventProcessor processor({.name = "t", .threads = 1});
  processor.stop();
  EXPECT_FALSE(processor.submit(make_event([] {})));
}

TEST(EventProcessor, SchedulingModeRespectsPriorities) {
  // Single thread, scheduling on: queue several events while the worker is
  // blocked, then check the high-priority ones run first.
  EventProcessor processor(
      {.name = "sched", .threads = 1, .scheduling = true,
       .priority_quotas = {100, 1}});
  std::mutex gate;
  gate.lock();
  std::vector<int> order;
  std::mutex order_mutex;
  processor.submit(make_event([&] { std::lock_guard hold(gate); }));  // block
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 3; ++i) {
    processor.submit(make_event(
        [&order, &order_mutex, i] {
          std::lock_guard lock(order_mutex);
          order.push_back(100 + i);
        },
        /*priority=*/1));
  }
  for (int i = 0; i < 3; ++i) {
    processor.submit(make_event(
        [&order, &order_mutex, i] {
          std::lock_guard lock(order_mutex);
          order.push_back(i);
        },
        /*priority=*/0));
  }
  gate.unlock();
  processor.stop();
  ASSERT_EQ(order.size(), 6u);
  // With quota 100 for level 0, all three high-priority events precede the
  // low-priority ones.
  EXPECT_LT(order[0], 100);
  EXPECT_LT(order[1], 100);
  EXPECT_LT(order[2], 100);
}

TEST(EventProcessor, ResizeGrowsAndShrinks) {
  EventProcessor processor({.name = "r", .threads = 1});
  processor.resize(4);
  EXPECT_EQ(processor.num_threads(), 4u);
  processor.resize(2);
  for (int i = 0; i < 200 && processor.num_threads() > 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(processor.num_threads(), 2u);
  processor.stop();
}

TEST(EventProcessor, QueueDepthVisible) {
  EventProcessor processor({.name = "d", .threads = 1});
  std::mutex gate;
  gate.lock();
  processor.submit(make_event([&] { std::lock_guard hold(gate); }));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (int i = 0; i < 5; ++i) processor.submit(make_event([] {}));
  EXPECT_GE(processor.queue_depth(), 4u);
  gate.unlock();
  processor.stop();
  EXPECT_EQ(processor.queue_depth(), 0u);
}

// ---------- ProcessorController ----------------------------------------------

TEST(ProcessorController, GrowsUnderBacklog) {
  EventProcessor processor({.name = "c", .threads = 1});
  ProcessorController controller(processor,
                                 {.min_threads = 1,
                                  .max_threads = 4,
                                  .grow_threshold = 2,
                                  .shrink_after_ticks = 3});
  std::mutex gate;
  gate.lock();
  processor.submit(make_event([&] { std::lock_guard hold(gate); }));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (int i = 0; i < 10; ++i) processor.submit(make_event([] {}));
  EXPECT_EQ(controller.tick(), 1);  // grew
  EXPECT_EQ(processor.num_threads(), 2u);
  gate.unlock();
  processor.stop();
}

TEST(ProcessorController, ShrinksAfterIdleTicks) {
  EventProcessor processor({.name = "c2", .threads = 3});
  ProcessorController controller(processor,
                                 {.min_threads = 1,
                                  .max_threads = 4,
                                  .grow_threshold = 2,
                                  .shrink_after_ticks = 2});
  EXPECT_EQ(controller.tick(), 0);   // idle tick 1
  EXPECT_EQ(controller.tick(), -1);  // idle tick 2 → shrink
  EXPECT_EQ(controller.shrink_count(), 1u);
  processor.stop();
}

TEST(ProcessorController, RespectsMinimum) {
  EventProcessor processor({.name = "c3", .threads = 1});
  ProcessorController controller(
      processor,
      {.min_threads = 1, .max_threads = 4, .grow_threshold = 2,
       .shrink_after_ticks = 1});
  EXPECT_EQ(controller.tick(), 0);
  EXPECT_EQ(controller.tick(), 0);  // never below min
  processor.stop();
}

// ---------- FileIoService ----------------------------------------------------

TEST(FileIoService, SyncReadReturnsContents) {
  test::TempDir dir;
  dir.write_file("f.txt", "file-contents");
  auto result = FileIoService::read_file(dir.str() + "/f.txt");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value()->bytes, "file-contents");
  EXPECT_EQ(result.value()->size(), 13u);
  EXPECT_GT(result.value()->mtime_seconds, 0);
}

TEST(FileIoService, SyncReadMissingFileIsNotFound) {
  auto result = FileIoService::read_file("/nonexistent/nope");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FileIoService, SyncReadDirectoryIsError) {
  test::TempDir dir;
  auto result = FileIoService::read_file(dir.str());
  EXPECT_FALSE(result.is_ok());
}

TEST(FileIoService, AsyncReadCompletesThroughExecutor) {
  test::TempDir dir;
  dir.write_file("a.txt", "async");
  FileIoService service(2);
  std::atomic<bool> done{false};
  std::atomic<bool> executor_used{false};
  service.async_read(
      dir.str() + "/a.txt", {1, 1},
      [&](Result<FileDataPtr> result) {
        ASSERT_TRUE(result.is_ok());
        EXPECT_EQ(result.value()->bytes, "async");
        done = true;
      },
      [&](std::function<void()> fn) {
        executor_used = true;
        fn();
      });
  for (int i = 0; i < 400 && !done; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(executor_used.load());
  EXPECT_EQ(service.completed(), 1u);
  service.stop();
}

TEST(FileIoService, ManyConcurrentAsyncReads) {
  test::TempDir dir;
  for (int i = 0; i < 10; ++i) {
    dir.write_file("f" + std::to_string(i), std::string(100, 'a' + i % 26));
  }
  FileIoService service(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    service.async_read(
        dir.str() + "/f" + std::to_string(i % 10), {0, 0},
        [&](Result<FileDataPtr> result) {
          EXPECT_TRUE(result.is_ok());
          done.fetch_add(1);
        },
        [](std::function<void()> fn) { fn(); });
  }
  for (int i = 0; i < 1000 && done < 50; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(done.load(), 50);
  service.stop();
}

// ---------- Options validation ------------------------------------------------

TEST(Options, DefaultsAreValid) {
  ServerOptions options;
  EXPECT_EQ(options.validate(), "");
}

TEST(Options, SchedulingRequiresPool) {
  ServerOptions options;
  options.separate_processor_pool = false;
  options.completion = CompletionMode::kAsynchronous;
  options.event_scheduling = true;
  EXPECT_NE(options.validate(), "");
}

TEST(Options, SyncCompletionRequiresPool) {
  ServerOptions options;
  options.separate_processor_pool = false;
  options.completion = CompletionMode::kSynchronous;
  EXPECT_NE(options.validate(), "");
}

TEST(Options, WatermarksMustBeOrdered) {
  ServerOptions options;
  options.overload_control = true;
  options.queue_high_watermark = 5;
  options.queue_low_watermark = 5;
  EXPECT_NE(options.validate(), "");
}

TEST(Options, DynamicNeedsSaneBounds) {
  ServerOptions options;
  options.thread_allocation = ThreadAllocation::kDynamic;
  options.min_processor_threads = 9;
  options.max_processor_threads = 2;
  EXPECT_NE(options.validate(), "");
}

TEST(Options, ZeroDispatchersInvalid) {
  ServerOptions options;
  options.dispatcher_threads = 0;
  EXPECT_NE(options.validate(), "");
}

TEST(Options, PooledUpstreamNeedsPositiveCap) {
  ServerOptions options;
  options.upstream_mode = UpstreamMode::kPooled;
  options.upstream_pool_cap = 0;
  EXPECT_NE(options.validate(), "");
  options.upstream_pool_cap = 4;
  EXPECT_EQ(options.validate(), "");
}

TEST(Options, EnumToString) {
  EXPECT_STREQ(to_string(CompletionMode::kAsynchronous), "Asynchronous");
  EXPECT_STREQ(to_string(ThreadAllocation::kDynamic), "Dynamic");
  EXPECT_STREQ(to_string(CachePolicyKind::kLruMin), "LRU-MIN");
  EXPECT_STREQ(to_string(ServerMode::kDebug), "Debug");
  EXPECT_STREQ(to_string(UpstreamMode::kPerRequest), "PerRequest");
  EXPECT_STREQ(to_string(UpstreamMode::kPooled), "Pooled");
}

// ---------- OverloadController -------------------------------------------------

TEST(OverloadController, SuspendsAboveHighWatermark) {
  size_t depth = 0;
  OverloadController controller(20, 5);
  controller.watch_queue("q", [&] { return depth; });
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kNoChange);
  depth = 21;
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kSuspend);
  EXPECT_TRUE(controller.overloaded());
}

TEST(OverloadController, ResumesBelowLowWatermark) {
  size_t depth = 25;
  OverloadController controller(20, 5);
  controller.watch_queue("q", [&] { return depth; });
  controller.evaluate();  // suspend
  depth = 10;             // between watermarks: hysteresis holds
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kNoChange);
  depth = 4;
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kResume);
  EXPECT_FALSE(controller.overloaded());
}

TEST(OverloadController, AnyOfMultipleQueuesTrips) {
  size_t cpu = 0;
  size_t disk = 0;
  OverloadController controller(20, 5);
  controller.watch_queue("cpu", [&] { return cpu; });
  controller.watch_queue("disk", [&] { return disk; });
  disk = 30;  // the disk bottleneck alone triggers suspension
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kSuspend);
  disk = 0;
  cpu = 30;  // still overloaded via the other queue
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kNoChange);
  cpu = 0;
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kResume);
  EXPECT_EQ(controller.suspend_count(), 1u);
}

// ---------- Profiler -----------------------------------------------------------

TEST(Profiler, CountersAccumulate) {
  Profiler profiler;
  profiler.count_accept();
  profiler.count_accept();
  profiler.count_bytes_read(100);
  profiler.count_bytes_sent(250);
  profiler.count_request();
  profiler.count_reply();
  auto snap = profiler.snapshot(7, 0.5);
  EXPECT_EQ(snap.connections_accepted, 2u);
  EXPECT_EQ(snap.bytes_read, 100u);
  EXPECT_EQ(snap.bytes_sent, 250u);
  EXPECT_EQ(snap.requests_decoded, 1u);
  EXPECT_EQ(snap.replies_sent, 1u);
  EXPECT_EQ(snap.events_processed, 7u);
  EXPECT_DOUBLE_EQ(snap.cache_hit_rate, 0.5);
}

TEST(Profiler, ResetZeroes) {
  Profiler profiler;
  profiler.count_accept();
  profiler.reset();
  EXPECT_EQ(profiler.snapshot().connections_accepted, 0u);
}

TEST(Profiler, SnapshotToString) {
  Profiler profiler;
  profiler.count_accept();
  const auto text = profiler.snapshot().to_string();
  EXPECT_NE(text.find("accepted=1"), std::string::npos);
}

// ---------- DebugTracer ---------------------------------------------------------

TEST(DebugTracer, RecordsAndDumps) {
  test::TempDir dir;
  const std::string path = dir.str() + "/trace.log";
  {
    DebugTracer tracer(path, 100);
    tracer.record(EventKind::kAccept, 1, "accepted");
    tracer.record(EventKind::kDecode, 1, "queued");
    EXPECT_EQ(tracer.buffered(), 2u);
    tracer.dump();
    EXPECT_EQ(tracer.buffered(), 0u);
  }
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("Accept"), std::string::npos);
  EXPECT_NE(contents.find("Decode"), std::string::npos);
  EXPECT_NE(contents.find("conn=1"), std::string::npos);
}

TEST(DebugTracer, RingDropsOldest) {
  test::TempDir dir;
  DebugTracer tracer(dir.str() + "/t.log", 4);
  for (int i = 0; i < 10; ++i) {
    tracer.record(EventKind::kUser, static_cast<uint64_t>(i), "e");
  }
  EXPECT_EQ(tracer.buffered(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
}

}  // namespace
}  // namespace cops::nserver
