// Differential test: COPS-HTTP vs the Apache-style baseline.
//
// Replays identical, seeded request sets through the full COPS-HTTP stack
// and through src/baseline/threaded_server — two independent
// implementations of the same contract (one event-driven over the
// generated N-Server framework, one thread-per-connection) sharing only
// the protocol library — and diffs what the client observes: status
// lines, body bytes, and connection-close behaviour.  Headers such as
// Date are deliberately not compared.
//
// Sessions mix one-request-at-a-time and fully pipelined delivery, both
// of which every HTTP/1.1 server must handle identically.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/threaded_server.hpp"
#include "http/http_server.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

struct Step {
  std::string request;    // full request text
  bool expect_body;       // false for HEAD responses
};

struct Observed {
  std::vector<std::string> status_lines;
  std::vector<std::string> bodies;
  bool closed = false;  // server closed after the final response
};

// The request vocabulary: every entry must be served identically by both
// implementations (shared protocol library, shared error pages).  COPS-only
// features (If-Modified-Since 304s, auto-index, status endpoint) are
// excluded by construction.
Step make_step(std::mt19937_64& rng, bool last) {
  const std::string tail =
      std::string("Host: diff\r\nConnection: ") +
      (last ? "close" : "keep-alive") + "\r\n\r\n";
  switch (rng() % 9) {
    case 0: return {"GET /a.txt HTTP/1.1\r\n" + tail, true};
    case 1: return {"HEAD /a.txt HTTP/1.1\r\n" + tail, false};
    case 2: return {"GET /missing.txt HTTP/1.1\r\n" + tail, true};
    case 3: return {"GET /empty.txt HTTP/1.1\r\n" + tail, true};
    case 4: return {"GET /big.bin HTTP/1.1\r\n" + tail, true};
    case 5: return {"GET / HTTP/1.1\r\n" + tail, true};          // index file
    case 6: return {"GET /sub/ HTTP/1.1\r\n" + tail, true};     // nested index
    case 7: return {"GET /%61.txt HTTP/1.1\r\n" + tail, true};  // = /a.txt
    default:
      return {"POST /a.txt HTTP/1.1\r\nContent-Length: 3\r\n" + tail + "xyz",
              true};  // 405 from both
  }
}

std::vector<Step> make_session(std::mt19937_64& rng) {
  std::vector<Step> steps;
  const int n = 1 + static_cast<int>(rng() % 6);
  for (int i = 0; i < n; ++i) steps.push_back(make_step(rng, i == n - 1));
  return steps;
}

// Pulls one response off the front of `buffer`, reading more from `client`
// as needed.  Returns false on framing failure (recorded via GTest).
bool read_response(test::BlockingClient& client, std::string& buffer,
                   bool expect_body, std::string& status_line,
                   std::string& body) {
  while (buffer.find("\r\n\r\n") == std::string::npos) {
    const std::string more = client.read_some(1, 3000);
    if (more.empty()) {
      ADD_FAILURE() << "connection ended mid-headers; got: " << buffer;
      return false;
    }
    buffer += more;
  }
  const size_t header_end = buffer.find("\r\n\r\n");
  const std::string head = buffer.substr(0, header_end);
  status_line = head.substr(0, head.find("\r\n"));
  size_t content_length = 0;
  std::string lower;
  for (char c : head) lower += static_cast<char>(::tolower(c));
  if (const size_t cl = lower.find("content-length:");
      cl != std::string::npos) {
    content_length = std::strtoul(lower.c_str() + cl + 15, nullptr, 10);
  }
  buffer.erase(0, header_end + 4);
  if (!expect_body) {
    body.clear();
    return true;
  }
  while (buffer.size() < content_length) {
    const std::string more = client.read_some(1, 3000);
    if (more.empty()) {
      ADD_FAILURE() << "connection ended mid-body ("
                    << buffer.size() << "/" << content_length << " bytes)";
      return false;
    }
    buffer += more;
  }
  body = buffer.substr(0, content_length);
  buffer.erase(0, content_length);
  return true;
}

// Plays a session against `port`.  `pipelined` sends every request up
// front; otherwise requests go one at a time after each response.
Observed play_session(uint16_t port, const std::vector<Step>& steps,
                      bool pipelined) {
  Observed observed;
  test::BlockingClient client;
  if (!client.connect("127.0.0.1", port)) {
    ADD_FAILURE() << "connect failed to port " << port;
    return observed;
  }
  std::string buffer;
  if (pipelined) {
    std::string wire;
    for (const auto& step : steps) wire += step.request;
    if (!client.send_all(wire)) {
      ADD_FAILURE() << "pipelined send failed";
      return observed;
    }
  }
  for (const auto& step : steps) {
    if (!pipelined && !client.send_all(step.request)) {
      ADD_FAILURE() << "send failed";
      return observed;
    }
    std::string status_line;
    std::string body;
    if (!read_response(client, buffer, step.expect_body, status_line, body)) {
      return observed;
    }
    observed.status_lines.push_back(std::move(status_line));
    observed.bodies.push_back(std::move(body));
  }
  // Final request carried Connection: close — probe for EOF.
  observed.closed = buffer.empty() && client.read_some(1, 1500).empty();
  return observed;
}

class DifferentialFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_.write_file("a.txt", "differential alpha\n");
    dir_.write_file("empty.txt", "");
    std::string big;
    for (int i = 0; i < 8000; ++i) big += static_cast<char>('a' + i % 23);
    dir_.write_file("big.bin", big);
    dir_.write_file("index.html", "<html>root index</html>\n");
    dir_.write_file("sub/index.html", "<html>sub index</html>\n");

    http::HttpServerConfig cops_config;
    cops_config.doc_root = dir_.str();
    cops_ = std::make_unique<http::CopsHttpServer>(
        http::CopsHttpServer::default_options(), cops_config);
    auto cops_started = cops_->start();
    ASSERT_TRUE(cops_started.is_ok()) << cops_started.to_string();

    baseline::ThreadedServerConfig base_config;
    base_config.doc_root = dir_.str();
    base_config.worker_pool = 4;
    baseline_ =
        std::make_unique<baseline::ThreadedHttpServer>(base_config);
    auto base_started = baseline_->start();
    ASSERT_TRUE(base_started.is_ok()) << base_started.to_string();
  }

  void TearDown() override {
    if (cops_) cops_->stop();
    if (baseline_) baseline_->stop();
  }

  void diff_session(uint64_t seed, bool pipelined) {
    SCOPED_TRACE("replay seed=" + std::to_string(seed) +
                 (pipelined ? " pipelined" : " sequential"));
    std::mt19937_64 rng(seed);
    const auto steps = make_session(rng);
    const Observed cops = play_session(cops_->port(), steps, pipelined);
    const Observed base = play_session(baseline_->port(), steps, pipelined);
    ASSERT_EQ(cops.status_lines.size(), steps.size());
    ASSERT_EQ(base.status_lines.size(), steps.size());
    for (size_t i = 0; i < steps.size(); ++i) {
      EXPECT_EQ(cops.status_lines[i], base.status_lines[i])
          << "request " << i << ": " << steps[i].request.substr(0, 40);
      EXPECT_EQ(cops.bodies[i], base.bodies[i])
          << "request " << i << ": " << steps[i].request.substr(0, 40);
    }
    EXPECT_EQ(cops.closed, base.closed) << "close behaviour diverged";
    EXPECT_TRUE(cops.closed) << "Connection: close not honoured";
  }

  test::TempDir dir_;
  std::unique_ptr<http::CopsHttpServer> cops_;
  std::unique_ptr<baseline::ThreadedHttpServer> baseline_;
};

class DifferentialTest : public DifferentialFixture,
                         public ::testing::WithParamInterface<int> {
 protected:
  // WithParamInterface needs the fixture split so gtest value-parameterises
  // the seed while reusing one SetUp shape.
};

TEST_P(DifferentialTest, SequentialSessionsMatch) {
  diff_session(static_cast<uint64_t>(GetParam()), /*pipelined=*/false);
}

TEST_P(DifferentialTest, PipelinedSessionsMatch) {
  diff_session(static_cast<uint64_t>(GetParam()) + 100, /*pipelined=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1, 7),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Both implementations must reject a malformed request by closing the
// connection without sending any response bytes.
TEST_F(DifferentialFixture, MalformedRequestClosesWithoutReply) {
  for (const uint16_t port : {cops_->port(), baseline_->port()}) {
    test::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    ASSERT_TRUE(client.send_all("GARBAGE \x01\x02 HTTP/9.9\r\n\r\n"));
    EXPECT_EQ(client.read_some(0, 2000), "") << "port " << port;
  }
}

// An oversized header block must be rejected by both (limit: 16 KiB).
TEST_F(DifferentialFixture, OversizedHeadersRejectedByBoth) {
  std::string huge = "GET /a.txt HTTP/1.1\r\nHost: diff\r\n";
  for (int i = 0; i < 800; ++i) {
    huge += "X-Pad-" + std::to_string(i) + ": aaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  huge += "\r\n";
  for (const uint16_t port : {cops_->port(), baseline_->port()}) {
    test::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    ASSERT_TRUE(client.send_all(huge));
    // Either zero bytes or an error response is acceptable per
    // implementation — but both must close, and neither may serve the file.
    const std::string reply = client.read_some(0, 2000);
    EXPECT_EQ(reply.find("differential alpha"), std::string::npos)
        << "port " << port;
  }
}

}  // namespace
}  // namespace cops
