// Differential test: COPS-HTTP vs the Apache-style baseline.
//
// Replays identical, seeded request sets through the full COPS-HTTP stack
// and through src/baseline/threaded_server — two independent
// implementations of the same contract (one event-driven over the
// generated N-Server framework, one thread-per-connection) sharing only
// the protocol library — and diffs what the client observes: status
// lines, body bytes, and connection-close behaviour.  Headers such as
// Date are deliberately not compared.
//
// Sessions mix one-request-at-a-time and fully pipelined delivery, both
// of which every HTTP/1.1 server must handle identically.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/threaded_server.hpp"
#include "http/http_server.hpp"
#include "http/response_parser.hpp"
#include "proxy/proxy_server.hpp"
#include "simnet/sim_engine.hpp"
#include "tests/proxy_test_util.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

struct Step {
  std::string request;    // full request text
  bool expect_body;       // false for HEAD responses
};

struct Observed {
  std::vector<std::string> status_lines;
  std::vector<std::string> bodies;
  bool closed = false;  // server closed after the final response
};

// The request vocabulary: every entry must be served identically by both
// implementations (shared protocol library, shared error pages).  COPS-only
// features (If-Modified-Since 304s, auto-index, status endpoint) are
// excluded by construction.
Step make_step(std::mt19937_64& rng, bool last) {
  const std::string tail =
      std::string("Host: diff\r\nConnection: ") +
      (last ? "close" : "keep-alive") + "\r\n\r\n";
  switch (rng() % 9) {
    case 0: return {"GET /a.txt HTTP/1.1\r\n" + tail, true};
    case 1: return {"HEAD /a.txt HTTP/1.1\r\n" + tail, false};
    case 2: return {"GET /missing.txt HTTP/1.1\r\n" + tail, true};
    case 3: return {"GET /empty.txt HTTP/1.1\r\n" + tail, true};
    case 4: return {"GET /big.bin HTTP/1.1\r\n" + tail, true};
    case 5: return {"GET / HTTP/1.1\r\n" + tail, true};          // index file
    case 6: return {"GET /sub/ HTTP/1.1\r\n" + tail, true};     // nested index
    case 7: return {"GET /%61.txt HTTP/1.1\r\n" + tail, true};  // = /a.txt
    default:
      return {"POST /a.txt HTTP/1.1\r\nContent-Length: 3\r\n" + tail + "xyz",
              true};  // 405 from both
  }
}

std::vector<Step> make_session(std::mt19937_64& rng) {
  std::vector<Step> steps;
  const int n = 1 + static_cast<int>(rng() % 6);
  for (int i = 0; i < n; ++i) steps.push_back(make_step(rng, i == n - 1));
  return steps;
}

// Pulls one response off the front of `buffer`, reading more from `client`
// as needed.  Returns false on framing failure (recorded via GTest).
bool read_response(test::BlockingClient& client, std::string& buffer,
                   bool expect_body, std::string& status_line,
                   std::string& body) {
  while (buffer.find("\r\n\r\n") == std::string::npos) {
    const std::string more = client.read_some(1, 3000);
    if (more.empty()) {
      ADD_FAILURE() << "connection ended mid-headers; got: " << buffer;
      return false;
    }
    buffer += more;
  }
  const size_t header_end = buffer.find("\r\n\r\n");
  const std::string head = buffer.substr(0, header_end);
  status_line = head.substr(0, head.find("\r\n"));
  size_t content_length = 0;
  std::string lower;
  for (char c : head) lower += static_cast<char>(::tolower(c));
  if (const size_t cl = lower.find("content-length:");
      cl != std::string::npos) {
    content_length = std::strtoul(lower.c_str() + cl + 15, nullptr, 10);
  }
  buffer.erase(0, header_end + 4);
  if (!expect_body) {
    body.clear();
    return true;
  }
  while (buffer.size() < content_length) {
    const std::string more = client.read_some(1, 3000);
    if (more.empty()) {
      ADD_FAILURE() << "connection ended mid-body ("
                    << buffer.size() << "/" << content_length << " bytes)";
      return false;
    }
    buffer += more;
  }
  body = buffer.substr(0, content_length);
  buffer.erase(0, content_length);
  return true;
}

// Plays a session against `port`.  `pipelined` sends every request up
// front; otherwise requests go one at a time after each response.
Observed play_session(uint16_t port, const std::vector<Step>& steps,
                      bool pipelined) {
  Observed observed;
  test::BlockingClient client;
  if (!client.connect("127.0.0.1", port)) {
    ADD_FAILURE() << "connect failed to port " << port;
    return observed;
  }
  std::string buffer;
  if (pipelined) {
    std::string wire;
    for (const auto& step : steps) wire += step.request;
    if (!client.send_all(wire)) {
      ADD_FAILURE() << "pipelined send failed";
      return observed;
    }
  }
  for (const auto& step : steps) {
    if (!pipelined && !client.send_all(step.request)) {
      ADD_FAILURE() << "send failed";
      return observed;
    }
    std::string status_line;
    std::string body;
    if (!read_response(client, buffer, step.expect_body, status_line, body)) {
      return observed;
    }
    observed.status_lines.push_back(std::move(status_line));
    observed.bodies.push_back(std::move(body));
  }
  // Final request carried Connection: close — probe for EOF.
  observed.closed = buffer.empty() && client.read_some(1, 1500).empty();
  return observed;
}

class DifferentialFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_.write_file("a.txt", "differential alpha\n");
    dir_.write_file("empty.txt", "");
    std::string big;
    for (int i = 0; i < 8000; ++i) big += static_cast<char>('a' + i % 23);
    dir_.write_file("big.bin", big);
    dir_.write_file("index.html", "<html>root index</html>\n");
    dir_.write_file("sub/index.html", "<html>sub index</html>\n");

    http::HttpServerConfig cops_config;
    cops_config.doc_root = dir_.str();
    cops_ = std::make_unique<http::CopsHttpServer>(
        http::CopsHttpServer::default_options(), cops_config);
    auto cops_started = cops_->start();
    ASSERT_TRUE(cops_started.is_ok()) << cops_started.to_string();

    baseline::ThreadedServerConfig base_config;
    base_config.doc_root = dir_.str();
    base_config.worker_pool = 4;
    baseline_ =
        std::make_unique<baseline::ThreadedHttpServer>(base_config);
    auto base_started = baseline_->start();
    ASSERT_TRUE(base_started.is_ok()) << base_started.to_string();
  }

  void TearDown() override {
    if (cops_) cops_->stop();
    if (baseline_) baseline_->stop();
  }

  void diff_session(uint64_t seed, bool pipelined) {
    SCOPED_TRACE("replay seed=" + std::to_string(seed) +
                 (pipelined ? " pipelined" : " sequential"));
    std::mt19937_64 rng(seed);
    const auto steps = make_session(rng);
    const Observed cops = play_session(cops_->port(), steps, pipelined);
    const Observed base = play_session(baseline_->port(), steps, pipelined);
    ASSERT_EQ(cops.status_lines.size(), steps.size());
    ASSERT_EQ(base.status_lines.size(), steps.size());
    for (size_t i = 0; i < steps.size(); ++i) {
      EXPECT_EQ(cops.status_lines[i], base.status_lines[i])
          << "request " << i << ": " << steps[i].request.substr(0, 40);
      EXPECT_EQ(cops.bodies[i], base.bodies[i])
          << "request " << i << ": " << steps[i].request.substr(0, 40);
    }
    EXPECT_EQ(cops.closed, base.closed) << "close behaviour diverged";
    EXPECT_TRUE(cops.closed) << "Connection: close not honoured";
  }

  test::TempDir dir_;
  std::unique_ptr<http::CopsHttpServer> cops_;
  std::unique_ptr<baseline::ThreadedHttpServer> baseline_;
};

class DifferentialTest : public DifferentialFixture,
                         public ::testing::WithParamInterface<int> {
 protected:
  // WithParamInterface needs the fixture split so gtest value-parameterises
  // the seed while reusing one SetUp shape.
};

TEST_P(DifferentialTest, SequentialSessionsMatch) {
  diff_session(static_cast<uint64_t>(GetParam()), /*pipelined=*/false);
}

TEST_P(DifferentialTest, PipelinedSessionsMatch) {
  diff_session(static_cast<uint64_t>(GetParam()) + 100, /*pipelined=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1, 7),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Both implementations must reject a malformed request by closing the
// connection without sending any response bytes.
TEST_F(DifferentialFixture, MalformedRequestClosesWithoutReply) {
  for (const uint16_t port : {cops_->port(), baseline_->port()}) {
    test::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    ASSERT_TRUE(client.send_all("GARBAGE \x01\x02 HTTP/9.9\r\n\r\n"));
    EXPECT_EQ(client.read_some(0, 2000), "") << "port " << port;
  }
}

// An oversized header block must be rejected by both (limit: 16 KiB).
TEST_F(DifferentialFixture, OversizedHeadersRejectedByBoth) {
  std::string huge = "GET /a.txt HTTP/1.1\r\nHost: diff\r\n";
  for (int i = 0; i < 800; ++i) {
    huge += "X-Pad-" + std::to_string(i) + ": aaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  huge += "\r\n";
  for (const uint16_t port : {cops_->port(), baseline_->port()}) {
    test::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    ASSERT_TRUE(client.send_all(huge));
    // Either zero bytes or an error response is acceptable per
    // implementation — but both must close, and neither may serve the file.
    const std::string reply = client.read_some(0, 2000);
    EXPECT_EQ(reply.find("differential alpha"), std::string::npos)
        << "port " << port;
  }
}

// ---- proxy differential gate ------------------------------------------------
//
// A reverse proxy must be a transparent pipe: the byte stream a client
// observes through the proxy must match what it would observe talking to
// the backend directly, for every session the differential vocabulary can
// produce — modulo the headers a conforming intermediary owns (Via,
// Connection).  play_session() compares exactly the transparent parts
// (status lines, body bytes, close behaviour), so the existing replay
// machinery doubles as the proxy gate unchanged.

class ProxyDifferentialFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_.write_file("a.txt", "differential alpha\n");
    dir_.write_file("empty.txt", "");
    std::string big;
    for (int i = 0; i < 8000; ++i) big += static_cast<char>('a' + i % 23);
    big_ = big;
    dir_.write_file("big.bin", big);
    dir_.write_file("index.html", "<html>root index</html>\n");
    dir_.write_file("sub/index.html", "<html>sub index</html>\n");

    http::HttpServerConfig backend_config;
    backend_config.doc_root = dir_.str();
    backend_ = std::make_unique<http::CopsHttpServer>(
        http::CopsHttpServer::default_options(), backend_config);
    auto backend_started = backend_->start();
    ASSERT_TRUE(backend_started.is_ok()) << backend_started.to_string();

    proxy::ProxyConfig config;  // listen_port 0 = kernel-assigned; pooled
    proxy_ = std::make_unique<proxy::ProxyServer>(config);
    proxy_->add_backend(net::InetAddress::loopback(backend_->port()));
    auto proxy_started = proxy_->start();
    ASSERT_TRUE(proxy_started.is_ok()) << proxy_started.to_string();
  }

  void TearDown() override {
    if (proxy_) proxy_->stop();
    if (backend_) backend_->stop();
  }

  test::TempDir dir_;
  std::string big_;
  std::unique_ptr<http::CopsHttpServer> backend_;
  std::unique_ptr<proxy::ProxyServer> proxy_;
};

TEST_F(ProxyDifferentialFixture, ProxiedSessionsMatchDirectPerSeed) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (const bool pipelined : {false, true}) {
      SCOPED_TRACE("proxy replay seed=" + std::to_string(seed) +
                   (pipelined ? " pipelined" : " sequential"));
      std::mt19937_64 rng(seed * 7919);
      const auto steps = make_session(rng);
      const Observed direct = play_session(backend_->port(), steps, pipelined);
      const Observed proxied = play_session(proxy_->port(), steps, pipelined);
      ASSERT_EQ(direct.status_lines.size(), steps.size());
      ASSERT_EQ(proxied.status_lines.size(), steps.size());
      for (size_t i = 0; i < steps.size(); ++i) {
        EXPECT_EQ(proxied.status_lines[i], direct.status_lines[i])
            << "request " << i << ": " << steps[i].request.substr(0, 40);
        EXPECT_EQ(proxied.bodies[i], direct.bodies[i])
            << "request " << i << ": " << steps[i].request.substr(0, 40);
      }
      EXPECT_EQ(proxied.closed, direct.closed) << "close behaviour diverged";
      EXPECT_TRUE(proxied.closed) << "Connection: close not honoured";
    }
  }
}

// Reads one chunked response off `client` and de-frames it with the shared
// decoder.  The proxy passes chunked framing through verbatim, so decode
// success here also certifies the relayed framing.
bool read_chunked_response(test::BlockingClient& client,
                           std::string& status_line, std::string& body) {
  std::string buffer;
  while (buffer.find("\r\n\r\n") == std::string::npos) {
    const std::string more = client.read_some(1, 3000);
    if (more.empty()) {
      ADD_FAILURE() << "connection ended mid-headers; got: " << buffer;
      return false;
    }
    buffer += more;
  }
  const size_t head_end = buffer.find("\r\n\r\n");
  const std::string head = buffer.substr(0, head_end);
  status_line = head.substr(0, head.find("\r\n"));
  std::string lower;
  for (char c : head) lower += static_cast<char>(::tolower(c));
  if (lower.find("transfer-encoding: chunked") == std::string::npos) {
    ADD_FAILURE() << "expected chunked framing; head: " << head;
    return false;
  }
  buffer.erase(0, head_end + 4);
  http::ChunkedDecoder decoder;
  http::ParseLimits limits;
  while (true) {
    size_t consumed = 0;
    const auto status = decoder.feed(buffer, &consumed, body, limits);
    buffer.erase(0, consumed);
    if (status == http::ChunkedDecoder::Status::kDone) return true;
    if (status != http::ChunkedDecoder::Status::kNeedMore) {
      ADD_FAILURE() << "bad chunked framing from proxy";
      return false;
    }
    const std::string more = client.read_some(1, 3000);
    if (more.empty()) {
      ADD_FAILURE() << "connection ended mid-chunked-body";
      return false;
    }
    buffer += more;
  }
}

// A chunked-framing backend (nserver option body_framing=chunked) relayed
// through the proxy must deliver the same de-framed body as a direct fetch.
TEST_F(ProxyDifferentialFixture, ChunkedDownloadMatchesDirect) {
  auto options = http::CopsHttpServer::default_options();
  options.body_framing = nserver::BodyFraming::kChunked;
  options.chunked_min_bytes = 256;
  options.reply_chunk_bytes = 1024;
  http::HttpServerConfig backend_config;
  backend_config.doc_root = dir_.str();
  http::CopsHttpServer chunked_backend(options, backend_config);
  ASSERT_TRUE(chunked_backend.start().is_ok());

  proxy::ProxyConfig config;
  proxy::ProxyServer chunked_proxy(config);
  chunked_proxy.add_backend(net::InetAddress::loopback(chunked_backend.port()));
  ASSERT_TRUE(chunked_proxy.start().is_ok());

  const std::string request =
      "GET /big.bin HTTP/1.1\r\nHost: diff\r\nConnection: close\r\n\r\n";
  std::string direct_status, direct_body;
  {
    test::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", chunked_backend.port()));
    ASSERT_TRUE(client.send_all(request));
    ASSERT_TRUE(read_chunked_response(client, direct_status, direct_body));
  }
  std::string proxied_status, proxied_body;
  {
    test::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", chunked_proxy.port()));
    ASSERT_TRUE(client.send_all(request));
    ASSERT_TRUE(read_chunked_response(client, proxied_status, proxied_body));
  }
  EXPECT_EQ(proxied_status, direct_status);
  EXPECT_EQ(proxied_body, direct_body);
  EXPECT_EQ(proxied_body, big_);

  chunked_proxy.stop();
  chunked_backend.stop();
}

// 100 keep-alive requests on one downstream connection must be served off
// one pooled upstream connection: at most the first is a pool miss.
TEST_F(ProxyDifferentialFixture, KeepAliveRunReusesPooledUpstream) {
  test::BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", proxy_->port()));
  std::string buffer;
  for (int i = 0; i < 100; ++i) {
    const bool last = i == 99;
    const std::string request =
        std::string("GET /a.txt HTTP/1.1\r\nHost: diff\r\nConnection: ") +
        (last ? "close" : "keep-alive") + "\r\n\r\n";
    ASSERT_TRUE(client.send_all(request)) << "request " << i;
    std::string status_line;
    std::string body;
    ASSERT_TRUE(read_response(client, buffer, true, status_line, body))
        << "request " << i;
    EXPECT_EQ(status_line, "HTTP/1.1 200 OK") << "request " << i;
    EXPECT_EQ(body, "differential alpha\n") << "request " << i;
  }
  EXPECT_GE(proxy_->pool_reuse_total(), 80u);
  EXPECT_LE(proxy_->pool_miss_total(), 20u);
}

// ---- mid-body upstream death (deterministic, simnet) ------------------------
//
// When the backend dies partway through a response the proxy may fail the
// exchange, but it must never dress a truncated body up as a complete one:
// a Content-Length reply either carries every promised byte or the client
// observes close-before-length; a chunked reply either decodes to the full
// body or ends mid-frame (no forged terminal chunk).  The byte-counted
// kill lands at a different point per threshold, sweeping head/early/late
// truncation.

constexpr uint16_t kKillProxyPort = 8600;
constexpr uint16_t kKillBackendPort = 8601;

TEST(ProxyKillDifferentialTest, MidBodyKillNeverForgesCompleteCLResponse) {
  const std::string body(8000, 'k');
  for (const uint64_t kill_bytes : {200ull, 2000ull, 6000ull}) {
    SCOPED_TRACE("kill_bytes=" + std::to_string(kill_bytes));
    simnet::SimEngine engine(0x6b17ull ^ kill_bytes);
    test::ScriptedBackend origin(
        kKillBackendPort, [&](const test::ScriptedBackend::Request&) {
          return test::simple_response(body);
        });
    ASSERT_TRUE(origin.ok());

    proxy::ProxyConfig config;
    config.listen_port = kKillProxyPort;
    proxy::ProxyServer proxy(config);
    proxy.add_backend(net::InetAddress::loopback(kKillBackendPort));
    ASSERT_TRUE(proxy.start().is_ok());
    engine.kill_port_after_bytes(kKillBackendPort, kill_bytes);

    auto* client = engine.new_client();
    engine.at(std::chrono::milliseconds(5), [client] {
      client->connect(kKillProxyPort);
      client->send(
          "GET /doomed HTTP/1.1\r\nHost: kill\r\nConnection: close\r\n\r\n");
    });
    ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

    const std::string& got = client->received();
    const size_t head_end = got.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      // Died before a relayable head: nothing but a clean close is fine.
      EXPECT_TRUE(client->peer_closed());
    } else if (got.compare(0, 15, "HTTP/1.1 200 OK") == 0) {
      const std::string delivered = got.substr(head_end + 4);
      // Prefix of the true body, and complete only if every byte arrived.
      ASSERT_LE(delivered.size(), body.size());
      EXPECT_EQ(delivered, body.substr(0, delivered.size()));
      if (delivered.size() < body.size()) {
        EXPECT_TRUE(client->peer_closed())
            << "truncated 200 left open — looks complete to the client";
      }
    } else {
      // The failure surfaced before any body byte: a 502 is the contract.
      EXPECT_EQ(got.compare(0, 12, "HTTP/1.1 502"), 0) << got.substr(0, 64);
      EXPECT_TRUE(client->peer_closed());
    }
    proxy.stop();
    origin.stop();
  }
}

TEST(ProxyKillDifferentialTest, MidBodyKillNeverForgesTerminalChunk) {
  const std::string body(8000, 'c');
  for (const uint64_t kill_bytes : {300ull, 4000ull}) {
    SCOPED_TRACE("kill_bytes=" + std::to_string(kill_bytes));
    simnet::SimEngine engine(0xc4u ^ kill_bytes);
    test::ScriptedBackend origin(
        kKillBackendPort, [&](const test::ScriptedBackend::Request&) {
          return test::chunked_response(body, 512);
        });
    ASSERT_TRUE(origin.ok());

    proxy::ProxyConfig config;
    config.listen_port = kKillProxyPort;
    proxy::ProxyServer proxy(config);
    proxy.add_backend(net::InetAddress::loopback(kKillBackendPort));
    ASSERT_TRUE(proxy.start().is_ok());
    engine.kill_port_after_bytes(kKillBackendPort, kill_bytes);

    auto* client = engine.new_client();
    engine.at(std::chrono::milliseconds(5), [client] {
      client->connect(kKillProxyPort);
      client->send(
          "GET /doomed HTTP/1.1\r\nHost: kill\r\nConnection: close\r\n\r\n");
    });
    ASSERT_TRUE(engine.run(std::chrono::seconds(5))) << engine.trace_text();

    const std::string& got = client->received();
    const size_t head_end = got.find("\r\n\r\n");
    if (head_end == std::string::npos ||
        got.compare(0, 15, "HTTP/1.1 200 OK") != 0) {
      EXPECT_TRUE(client->peer_closed());
      continue;
    }
    // Decode whatever framing was relayed: it must either terminate with
    // the full body or be detectably incomplete (kNeedMore + close).
    http::ChunkedDecoder decoder;
    http::ParseLimits limits;
    std::string decoded;
    size_t consumed = 0;
    const auto status = decoder.feed(got.substr(head_end + 4), &consumed,
                                     decoded, limits);
    if (status == http::ChunkedDecoder::Status::kDone) {
      EXPECT_EQ(decoded, body) << "terminal chunk on an incomplete body";
    } else {
      EXPECT_EQ(status, http::ChunkedDecoder::Status::kNeedMore);
      EXPECT_TRUE(client->peer_closed());
      EXPECT_EQ(decoded, body.substr(0, decoded.size()));
    }
    proxy.stop();
    origin.stop();
  }
}

}  // namespace
}  // namespace cops
