// Send-path tests: SendQueue segment mechanics, writev resumption under
// injected partial writes / EINTR / EAGAIN, sendfile partial sends, and the
// differential guarantee that send_path=copy and send_path=writev put
// byte-identical reply streams on the wire for the same seed.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/send_queue.hpp"
#include "http/http_server.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops {
namespace {

std::string iov_to_string(const struct iovec& iov) {
  return std::string(static_cast<const char*>(iov.iov_base), iov.iov_len);
}

TEST(SendQueueTest, FillIovecGathersLeadingMemoryRun) {
  SendQueue queue;
  EncodedReply reply;
  reply.add_owned("HTTP/1.1 200 OK\r\n\r\n");
  auto body = std::make_shared<std::string>("shared-body");
  reply.add_shared(body, body->data(), body->size());
  queue.push(std::move(reply));

  struct iovec iov[4];
  const int count = queue.fill_iovec(iov, 4);
  ASSERT_EQ(count, 2);
  EXPECT_EQ(iov_to_string(iov[0]), "HTTP/1.1 200 OK\r\n\r\n");
  EXPECT_EQ(iov_to_string(iov[1]), "shared-body");
  EXPECT_EQ(queue.readable(), 19u + 11u);
}

TEST(SendQueueTest, ConsumeAdvancesAcrossAndWithinSegments) {
  SendQueue queue;
  queue.push_owned("abcdef");
  queue.push_owned("ghij");
  // Mid-segment consume: 4 bytes leaves "ef" at the front.
  queue.consume(4);
  struct iovec iov[4];
  ASSERT_EQ(queue.fill_iovec(iov, 4), 2);
  EXPECT_EQ(iov_to_string(iov[0]), "ef");
  EXPECT_EQ(iov_to_string(iov[1]), "ghij");
  // Consume across the segment boundary.
  queue.consume(3);
  ASSERT_EQ(queue.fill_iovec(iov, 4), 1);
  EXPECT_EQ(iov_to_string(iov[0]), "hij");
  queue.consume(3);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.readable(), 0u);
}

TEST(SendQueueTest, FileSegmentStopsTheGatherRun) {
  SendQueue queue;
  EncodedReply reply;
  reply.add_owned("headers");
  auto owner = std::make_shared<int>(42);
  reply.add_file(owner, /*fd=*/7, /*offset=*/100, /*len=*/50);
  queue.push(std::move(reply));

  struct iovec iov[4];
  ASSERT_EQ(queue.fill_iovec(iov, 4), 1);  // stops before the file slice
  queue.consume(7);
  EXPECT_TRUE(queue.front_is_file());
  EXPECT_EQ(queue.fill_iovec(iov, 4), 0);
  EXPECT_EQ(queue.front_file_fd(), 7);
  EXPECT_EQ(queue.front_file_offset(), 100u);
  EXPECT_EQ(queue.front_file_remaining(), 50u);
  // Partial sendfile result advances the file offset.
  queue.consume_file(20);
  EXPECT_EQ(queue.front_file_offset(), 120u);
  EXPECT_EQ(queue.front_file_remaining(), 30u);
  queue.consume_file(30);
  EXPECT_TRUE(queue.empty());
}

TEST(SendQueueTest, EmptySegmentsAreDropped) {
  SendQueue queue;
  queue.push_owned("");
  EncodedReply reply;
  reply.add_owned("");
  queue.push(std::move(reply));
  EXPECT_TRUE(queue.empty());
}

TEST(SendQueueTest, CopiedBytesCountsOwnedNotShared) {
  EncodedReply reply;
  reply.add_owned("0123456789");
  auto body = std::make_shared<std::string>(1000, 'b');
  reply.add_shared(body, body->data(), body->size());
  EXPECT_EQ(reply.copied_bytes, 10u);
  EXPECT_EQ(reply.size(), 1010u);
}

}  // namespace
}  // namespace cops

namespace cops::simnet {
namespace {

using std::chrono::milliseconds;

std::string small_file() { return "alpha file: the quick brown fox\n"; }
std::string big_file() {
  std::string out;
  out.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    out += static_cast<char>('A' + (i * 7) % 26);
  }
  return out;
}

// The fixed scenario every send-path run replays: cached GETs, a HEAD, a
// 404, a 304, then a closing GET.
std::string scenario_wire() {
  return "GET /a.txt HTTP/1.1\r\nHost: sim\r\n\r\n"
         "GET /b.bin HTTP/1.1\r\nHost: sim\r\n\r\n"
         "HEAD /b.bin HTTP/1.1\r\nHost: sim\r\n\r\n"
         "GET /missing.txt HTTP/1.1\r\nHost: sim\r\n\r\n"
         "GET /a.txt HTTP/1.1\r\nHost: sim\r\n"
         "If-Modified-Since: Sun, 01 Jan 2040 00:00:00 GMT\r\n\r\n"
         "GET /b.bin HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n";
}

struct WireResponse {
  int status = 0;
  size_t content_length = 0;
  std::string body;
};

// Splits a reply stream into responses.  `body_suppressed` marks responses
// whose headers announce a length but carry no body bytes (HEAD, 304).
bool split_responses(const std::string& stream,
                     const std::vector<bool>& body_suppressed,
                     std::vector<WireResponse>& out, std::string& error) {
  size_t pos = 0;
  for (bool suppressed : body_suppressed) {
    const size_t header_end = stream.find("\r\n\r\n", pos);
    if (header_end == std::string::npos) {
      error = "missing header terminator for response " +
              std::to_string(out.size());
      return false;
    }
    const std::string head = stream.substr(pos, header_end - pos);
    WireResponse resp;
    if (head.rfind("HTTP/1.1 ", 0) != 0) {
      error = "bad status line: " + head.substr(0, 40);
      return false;
    }
    resp.status = std::stoi(head.substr(9, 3));
    if (const size_t cl = head.find("Content-Length: ");
        cl != std::string::npos) {
      resp.content_length = std::stoul(head.substr(cl + 16));
    }
    pos = header_end + 4;
    if (!suppressed) {
      if (pos + resp.content_length > stream.size()) {
        error = "truncated body for response " + std::to_string(out.size());
        return false;
      }
      resp.body = stream.substr(pos, resp.content_length);
      pos += resp.content_length;
    }
    out.push_back(std::move(resp));
  }
  if (pos != stream.size()) {
    error = "trailing bytes after last response: " +
            std::to_string(stream.size() - pos);
    return false;
  }
  return true;
}

struct RunResult {
  std::string received;
  std::vector<std::string> trace;
};

// Replays the fixed scenario through the full COPS-HTTP stack over simnet
// with the given send path and fault plan.
RunResult run_scenario(uint64_t seed, const FaultPlan& plan,
                       nserver::SendPath send_path,
                       size_t sendfile_min_bytes = 256 * 1024) {
  SimEngine engine(seed, plan);
  SCOPED_TRACE("send-path replay seed=" + std::to_string(seed));

  test::TempDir dir;
  dir.write_file("a.txt", small_file());
  dir.write_file("b.bin", big_file());
  // Pin the docroot mtimes: Last-Modified must not depend on which
  // wall-clock second this run happened to create its files in, or the
  // copy-vs-writev differential runs can straddle a second boundary.
  const auto fixed_mtime = std::chrono::file_clock::from_sys(
      std::chrono::sys_seconds(std::chrono::seconds(784111777)));
  std::filesystem::last_write_time(dir.path() / "a.txt", fixed_mtime);
  std::filesystem::last_write_time(dir.path() / "b.bin", fixed_mtime);

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8090;
  options.send_path = send_path;
  options.sendfile_min_bytes = sendfile_min_bytes;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  EXPECT_TRUE(started.is_ok()) << started.to_string();
  if (!started.is_ok()) return {};

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  // Two chunks: the split lands inside the pipelined request run so the
  // decode loop and the send queue overlap.
  const std::string wire = scenario_wire();
  const std::string first = wire.substr(0, wire.size() / 2);
  const std::string second = wire.substr(wire.size() / 2);
  engine.at(milliseconds(2), [client, first] { client->send(first); });
  engine.at(milliseconds(4), [client, second] { client->send(second); });

  EXPECT_TRUE(engine.run(std::chrono::seconds(120)))
      << "scenario did not quiesce\n" << engine.trace_text();
  server.stop();

  EXPECT_TRUE(client->peer_closed());
  EXPECT_TRUE(engine.failures().empty());
  return {client->received(), engine.trace()};
}

// body_suppressed flags for scenario_wire()'s responses.
std::vector<bool> scenario_body_suppressed() {
  // GET a, GET b, HEAD b (suppressed), 404, 304 (suppressed), GET b.
  return {false, false, true, false, true, false};
}

void check_scenario_responses(const RunResult& run) {
  std::vector<WireResponse> responses;
  std::string error;
  ASSERT_TRUE(split_responses(run.received, scenario_body_suppressed(),
                              responses, error))
      << error << "\nreceived:\n" << run.received;
  ASSERT_EQ(responses.size(), 6u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body, small_file());
  EXPECT_EQ(responses[1].status, 200);
  EXPECT_EQ(responses[1].body, big_file());
  // HEAD: full header block with the real Content-Length, zero body bytes —
  // split_responses() above fails on any stray body bytes.
  EXPECT_EQ(responses[2].status, 200);
  EXPECT_EQ(responses[2].content_length, big_file().size());
  EXPECT_EQ(responses[3].status, 404);
  EXPECT_EQ(responses[4].status, 304);
  EXPECT_EQ(responses[5].status, 200);
  EXPECT_EQ(responses[5].body, big_file());
}

bool trace_mentions(const std::vector<std::string>& trace, const char* op) {
  for (const auto& line : trace) {
    if (line.find(op) != std::string::npos) return true;
  }
  return false;
}

// A write-fault storm: nearly every writev is cut short (possibly inside
// any iovec of the gather), preceded by EINTR/EAGAIN noise, over a channel
// whose capacity is far below the 2000-byte body.  The drain loop must
// resume mid-segment and still put every reply on the wire intact.
FaultPlan write_storm() {
  FaultPlan plan;
  plan.write_eintr = 0.30;
  plan.write_eagain = 0.30;
  plan.short_write = 0.90;
  plan.channel_capacity = 61;
  return plan;
}

class SendPathSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(SendPathSeedTest, WritevResumesMidSegmentUnderWriteStorm) {
  const auto seed = static_cast<uint64_t>(GetParam());
  auto run = run_scenario(seed, write_storm(), nserver::SendPath::kWritev);
  check_scenario_responses(run);
  EXPECT_TRUE(trace_mentions(run.trace, "writev"));
}

TEST_P(SendPathSeedTest, SendfileResumesPartialSends) {
  const auto seed = static_cast<uint64_t>(GetParam());
  // Threshold below b.bin's 2000 bytes: the two /b.bin GETs go out via
  // sendfile, in <=97-byte slices under the chaos capacity.
  auto run = run_scenario(seed, FaultPlan::chaos(),
                          nserver::SendPath::kSendfile,
                          /*sendfile_min_bytes=*/256);
  check_scenario_responses(run);
  EXPECT_TRUE(trace_mentions(run.trace, "sendfile"));
}

TEST_P(SendPathSeedTest, CopyAndWritevProduceByteIdenticalStreams) {
  const auto seed = static_cast<uint64_t>(GetParam());
  auto copy = run_scenario(seed, FaultPlan::none(), nserver::SendPath::kCopy);
  auto writev = run_scenario(seed, FaultPlan::none(),
                             nserver::SendPath::kWritev);
  check_scenario_responses(copy);
  ASSERT_EQ(copy.received.size(), writev.received.size())
      << "copy and writev reply streams differ in length";
  ASSERT_EQ(copy.received, writev.received);
}

TEST_P(SendPathSeedTest, CopyAndWritevIdenticalUnderChaosToo) {
  const auto seed = static_cast<uint64_t>(GetParam());
  auto copy = run_scenario(seed, FaultPlan::chaos(), nserver::SendPath::kCopy);
  auto writev = run_scenario(seed, FaultPlan::chaos(),
                             nserver::SendPath::kWritev);
  check_scenario_responses(writev);
  ASSERT_EQ(copy.received, writev.received);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SendPathSeedTest, ::testing::Range(1, 7),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cops::simnet
