// perf-smoke: a ~2s configuration of the send-path benchmark run as a ctest
// (label `perf-smoke`, like `chaos` for the simnet suites).  Guards the two
// invariants the committed BENCH_send_path.json baseline rests on: the
// emitted JSON is well-formed, and the writev path copies materially fewer
// bytes per cached-file reply than the copy path.
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/send_path_harness.hpp"

namespace cops::bench {
namespace {

TEST(PerfSmokeTest, SerializeReservesExactly) {
  std::string error;
  EXPECT_TRUE(serialize_reserves_exactly(&error)) << error;
}

TEST(PerfSmokeTest, SendPathQuickRunEmitsValidJson) {
  auto config =
      send_path_quick_config(std::string(COPS_BINARY_DIR) +
                             "/perf_smoke_docroot");
  ASSERT_TRUE(make_send_path_docroot(config));

  std::vector<SendPathRow> rows;
  for (const char* mode : {"copy", "writev", "sendfile"}) {
    rows.push_back(run_send_path_mode(config, mode));
    ASSERT_GT(rows.back().replies, 0u) << "mode " << mode << " served nothing";
  }

  // The baseline's acceptance margin, at smoke scale: writev must copy at
  // most 80% of copy's bytes per reply (in practice it copies only headers).
  EXPECT_LE(rows[1].bytes_copied_per_reply,
            0.8 * rows[0].bytes_copied_per_reply);
  // sendfile must actually move bytes through sendfile(2).
  EXPECT_GT(rows[2].sendfile_bytes_per_reply, 0.0);

  const std::string json = send_path_rows_to_json(rows, /*quick=*/true);
  std::string error;
  EXPECT_TRUE(validate_send_path_json(json, &error)) << error << "\n" << json;

  // A malformed document must be rejected — the gate the runner relies on.
  EXPECT_FALSE(validate_send_path_json(json.substr(0, json.size() / 2), &error));
  EXPECT_FALSE(validate_send_path_json("{}", &error));

  const std::string out_path =
      std::string(COPS_BINARY_DIR) + "/BENCH_send_path_smoke.json";
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  EXPECT_TRUE(out.good()) << "could not write " << out_path;
}

}  // namespace
}  // namespace cops::bench
