// perf-smoke: a ~2s configuration of the send-path benchmark run as a ctest
// (label `perf-smoke`, like `chaos` for the simnet suites).  Guards the two
// invariants the committed BENCH_send_path.json baseline rests on: the
// emitted JSON is well-formed, and the writev path copies materially fewer
// bytes per cached-file reply than the copy path.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/io_backend_harness.hpp"
#include "bench/overload_harness.hpp"
#include "bench/scaleout_harness.hpp"
#include "bench/send_path_harness.hpp"

namespace cops::bench {
namespace {

TEST(PerfSmokeTest, SerializeReservesExactly) {
  std::string error;
  EXPECT_TRUE(serialize_reserves_exactly(&error)) << error;
}

TEST(PerfSmokeTest, SendPathQuickRunEmitsValidJson) {
  auto config =
      send_path_quick_config(std::string(COPS_BINARY_DIR) +
                             "/perf_smoke_docroot");
  ASSERT_TRUE(make_send_path_docroot(config));

  std::vector<SendPathRow> rows;
  for (const char* mode : {"copy", "writev", "sendfile"}) {
    rows.push_back(run_send_path_mode(config, mode));
    ASSERT_GT(rows.back().replies, 0u) << "mode " << mode << " served nothing";
  }

  // The baseline's acceptance margin, at smoke scale: writev must copy at
  // most 80% of copy's bytes per reply (in practice it copies only headers).
  EXPECT_LE(rows[1].bytes_copied_per_reply,
            0.8 * rows[0].bytes_copied_per_reply);
  // sendfile must actually move bytes through sendfile(2).
  EXPECT_GT(rows[2].sendfile_bytes_per_reply, 0.0);

  const std::string json = send_path_rows_to_json(rows, /*quick=*/true);
  std::string error;
  EXPECT_TRUE(validate_send_path_json(json, &error)) << error << "\n" << json;

  // A malformed document must be rejected — the gate the runner relies on.
  EXPECT_FALSE(validate_send_path_json(json.substr(0, json.size() / 2), &error));
  EXPECT_FALSE(validate_send_path_json("{}", &error));

  const std::string out_path =
      std::string(COPS_BINARY_DIR) + "/BENCH_send_path_smoke.json";
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  EXPECT_TRUE(out.good()) << "could not write " << out_path;
}

// The invariants the committed BENCH_overload.json baseline rests on, at
// smoke scale (two offered loads, short window — all virtual time, so this
// runs in milliseconds of wall clock): the adaptive manager sheds an 8x
// overload and bounds admitted p99, the SPED watermark controller sheds
// nothing, and the emitted JSON is well-formed.
TEST(PerfSmokeTest, OverloadQuickRunEmitsValidJson) {
  const auto config = overload_quick_config(std::string(COPS_BINARY_DIR) +
                                            "/perf_smoke_overload_docroot");
  ASSERT_TRUE(make_overload_docroot(config));

  std::vector<OverloadRow> rows;
  for (const char* mode : {"watermark", "adaptive"}) {
    for (const double offered : config.offered_rps) {
      rows.push_back(run_overload_point(config, mode, offered));
      ASSERT_GT(rows.back().offered, 0u);
      EXPECT_EQ(rows.back().no_response, 0u)
          << mode << "/" << offered << " lost requests";
    }
  }
  ASSERT_EQ(rows.size(), 4u);
  const auto& watermark_peak = rows[1];
  const auto& adaptive_idle = rows[2];
  const auto& adaptive_peak = rows[3];

  EXPECT_EQ(rows[0].shed, 0u);
  EXPECT_EQ(watermark_peak.shed, 0u)
      << "SPED watermark ablation no longer holds";
  EXPECT_EQ(adaptive_idle.shed, 0u) << "adaptive shed below capacity";
  EXPECT_GT(adaptive_peak.shed_rate, 0.10);
  EXPECT_LT(adaptive_peak.p99_admitted_ms,
            watermark_peak.p99_admitted_ms / 2.0);

  const std::string json = overload_rows_to_json(rows, /*quick=*/true);
  std::string error;
  EXPECT_TRUE(validate_overload_json(json, &error)) << error << "\n" << json;
  EXPECT_FALSE(validate_overload_json("{}", &error));

  const std::string out_path =
      std::string(COPS_BINARY_DIR) + "/BENCH_overload_smoke.json";
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  EXPECT_TRUE(out.good()) << "could not write " << out_path;
}

// The invariants behind the committed BENCH_scaleout.json, at smoke scale.
// Unlike the simnet benches these points run in REAL time (the whole point
// is parallel speedup across shard threads), so the scaling gate here is
// deliberately soft — the committed baseline's 1.5x gate lives in
// micro_scaleout, which runs on an otherwise idle machine.
TEST(PerfSmokeTest, ScaleoutQuickRunEmitsValidJson) {
  auto config = scaleout_quick_config(std::string(COPS_BINARY_DIR) +
                                      "/perf_smoke_scaleout_docroot");
  ASSERT_TRUE(make_scaleout_docroot(config));
  const double capacity = scaleout_capacity_rps(config);

  std::vector<ScaleoutRow> rows;
  rows.push_back(run_scaleout_point(config, "reuseport", "saturate", 1,
                                    /*l1=*/true,
                                    config.saturation_factor * capacity));
  rows.push_back(run_scaleout_point(config, "reuseport", "saturate", 2,
                                    /*l1=*/true,
                                    config.saturation_factor * capacity * 2));
  rows.push_back(run_scaleout_point(config, "dispatch", "matched", 2,
                                    /*l1=*/true, config.matched_rps));
  for (const auto& row : rows) {
    ASSERT_GT(row.completed, 0u)
        << row.accept_path << "/" << row.scenario << " served nothing";
  }
  // Sleeping Handle costs serialise on one shard and overlap on two, so
  // even a loaded CI machine must show the capacity step.
  EXPECT_GT(rows[1].achieved_rps, 1.2 * rows[0].achieved_rps);
  // The matched point is uncongested: nothing may be lost.
  EXPECT_EQ(rows[2].errors, 0u);
  EXPECT_EQ(rows[2].completed, rows[2].arrivals);
  // The warmed L1 really serves on the saturation points.
  EXPECT_GT(rows[1].l1_hit_rate, 0.0);

  const std::string json = scaleout_rows_to_json(config, rows, /*quick=*/true);
  std::string error;
  EXPECT_TRUE(validate_scaleout_json(json, &error)) << error << "\n" << json;

  // Malformed documents must be rejected — the gate the runner relies on.
  EXPECT_FALSE(validate_scaleout_json(json.substr(0, json.size() / 2), &error));
  EXPECT_FALSE(validate_scaleout_json("{}", &error));
  std::string mangled = json;
  const size_t at = mangled.find("\"l1_hit_rate\"");
  ASSERT_NE(at, std::string::npos);
  while (mangled.find("\"l1_hit_rate\"") != std::string::npos) {
    mangled.replace(mangled.find("\"l1_hit_rate\""), 13, "\"l1_hit_rute\"");
  }
  EXPECT_FALSE(validate_scaleout_json(mangled, &error));

  const std::string out_path =
      std::string(COPS_BINARY_DIR) + "/BENCH_scaleout_smoke.json";
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  EXPECT_TRUE(out.good()) << "could not write " << out_path;
}

// The invariants behind the committed BENCH_io_backend.json, at smoke
// scale.  Real time again: the subject is the syscall path itself.  On a
// kernel without a usable io_uring the uring row records the graceful
// fallback (effective=false) and still serves — the schema is identical
// either way, so the gate runs everywhere.
TEST(PerfSmokeTest, IoBackendQuickRunEmitsValidJson) {
  auto config = io_backend_quick_config(std::string(COPS_BINARY_DIR) +
                                        "/perf_smoke_io_backend_docroot");
  ASSERT_TRUE(make_io_backend_docroot(config));

  std::vector<IoBackendRow> rows;
  rows.push_back(run_io_backend_point(config, "epoll"));
  rows.push_back(run_io_backend_point(config, "io_uring"));
  const uint64_t expected =
      static_cast<uint64_t>(config.connections) *
      static_cast<uint64_t>(config.warmup_requests +
                            config.requests_per_connection);
  for (const auto& row : rows) {
    EXPECT_EQ(row.errors, 0u) << row.backend;
    EXPECT_EQ(row.requests, expected) << row.backend;
  }
  // The epoll row always runs on epoll; the uring row honours the probe.
  EXPECT_TRUE(rows[0].effective);
  EXPECT_EQ(rows[1].effective, net::uring_available());

  const std::string json =
      io_backend_rows_to_json(config, rows, /*quick=*/true);
  std::string error;
  EXPECT_TRUE(validate_io_backend_json(json, &error)) << error << "\n" << json;

  // Malformed documents must be rejected — the gate the runner relies on.
  EXPECT_FALSE(
      validate_io_backend_json(json.substr(0, json.size() / 2), &error));
  EXPECT_FALSE(validate_io_backend_json("{}", &error));
  std::string mangled = json;
  ASSERT_NE(mangled.find("\"p99_us\""), std::string::npos);
  while (mangled.find("\"p99_us\"") != std::string::npos) {
    mangled.replace(mangled.find("\"p99_us\""), 8, "\"p99_uz\"");
  }
  EXPECT_FALSE(validate_io_backend_json(mangled, &error));

  const std::string out_path =
      std::string(COPS_BINARY_DIR) + "/BENCH_io_backend_smoke.json";
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  EXPECT_TRUE(out.good()) << "could not write " << out_path;
}

// The committed io_backend baseline: full run, both rows present.
TEST(PerfSmokeTest, CommittedIoBackendBaselineMatchesSchema) {
  const std::string path =
      std::string(COPS_SOURCE_DIR) + "/BENCH_io_backend.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed baseline " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  std::string error;
  EXPECT_TRUE(validate_io_backend_json(json, &error)) << error;
  EXPECT_NE(json.find("\"quick\": false"), std::string::npos);
  EXPECT_NE(json.find("\"backend\": \"epoll\""), std::string::npos);
  EXPECT_NE(json.find("\"backend\": \"io_uring\""), std::string::npos);
}

// The committed baseline at the repo root must satisfy the same schema the
// smoke run just validated — a hand-edited or truncated artifact fails CI.
TEST(PerfSmokeTest, CommittedScaleoutBaselineMatchesSchema) {
  const std::string path =
      std::string(COPS_SOURCE_DIR) + "/BENCH_scaleout.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed baseline " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  std::string error;
  EXPECT_TRUE(validate_scaleout_json(json, &error)) << error;
  // The committed artifact is the full run, with the 4-shard headline.
  EXPECT_NE(json.find("\"quick\": false"), std::string::npos);
  EXPECT_NE(json.find("\"shards\": 4"), std::string::npos);
}

}  // namespace
}  // namespace cops::bench
