// Seed-corpus randomized fuzz tests for the two wire-format parsers:
// http::parse_request and ftp::parse_command / parse_port_arg.
//
// Every corpus file under tests/corpus/ is first replayed verbatim, then
// mutated (byte flips, splices, truncations, duplications, random inserts)
// by a deterministic PRNG and re-fed to the parser.  Each mutant is checked
// against the parsers' contracts:
//
//   parse_request   kIncomplete consumes nothing; kComplete consumes at
//                   most what was readable and yields a sanitized path
//                   (absolute, no NUL, no ".." escape); parsing is a pure
//                   function of the input bytes (same bytes => same
//                   outcome, field for field).
//   parse_command   accepted verbs are 1-4 uppercase letters; arguments
//                   come back trimmed; accepted commands survive a
//                   format/re-parse round trip.
//   parse_port_arg  accepted values have in-range octets and a non-zero
//                   port, and round-trip through format_pasv.
//
// Failures print the PRNG seed and the offending input (escaped).  Replay a
// seed with:  ./fuzz_parser_test --seed=<N>
// which runs every fuzz case under that single seed instead of the default
// seed range.  This file has its own main() to support the flag.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/byte_buffer.hpp"
#include "common/string_util.hpp"
#include "ftp/command.hpp"
#include "http/request_parser.hpp"
#include "http/response_parser.hpp"

namespace {

uint64_t g_seed_override = 0;
bool g_has_seed_override = false;

// ---- corpus loading --------------------------------------------------------

std::vector<std::string> load_corpus(const std::string& subdir) {
  const std::filesystem::path dir =
      std::filesystem::path(COPS_SOURCE_DIR) / "tests" / "corpus" / subdir;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());  // deterministic order
  std::vector<std::string> corpus;
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    corpus.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  }
  return corpus;
}

std::string escape(std::string_view bytes, size_t max_len = 200) {
  std::string out;
  for (size_t i = 0; i < bytes.size() && i < max_len; ++i) {
    const auto c = static_cast<unsigned char>(bytes[i]);
    if (c == '\\') {
      out += "\\\\";
    } else if (c >= 0x20 && c < 0x7f) {
      out += static_cast<char>(c);
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\n') {
      out += "\\n\n";
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", c);
      out += buf;
    }
  }
  if (bytes.size() > max_len) out += "...";
  return out;
}

// ---- mutation engine -------------------------------------------------------

std::string mutate(std::mt19937_64& rng,
                   const std::vector<std::string>& corpus) {
  std::string input = corpus[rng() % corpus.size()];
  if (rng() % 4 == 0) {
    // Splice: concatenate a prefix of this entry with a suffix of another.
    const std::string& other = corpus[rng() % corpus.size()];
    const size_t cut_a = input.empty() ? 0 : rng() % (input.size() + 1);
    const size_t cut_b = other.empty() ? 0 : rng() % (other.size() + 1);
    input = input.substr(0, cut_a) + other.substr(cut_b);
  }
  const int mutations = static_cast<int>(rng() % 4);
  for (int m = 0; m < mutations && !input.empty(); ++m) {
    const size_t pos = rng() % input.size();
    switch (rng() % 5) {
      case 0:  // flip a byte
        input[pos] = static_cast<char>(rng() % 256);
        break;
      case 1:  // insert a random byte
        input.insert(input.begin() + static_cast<long>(pos),
                     static_cast<char>(rng() % 256));
        break;
      case 2:  // delete a short range
        input.erase(pos, 1 + rng() % 8);
        break;
      case 3: {  // duplicate a short range (grows headers, repeats tokens)
        const size_t len = std::min<size_t>(1 + rng() % 16, input.size() - pos);
        input.insert(pos, input.substr(pos, len));
        break;
      }
      default:  // truncate
        input.resize(pos);
        break;
    }
  }
  return input;
}

// ---- HTTP invariants -------------------------------------------------------

void check_http_invariants(const std::string& input) {
  SCOPED_TRACE("input:\n" + escape(input));
  cops::ByteBuffer buf{std::string_view(input)};
  cops::http::HttpRequest req;
  const size_t before = buf.readable();
  const auto outcome = cops::http::parse_request(buf, req);
  switch (outcome) {
    case cops::http::ParseOutcome::kIncomplete:
      // Contract: nothing consumed, byte for byte.
      ASSERT_EQ(buf.readable(), before);
      ASSERT_EQ(buf.view(), std::string_view(input));
      break;
    case cops::http::ParseOutcome::kComplete: {
      const size_t consumed = before - buf.readable();
      ASSERT_GT(consumed, 0u);
      ASSERT_LE(consumed, before);
      // Sanitized path: absolute, NUL-free, cannot climb out of the root.
      if (req.target != "*") {
        ASSERT_FALSE(req.path.empty());
        ASSERT_EQ(req.path.front(), '/');
        ASSERT_EQ(req.path.find('\0'), std::string::npos);
        // No segment may be exactly ".." (a *filename* like "..." that
        // merely contains dots is legal).
        for (const auto& seg : cops::split(req.path.substr(1), '/')) {
          ASSERT_NE(seg, "..");
        }
      }
      for (const auto& [name, value] : req.headers) {
        ASSERT_EQ(name, cops::to_lower(name)) << "header not lower-cased";
      }
      // Purity: re-parsing exactly the consumed bytes reproduces the
      // request field for field.
      cops::ByteBuffer again{std::string_view(input).substr(0, consumed)};
      cops::http::HttpRequest req2;
      ASSERT_EQ(cops::http::parse_request(again, req2),
                cops::http::ParseOutcome::kComplete);
      ASSERT_EQ(again.readable(), 0u);
      ASSERT_EQ(req2.method, req.method);
      ASSERT_EQ(req2.target, req.target);
      ASSERT_EQ(req2.path, req.path);
      ASSERT_EQ(req2.query, req.query);
      ASSERT_EQ(req2.body, req.body);
      ASSERT_EQ(req2.headers, req.headers);
      break;
    }
    case cops::http::ParseOutcome::kMalformed:
      break;  // buffer state unspecified; caller closes
    case cops::http::ParseOutcome::kReject:
      FAIL() << "the 3-arg wrapper must fold kReject into kMalformed";
  }
  // Determinism of the outcome itself.
  cops::ByteBuffer fresh{std::string_view(input)};
  cops::http::HttpRequest ignored;
  ASSERT_EQ(cops::http::parse_request(fresh, ignored), outcome);
}

// ---- ChunkedDecoder invariants ---------------------------------------------

// Seed streams for the chunk-decoder fuzz: the body section only (no HTTP
// headers), valid and near-valid.
const std::vector<std::string>& chunked_seed_streams() {
  static const std::vector<std::string> seeds = {
      "5\r\nhello\r\n0\r\n\r\n",
      "10\r\n0123456789abcdef\r\n5;ext=v\r\nhello\r\n0\r\n\r\n",
      "1\r\nx\r\n1\r\ny\r\n1\r\nz\r\n0\r\nX-Trailer: ok\r\n\r\n",
      "A \t\r\n0123456789\r\n0\r\n\r\n",
      "0\r\n\r\n",
      "ffffffffffffffff1\r\n",
      "0\r\nContent-Length: 5\r\n\r\n",
      "3\r\nabcXX",
      "zz\r\n",
  };
  return seeds;
}

// Split invariance: decoding the same byte stream one-shot and under any
// PRNG-chosen segmentation must agree on status and decoded body (and on
// the consumed total when decoding finishes).
void check_chunked_decoder_invariants(const std::string& input,
                                      std::mt19937_64& rng) {
  SCOPED_TRACE("chunk stream:\n" + escape(input));
  using Status = cops::http::ChunkedDecoder::Status;
  const cops::http::ParseLimits limits;

  cops::http::ChunkedDecoder oneshot;
  std::string body_oneshot;
  size_t consumed_oneshot = 0;
  const Status status_oneshot =
      oneshot.feed(input, &consumed_oneshot, body_oneshot, limits);

  cops::http::ChunkedDecoder stepped;
  std::string body_stepped;
  std::string pending;
  size_t offered = 0;
  size_t consumed_stepped = 0;
  Status status_stepped = Status::kNeedMore;
  while (offered < input.size() || pending.empty()) {
    const size_t take =
        std::min<size_t>(1 + rng() % 7, input.size() - offered);
    pending.append(input, offered, take);
    offered += take;
    size_t consumed = 0;
    status_stepped = stepped.feed(pending, &consumed, body_stepped, limits);
    ASSERT_LE(consumed, pending.size());
    consumed_stepped += consumed;
    pending.erase(0, consumed);
    if (status_stepped != Status::kNeedMore || offered >= input.size()) break;
  }
  ASSERT_EQ(status_stepped, status_oneshot) << "segmentation changed outcome";
  if (status_oneshot == Status::kDone ||
      status_oneshot == Status::kNeedMore) {
    ASSERT_EQ(body_stepped, body_oneshot) << "segmentation changed the body";
  }
  if (status_oneshot == Status::kDone) {
    ASSERT_EQ(consumed_stepped, consumed_oneshot)
        << "segmentation changed the consumed total";
    ASSERT_EQ(stepped.decoded_bytes(), oneshot.decoded_bytes());
  }
}

// ---- upstream response-head invariants -------------------------------------
//
// parse_response_head treats the backend as untrusted (a compromised origin
// is a smuggling vector through the proxy), so its contract is checked on
// arbitrary bytes: kNeedMore consumes nothing; kOk consumes exactly the
// head, yields an in-range status and lowercased lookup keys, reproduces
// field-for-field on a re-parse of the consumed bytes, and any shorter
// prefix of that head is kNeedMore (the streaming relay feeds partial
// reads); the outcome is a pure function of the input.  Both head_request
// polarities run — a reply to HEAD must come back bodiless regardless of
// its framing headers.

void check_response_head_invariants(const std::string& input) {
  SCOPED_TRACE("response input:\n" + escape(input));
  using Status = cops::http::HeadParseStatus;
  const cops::http::ParseLimits limits;
  for (const bool head_request : {false, true}) {
    SCOPED_TRACE(head_request ? "reply-to-HEAD" : "reply-to-GET");
    cops::ByteBuffer buf{std::string_view(input)};
    cops::http::MessageHead head;
    const size_t before = buf.readable();
    const auto status =
        cops::http::parse_response_head(buf, head, limits, head_request);
    switch (status) {
      case Status::kNeedMore:
        ASSERT_EQ(buf.readable(), before);
        ASSERT_EQ(buf.view(), std::string_view(input));
        break;
      case Status::kOk: {
        const size_t consumed = before - buf.readable();
        ASSERT_GT(consumed, 0u);
        ASSERT_LE(consumed, before);
        ASSERT_GE(head.status, 100);
        ASSERT_LE(head.status, 999);
        ASSERT_FALSE(head.status_line.empty());
        ASSERT_EQ(head.status_line.find('\r'), std::string::npos);
        ASSERT_EQ(head.status_line.find('\n'), std::string::npos);
        for (const auto& field : head.headers) {
          ASSERT_EQ(field.lname, cops::to_lower(field.name));
        }
        if (head_request) {
          ASSERT_EQ(head.delim, cops::http::BodyDelim::kNone)
              << "HEAD reply must be bodiless";
        }
        // Purity: re-parsing exactly the consumed bytes reproduces the
        // head field for field.
        cops::ByteBuffer again{std::string_view(input).substr(0, consumed)};
        cops::http::MessageHead head2;
        ASSERT_EQ(cops::http::parse_response_head(again, head2, limits,
                                                  head_request),
                  Status::kOk);
        ASSERT_EQ(again.readable(), 0u);
        ASSERT_EQ(head2.status, head.status);
        ASSERT_EQ(head2.status_line, head.status_line);
        ASSERT_EQ(head2.delim, head.delim);
        ASSERT_EQ(head2.content_length, head.content_length);
        ASSERT_EQ(head2.keep_alive, head.keep_alive);
        ASSERT_EQ(head2.headers.size(), head.headers.size());
        for (size_t i = 0; i < head.headers.size(); ++i) {
          ASSERT_EQ(head2.headers[i].name, head.headers[i].name);
          ASSERT_EQ(head2.headers[i].value, head.headers[i].value);
        }
        // Streaming: any strict prefix of the head is kNeedMore and
        // consumes nothing (the relay re-feeds the grown buffer).
        for (const size_t cut : {consumed / 2, consumed - 1}) {
          cops::ByteBuffer partial{std::string_view(input).substr(0, cut)};
          cops::http::MessageHead scratch;
          ASSERT_EQ(cops::http::parse_response_head(partial, scratch, limits,
                                                    head_request),
                    Status::kNeedMore)
              << "prefix of " << cut << "/" << consumed << " bytes";
          ASSERT_EQ(partial.readable(), cut);
        }
        break;
      }
      case Status::kMalformed:
        break;  // buffer state unspecified; the proxy 502s and poisons
    }
    // Determinism of the outcome itself.
    cops::ByteBuffer fresh{std::string_view(input)};
    cops::http::MessageHead ignored;
    ASSERT_EQ(
        cops::http::parse_response_head(fresh, ignored, limits, head_request),
        status);
  }
}

// ChunkPassthrough split invariance: validating the same stream one-shot
// and under any segmentation must agree on the outcome, and on the
// forwarded-byte count when the message completes.  consumed may never
// exceed what was offered (over-consuming would forward bytes of the NEXT
// pipelined response).
void check_chunk_passthrough_invariants(const std::string& input,
                                        std::mt19937_64& rng) {
  SCOPED_TRACE("passthrough stream:\n" + escape(input));
  using Status = cops::http::ChunkPassthrough::Status;

  cops::http::ChunkPassthrough oneshot;
  size_t consumed_oneshot = 0;
  const Status status_oneshot = oneshot.feed(input, &consumed_oneshot);
  ASSERT_LE(consumed_oneshot, input.size());

  cops::http::ChunkPassthrough stepped;
  std::string pending;
  size_t offered = 0;
  size_t consumed_stepped = 0;
  Status status_stepped = Status::kNeedMore;
  while (true) {
    const size_t take =
        std::min<size_t>(1 + rng() % 7, input.size() - offered);
    pending.append(input, offered, take);
    offered += take;
    size_t consumed = 0;
    status_stepped = stepped.feed(pending, &consumed);
    ASSERT_LE(consumed, pending.size());
    consumed_stepped += consumed;
    pending.erase(0, consumed);
    if (status_stepped != Status::kNeedMore || offered >= input.size()) break;
  }
  ASSERT_EQ(status_stepped, status_oneshot) << "segmentation changed outcome";
  if (status_oneshot == Status::kDone) {
    ASSERT_EQ(consumed_stepped, consumed_oneshot)
        << "segmentation changed the forwarded-byte count";
    ASSERT_EQ(stepped.decoded_bytes(), oneshot.decoded_bytes());
  }
}

// ---- FTP invariants --------------------------------------------------------

void check_ftp_invariants(const std::string& line) {
  SCOPED_TRACE("line: " + escape(line));
  const auto cmd = cops::ftp::parse_command(line);
  if (cmd) {
    ASSERT_GE(cmd->verb.size(), 1u);
    ASSERT_LE(cmd->verb.size(), 4u);
    for (char c : cmd->verb) {
      ASSERT_TRUE(c >= 'A' && c <= 'Z') << "verb byte " << int(c);
    }
    // Arguments come back trimmed.
    ASSERT_EQ(cmd->arg, std::string(cops::trim(cmd->arg)));
    // Round trip: re-formatting the accepted command parses to itself.
    const std::string wire =
        cmd->arg.empty() ? cmd->verb : cmd->verb + " " + cmd->arg;
    const auto again = cops::ftp::parse_command(wire);
    ASSERT_TRUE(again.has_value());
    ASSERT_EQ(again->verb, cmd->verb);
    ASSERT_EQ(again->arg, cmd->arg);
  }
  // parse_port_arg on whatever follows the verb (and on the raw line).
  const std::string cmd_arg = cmd ? cmd->arg : std::string();
  for (const std::string_view arg :
       {std::string_view(line), std::string_view(cmd_arg)}) {
    const auto port = cops::ftp::parse_port_arg(arg);
    if (port) {
      ASSERT_NE(port->second, 0);
      ASSERT_EQ(std::count(port->first.begin(), port->first.end(), '.'), 3);
      // Round trip through the PASV formatter (strip its parentheses).
      const auto pasv = cops::ftp::format_pasv(port->first, port->second);
      const auto reparsed =
          cops::ftp::parse_port_arg(std::string_view(pasv).substr(
              1, pasv.size() - 2));
      ASSERT_TRUE(reparsed.has_value());
      ASSERT_EQ(reparsed->first, port->first);
      ASSERT_EQ(reparsed->second, port->second);
    }
  }
}

// ---- corpus replay (every checked-in file, verbatim) -----------------------

TEST(FuzzCorpusTest, HttpCorpusReplaysClean) {
  const auto corpus = load_corpus("http");
  ASSERT_GE(corpus.size(), 10u) << "HTTP corpus went missing";
  for (const auto& input : corpus) check_http_invariants(input);
}

TEST(FuzzCorpusTest, FtpCorpusReplaysClean) {
  const auto corpus = load_corpus("ftp");
  ASSERT_GE(corpus.size(), 5u) << "FTP corpus went missing";
  for (const auto& entry : corpus) {
    size_t pos = 0;
    while (pos <= entry.size()) {
      size_t eol = entry.find('\n', pos);
      if (eol == std::string::npos) eol = entry.size();
      std::string line = entry.substr(pos, eol - pos);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      check_ftp_invariants(line);
      if (eol == entry.size()) break;
      pos = eol + 1;
    }
  }
}

// The same corpus replays through the proxy's upstream decode layer: every
// entry (request-shaped or response-shaped — the resp_*.http seeds) must
// hold the response-head invariants verbatim.
TEST(FuzzCorpusTest, ResponseCorpusReplaysClean) {
  const auto corpus = load_corpus("http");
  ASSERT_GE(corpus.size(), 25u) << "HTTP corpus went missing";
  for (const auto& input : corpus) check_response_head_invariants(input);
}

// Known answers for the resp_*.http seeds: the decode decisions the proxy's
// 502/poisoning behaviour hangs off (see src/proxy/proxy_session.cpp).
TEST(FuzzCorpusTest, ResponseKnownAnswers) {
  using Status = cops::http::HeadParseStatus;
  using Delim = cops::http::BodyDelim;
  const cops::http::ParseLimits limits;
  const auto parse = [&](const char* wire, bool head_request,
                         cops::http::MessageHead& head) {
    cops::ByteBuffer buf{std::string_view(wire)};
    return cops::http::parse_response_head(buf, head, limits, head_request);
  };
  cops::http::MessageHead head;

  // resp_simple: clean Content-Length framing.
  ASSERT_EQ(parse("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n"
                  "Connection: keep-alive\r\n\r\nhello",
                  false, head),
            Status::kOk);
  EXPECT_EQ(head.status, 200);
  EXPECT_EQ(head.delim, Delim::kContentLength);
  EXPECT_EQ(head.content_length, 5u);
  EXPECT_TRUE(head.keep_alive);

  // The identical bytes answering a HEAD request are bodiless.
  ASSERT_EQ(parse("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n"
                  "Connection: keep-alive\r\n\r\n",
                  true, head),
            Status::kOk);
  EXPECT_EQ(head.delim, Delim::kNone);

  // resp_chunked: chunked framing detected; body passes through verbatim.
  ASSERT_EQ(parse("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n",
                  false, head),
            Status::kOk);
  EXPECT_EQ(head.delim, Delim::kChunked);

  // No framing headers at all: body runs to close (HTTP/1.0 shape).
  ASSERT_EQ(parse("HTTP/1.0 200 OK\r\nServer: x\r\n\r\n", false, head),
            Status::kOk);
  EXPECT_EQ(head.delim, Delim::kToClose);
  EXPECT_FALSE(head.keep_alive);

  // resp_bad_status: not an HTTP status line — never guessed at.
  EXPECT_EQ(parse("BANANA/9.9 tasty\r\nServer: x\r\n\r\n", false, head),
            Status::kMalformed);

  // resp_cl_te: the classic smuggling combination is rejected outright.
  EXPECT_EQ(parse("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n"
                  "Transfer-Encoding: chunked\r\n\r\n",
                  false, head),
            Status::kMalformed);

  // Duplicate and non-numeric Content-Length are equally untrustworthy.
  EXPECT_EQ(parse("HTTP/1.1 200 OK\r\nContent-Length: 4\r\n"
                  "Content-Length: 5\r\n\r\n",
                  false, head),
            Status::kMalformed);
  EXPECT_EQ(parse("HTTP/1.1 200 OK\r\nContent-Length: five\r\n\r\n", false,
                  head),
            Status::kMalformed);

  // Obs-fold continuations from a backend are rejected, not unfolded.
  EXPECT_EQ(parse("HTTP/1.1 200 OK\r\nX-A: 1\r\n folded\r\n\r\n", false,
                  head),
            Status::kMalformed);

  // Control bytes in the reason phrase or a header value would be relayed
  // verbatim (response splitting) — rejected, never forwarded.
  EXPECT_EQ(parse("HTTP/1.1 200 O\x14K\r\nServer: x\r\n\r\n", false, head),
            Status::kMalformed);
  EXPECT_EQ(parse("HTTP/1.1 200 OK\r\nX-A: a\nb\r\n\r\n", false, head),
            Status::kMalformed);

  // resp_chunk_oversize: hex chunk-size overflow fires kTooLarge in the
  // pass-through (the framing can't be trusted → 502 + poison).
  {
    cops::http::ChunkPassthrough passthrough;
    size_t consumed = 0;
    EXPECT_EQ(passthrough.feed("ffffffffffffffff1\r\n", &consumed),
              cops::http::ChunkPassthrough::Status::kTooLarge);
  }
  // resp_truncated_trailer: an unterminated trailer is kNeedMore — the
  // relay keeps waiting and the client never sees a forged terminal chunk.
  {
    cops::http::ChunkPassthrough passthrough;
    size_t consumed = 0;
    EXPECT_EQ(passthrough.feed("3\r\nabc\r\n0\r\nX-Trailer: ok", &consumed),
              cops::http::ChunkPassthrough::Status::kNeedMore);
  }
}

// Known-answer regressions for the nastiest corpus entries: these encode
// the *decisions* (reject vs. sanitize) rather than just "does not crash".
TEST(FuzzCorpusTest, HttpKnownAnswers) {
  const auto expect = [](const char* wire, cops::http::ParseOutcome want) {
    cops::ByteBuffer buf{std::string_view(wire)};
    cops::http::HttpRequest req;
    EXPECT_EQ(cops::http::parse_request(buf, req), want) << escape(wire);
    return req;
  };
  using Outcome = cops::http::ParseOutcome;
  // Traversal above the root is malformed, plain or percent-encoded.
  expect("GET /../../etc/passwd HTTP/1.1\r\nHost: s\r\n\r\n",
         Outcome::kMalformed);
  expect("GET /a/%2e%2e/%2e%2e/etc/passwd HTTP/1.1\r\nHost: s\r\n\r\n",
         Outcome::kMalformed);
  // Traversal *within* the root sanitizes instead.
  const auto ok = expect("GET /a/../b.txt HTTP/1.1\r\nHost: s\r\n\r\n",
                         Outcome::kComplete);
  EXPECT_EQ(ok.path, "/b.txt");
  // Smuggling vectors: duplicate Host, conflicting Content-Length.
  expect("GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\n", Outcome::kMalformed);
  expect("POST / HTTP/1.1\r\nHost: s\r\nContent-Length: 4\r\n"
         "Content-Length: 5\r\n\r\nabcd",
         Outcome::kMalformed);
  // Truncated percent escape and embedded NUL.
  expect("GET /x% HTTP/1.1\r\nHost: s\r\n\r\n", Outcome::kMalformed);
  expect("GET /%00 HTTP/1.1\r\nHost: s\r\n\r\n", Outcome::kMalformed);
  // A headerless prefix is incomplete, not malformed.
  expect("GET / HTTP/1.1\r\nHost: s\r\n", Outcome::kIncomplete);
  // Transfer-Encoding: the canonical smuggling vectors all fold to
  // kMalformed through the 3-arg wrapper (the strict overload reports the
  // per-case 400/413/501 — see http_test.cpp).
  expect("POST / HTTP/1.1\r\nHost: s\r\nContent-Length: 5\r\n"
         "Transfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
         Outcome::kMalformed);
  expect("POST / HTTP/1.1\r\nHost: s\r\nTransfer-Encoding: gzip\r\n\r\n",
         Outcome::kMalformed);
  expect("POST / HTTP/1.1\r\nHost: s\r\nTransfer-Encoding: chunked\r\n\r\n"
         "ffffffffffffffff1\r\n",
         Outcome::kMalformed);
  expect("POST / HTTP/1.1\r\nHost: s\r\nTransfer-Encoding: chunked\r\n\r\n"
         "5\r\nhello\r\n0\r\nContent-Length: 5\r\n\r\n",
         Outcome::kMalformed);
  // Obs-fold header continuation: deterministic reject, not a second header.
  expect("GET / HTTP/1.1\r\nHost: s\r\nX-A: 1\r\n folded\r\n\r\n",
         Outcome::kMalformed);
  // A well-formed chunked body decodes (the lifted 501).
  const auto chunked =
      expect("POST / HTTP/1.1\r\nHost: s\r\nTransfer-Encoding: chunked\r\n"
             "\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n",
             Outcome::kComplete);
  EXPECT_EQ(chunked.body, "hello world");
}

// ---- seeded mutation fuzzing ----------------------------------------------

constexpr int kIterationsPerSeed = 1500;

class HttpFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(HttpFuzzTest, MutatedCorpusHoldsInvariants) {
  const uint64_t seed =
      g_has_seed_override ? g_seed_override
                          : static_cast<uint64_t>(GetParam());
  SCOPED_TRACE("replay with --seed=" + std::to_string(seed));
  const auto corpus = load_corpus("http");
  ASSERT_FALSE(corpus.empty());
  std::mt19937_64 rng(seed);
  for (int i = 0; i < kIterationsPerSeed; ++i) {
    check_http_invariants(mutate(rng, corpus));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

class ChunkedFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ChunkedFuzzTest, MutatedStreamsDecodeSplitInvariantly) {
  const uint64_t seed =
      g_has_seed_override ? g_seed_override
                          : static_cast<uint64_t>(GetParam() + 2000);
  SCOPED_TRACE("replay with --seed=" + std::to_string(seed));
  const auto& seeds = chunked_seed_streams();
  std::mt19937_64 rng(seed);
  // Replay the seeds verbatim first, then mutants.
  for (const auto& stream : seeds) {
    check_chunked_decoder_invariants(stream, rng);
    if (::testing::Test::HasFatalFailure()) return;
  }
  for (int i = 0; i < kIterationsPerSeed; ++i) {
    check_chunked_decoder_invariants(mutate(rng, seeds), rng);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

class ResponseFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ResponseFuzzTest, MutatedCorpusHoldsInvariants) {
  const uint64_t seed =
      g_has_seed_override ? g_seed_override
                          : static_cast<uint64_t>(GetParam() + 3000);
  SCOPED_TRACE("replay with --seed=" + std::to_string(seed));
  const auto corpus = load_corpus("http");
  ASSERT_FALSE(corpus.empty());
  std::mt19937_64 rng(seed);
  for (int i = 0; i < kIterationsPerSeed; ++i) {
    check_response_head_invariants(mutate(rng, corpus));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

class PassthroughFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PassthroughFuzzTest, MutatedStreamsValidateSplitInvariantly) {
  const uint64_t seed =
      g_has_seed_override ? g_seed_override
                          : static_cast<uint64_t>(GetParam() + 4000);
  SCOPED_TRACE("replay with --seed=" + std::to_string(seed));
  const auto& seeds = chunked_seed_streams();
  std::mt19937_64 rng(seed);
  for (const auto& stream : seeds) {
    check_chunk_passthrough_invariants(stream, rng);
    if (::testing::Test::HasFatalFailure()) return;
  }
  for (int i = 0; i < kIterationsPerSeed; ++i) {
    check_chunk_passthrough_invariants(mutate(rng, seeds), rng);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

class FtpFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FtpFuzzTest, MutatedCorpusHoldsInvariants) {
  const uint64_t seed =
      g_has_seed_override ? g_seed_override
                          : static_cast<uint64_t>(GetParam() + 1000);
  SCOPED_TRACE("replay with --seed=" + std::to_string(seed));
  const auto corpus = load_corpus("ftp");
  ASSERT_FALSE(corpus.empty());
  std::mt19937_64 rng(seed);
  for (int i = 0; i < kIterationsPerSeed; ++i) {
    check_ftp_invariants(mutate(rng, corpus));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpFuzzTest, ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });
INSTANTIATE_TEST_SUITE_P(Seeds, ChunkedFuzzTest, ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });
INSTANTIATE_TEST_SUITE_P(Seeds, FtpFuzzTest, ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });
INSTANTIATE_TEST_SUITE_P(Seeds, ResponseFuzzTest, ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });
INSTANTIATE_TEST_SUITE_P(Seeds, PassthroughFuzzTest, ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace

// Custom main: googletest leaves unrecognized flags in argv, so --seed=<N>
// passes straight through InitGoogleTest to us.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      g_seed_override = std::strtoull(arg.data() + 7, nullptr, 10);
      g_has_seed_override = true;
    }
  }
  return RUN_ALL_TESTS();
}
