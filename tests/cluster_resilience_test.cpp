// Deterministic chaos tests for the cluster resilience layer: a LoadBalancer
// plus several full COPS-HTTP backends sharing one SimEngine, with
// per-endpoint faults (kill_port / revive_port / stall_connects) injected at
// scripted virtual instants.  Every scenario replays bit-identically per
// seed — the breaker/health transitions emitted through the balancer's
// event_listener are folded into the engine trace, so "the breaker opened,
// went half-open, and closed" is an assertion on a reproducible event log,
// not on wall-clock luck (the model-based-testing discipline from
// TESTING.md applied to the cluster control plane).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/load_balancer.hpp"
#include "http/http_server.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops::cluster {
namespace {

using http::CopsHttpServer;
using http::HttpServerConfig;
using simnet::SimClient;
using simnet::SimEngine;

constexpr uint16_t kBalancerPort = 8100;
constexpr uint16_t kBackendPortBase = 8101;  // data ports 8101, 8102, ...
constexpr uint16_t kAdminPortBase = 8201;    // admin ports 8201, 8202, ...
constexpr uint16_t kBalancerAdminPort = 8300;

std::string seed_note(const SimEngine& engine) {
  return "replay seed=" + std::to_string(engine.seed());
}

std::string http_get_close(const std::string& path) {
  return "GET " + path + " HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n";
}

// A deterministic COPS-HTTP backend on a fixed sim port, optionally with its
// admin endpoint (for HTTP health probes) on a second fixed port.
std::unique_ptr<CopsHttpServer> start_backend(test::TempDir& docs,
                                              uint16_t port,
                                              uint16_t admin_port = 0) {
  auto options = CopsHttpServer::default_options();
  simnet::make_deterministic(options);
  options.listen_port = port;
  if (admin_port != 0) {
    // make_deterministic turns stats off; the health-probe tests need the
    // backend's /healthz, which rides on the admin endpoint.
    options.profiling = true;
    options.stats_export = nserver::StatsExport::kAdminHttp;
    options.admin_port = admin_port;
  }
  HttpServerConfig config;
  config.doc_root = docs.str();
  auto server = std::make_unique<CopsHttpServer>(std::move(options), config);
  auto status = server->start();
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  return server;
}

ResilienceConfig fast_resilience() {
  ResilienceConfig resilience;
  resilience.enabled = true;
  resilience.breaker_failure_threshold = 2;
  resilience.breaker_base_backoff = std::chrono::milliseconds(200);
  resilience.breaker_jitter = 0.2;
  resilience.retry_budget = 3;
  resilience.connect_timeout = std::chrono::milliseconds(100);
  return resilience;
}

// ---- the acceptance scenario -------------------------------------------------
//
// Three backends behind a resilient balancer; backend 0 is killed at the
// network level mid-run and revived later.  Three client waves: before the
// kill, during the outage (these must succeed via retry), and after the
// revival (the first of these trips the half-open probation that closes the
// breaker).  Returns the full deterministic trace for replay comparison.

struct ChaosOutcome {
  std::vector<std::string> trace;
  std::vector<std::string> responses;  // one per client, in launch order
  uint64_t dropped = 0;
  uint64_t retries = 0;
  std::vector<BackendStats> stats;
};

// `docs` is shared across runs so Last-Modified (real file mtime) matches
// when two same-seed runs compare their client-observed bytes.
ChaosOutcome run_breaker_chaos(uint64_t seed, test::TempDir& docs) {
  SimEngine engine(seed);
  std::vector<std::unique_ptr<CopsHttpServer>> backends;
  for (int i = 0; i < 3; ++i) {
    backends.push_back(
        start_backend(docs, static_cast<uint16_t>(kBackendPortBase + i)));
  }

  LoadBalancerConfig config;
  config.listen_port = kBalancerPort;
  config.resilience = fast_resilience();
  config.event_listener = [&engine](const std::string& event) {
    engine.record(event);
  };
  LoadBalancer balancer(config);
  for (int i = 0; i < 3; ++i) {
    balancer.add_backend(
        net::InetAddress::loopback(static_cast<uint16_t>(kBackendPortBase + i)));
  }
  auto started = balancer.start();
  EXPECT_TRUE(started.is_ok()) << started.to_string();

  std::vector<SimClient*> clients;
  auto launch_wave = [&](int start_ms, int count) {
    for (int i = 0; i < count; ++i) {
      auto* client = engine.new_client();
      clients.push_back(client);
      engine.at(std::chrono::milliseconds(start_ms + 5 * i), [client] {
        client->connect(kBalancerPort);
        client->send(http_get_close("/index.html"));
      });
    }
  };

  launch_wave(5, 6);  // wave 1: all healthy
  engine.at(std::chrono::milliseconds(50),
            [&engine] { engine.kill_port(kBackendPortBase); });
  launch_wave(60, 6);  // wave 2: backend 0 dead — retries must cover
  engine.at(std::chrono::milliseconds(400),
            [&engine] { engine.revive_port(kBackendPortBase); });
  launch_wave(700, 6);  // wave 3: past the backoff — half-open, then closed

  EXPECT_TRUE(engine.run(std::chrono::seconds(5)))
      << seed_note(engine) << "\n" << engine.trace_text();

  ChaosOutcome outcome;
  outcome.stats = balancer.backend_stats();
  outcome.dropped = balancer.dropped_clients();
  outcome.retries = balancer.total_retries();
  for (auto* client : clients) outcome.responses.push_back(client->received());
  outcome.trace = engine.trace();

  balancer.stop();
  for (auto& backend : backends) backend->stop();
  return outcome;
}

TEST(ClusterChaosTest, BackendKillBreakerLifecycleZeroClientFailures) {
  test::TempDir docs;
  docs.write_file("index.html", "<html>resilient</html>");
  const auto outcome = run_breaker_chaos(0xc0de, docs);

  // Zero client-visible failures: every client of every wave got a full 200.
  ASSERT_EQ(outcome.responses.size(), 18u);
  for (size_t i = 0; i < outcome.responses.size(); ++i) {
    EXPECT_NE(outcome.responses[i].find("HTTP/1.1 200 OK"), std::string::npos)
        << "client " << i << " got: " << outcome.responses[i];
    EXPECT_NE(outcome.responses[i].find("<html>resilient</html>"),
              std::string::npos)
        << "client " << i;
  }
  EXPECT_EQ(outcome.dropped, 0u);
  EXPECT_GT(outcome.retries, 0u);

  // The breaker walked its whole lifecycle, in order, in the event trace.
  const auto& trace = outcome.trace;
  auto find_event = [&trace](const std::string& needle) {
    for (size_t i = 0; i < trace.size(); ++i) {
      if (trace[i].find(needle) != std::string::npos) return i;
    }
    return trace.size();
  };
  const size_t open_at = find_event("breaker-open backend=0");
  const size_t half_at = find_event("breaker-halfopen backend=0");
  const size_t close_at = find_event("breaker-close backend=0");
  ASSERT_LT(open_at, trace.size()) << "no breaker-open event";
  ASSERT_LT(half_at, trace.size()) << "no breaker-halfopen event";
  ASSERT_LT(close_at, trace.size()) << "no breaker-close event";
  EXPECT_LT(open_at, half_at);
  EXPECT_LT(half_at, close_at);

  // Counters agree: one ejection on the killed backend, healed at the end.
  ASSERT_EQ(outcome.stats.size(), 3u);
  EXPECT_EQ(outcome.stats[0].ejections, 1u);
  EXPECT_EQ(outcome.stats[0].breaker, BreakerState::kClosed);
  EXPECT_GT(outcome.stats[0].connect_failures, 0u);
  // The survivors carried the outage traffic.
  EXPECT_GT(outcome.stats[1].connections + outcome.stats[2].connections, 6u);
}

TEST(ClusterChaosTest, BreakerChaosTraceIsBitIdenticalPerSeed) {
  test::TempDir docs;
  docs.write_file("index.html", "<html>resilient</html>");
  const auto first = run_breaker_chaos(0xc0de, docs);
  const auto second = run_breaker_chaos(0xc0de, docs);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.responses, second.responses);
}

// ---- active health checking --------------------------------------------------

TEST(ClusterChaosTest, HealthChecksMarkBackendDownThenUp) {
  SimEngine engine(0x4ea1);
  test::TempDir docs;
  docs.write_file("index.html", "<html>health</html>");

  std::vector<std::unique_ptr<CopsHttpServer>> backends;
  for (int i = 0; i < 2; ++i) {
    backends.push_back(
        start_backend(docs, static_cast<uint16_t>(kBackendPortBase + i),
                      static_cast<uint16_t>(kAdminPortBase + i)));
  }

  LoadBalancerConfig config;
  config.listen_port = kBalancerPort;
  config.resilience = fast_resilience();
  config.resilience.health_checks = true;
  config.resilience.health_http = true;
  config.resilience.health_interval = std::chrono::milliseconds(30);
  config.resilience.health_timeout = std::chrono::milliseconds(10);
  config.resilience.health_rise = 2;
  config.resilience.health_fall = 2;
  config.event_listener = [&engine](const std::string& event) {
    engine.record(event);
  };
  LoadBalancer balancer(config);
  for (int i = 0; i < 2; ++i) {
    balancer.add_backend(
        net::InetAddress::loopback(static_cast<uint16_t>(kBackendPortBase + i)),
        net::InetAddress::loopback(static_cast<uint16_t>(kAdminPortBase + i)));
  }
  ASSERT_TRUE(balancer.start().is_ok());

  // Kill backend 0's data AND admin port at 100ms: probes start failing, two
  // consecutive failures mark it down.  Clients during the outage must all
  // land on backend 1 without a connect attempt at backend 0 (active health
  // gating, not passive retry).
  engine.at(std::chrono::milliseconds(100), [&engine] {
    engine.kill_port(kBackendPortBase);
    engine.kill_port(kAdminPortBase);
  });
  std::vector<SimClient*> clients;
  for (int i = 0; i < 4; ++i) {
    auto* client = engine.new_client();
    clients.push_back(client);
    engine.at(std::chrono::milliseconds(350 + 5 * i), [client] {
      client->connect(kBalancerPort);
      client->send(http_get_close("/index.html"));
    });
  }
  engine.at(std::chrono::milliseconds(450), [&engine] {
    engine.revive_port(kBackendPortBase);
    engine.revive_port(kAdminPortBase);
  });
  engine.at(std::chrono::milliseconds(700), [] { /* let probes recover */ });

  ASSERT_TRUE(engine.run(std::chrono::seconds(5)))
      << seed_note(engine) << "\n" << engine.trace_text();

  const auto trace = engine.trace_text();
  EXPECT_NE(trace.find("health-down backend=0"), std::string::npos) << trace;
  EXPECT_NE(trace.find("health-up backend=0"), std::string::npos) << trace;

  for (auto* client : clients) {
    EXPECT_NE(client->received().find("HTTP/1.1 200 OK"), std::string::npos);
  }
  const auto stats = balancer.backend_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_TRUE(stats[0].healthy);  // recovered by the end
  EXPECT_GT(stats[0].probes, 0u);
  EXPECT_GE(stats[0].probe_failures, 2u);
  // Outage-window clients were routed by the health verdict, not retried
  // against the dead backend.
  EXPECT_EQ(stats[1].connections, 4u);

  balancer.stop();
  for (auto& backend : backends) backend->stop();
}

// ---- connect deadline --------------------------------------------------------

TEST(ClusterChaosTest, ConnectDeadlineFiresOnStalledBackendAndRetries) {
  // stall_connects is a SYN blackhole: the connect never completes and never
  // fails, which is exactly the path a refusal-based skip cannot handle —
  // only the Connector's per-attempt deadline gets the client unstuck.
  SimEngine engine(0x57a1);
  test::TempDir docs;
  docs.write_file("index.html", "<html>deadline</html>");

  auto stalled = start_backend(docs, kBackendPortBase);
  auto healthy = start_backend(docs, kBackendPortBase + 1);
  engine.stall_connects(kBackendPortBase, true);

  LoadBalancerConfig config;
  config.listen_port = kBalancerPort;
  config.resilience = fast_resilience();  // connect_timeout = 100ms
  config.event_listener = [&engine](const std::string& event) {
    engine.record(event);
  };
  LoadBalancer balancer(config);
  balancer.add_backend(net::InetAddress::loopback(kBackendPortBase));
  balancer.add_backend(net::InetAddress::loopback(kBackendPortBase + 1));
  ASSERT_TRUE(balancer.start().is_ok());

  auto* client = engine.new_client();
  const auto t0 = now();
  engine.at(std::chrono::milliseconds(5), [client] {
    client->connect(kBalancerPort);
    client->send(http_get_close("/index.html"));
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(5)))
      << seed_note(engine) << "\n" << engine.trace_text();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now() - t0);

  EXPECT_NE(client->received().find("HTTP/1.1 200 OK"), std::string::npos)
      << client->received();
  // The answer came after the 100ms deadline fired (not instantly, not
  // never): proof the timeout path ran, on the virtual clock.
  EXPECT_GE(elapsed.count(), 100);
  EXPECT_LT(elapsed.count(), 1000);

  const auto stats = balancer.backend_stats();
  EXPECT_EQ(stats[0].connect_failures, 1u);
  EXPECT_EQ(stats[0].retries, 1u);
  EXPECT_EQ(stats[1].connections, 1u);
  EXPECT_EQ(balancer.dropped_clients(), 0u);

  balancer.stop();
  stalled->stop();
  healthy->stop();
}

// ---- graceful drain ----------------------------------------------------------

TEST(ClusterChaosTest, DrainBackendRoutesAroundAndUndrainRestores) {
  SimEngine engine(0xd7a1);
  test::TempDir docs;
  docs.write_file("index.html", "<html>drain</html>");

  auto backend_a = start_backend(docs, kBackendPortBase);
  auto backend_b = start_backend(docs, kBackendPortBase + 1);

  LoadBalancerConfig config;
  config.listen_port = kBalancerPort;
  config.resilience = fast_resilience();
  config.event_listener = [&engine](const std::string& event) {
    engine.record(event);
  };
  LoadBalancer balancer(config);
  balancer.add_backend(net::InetAddress::loopback(kBackendPortBase));
  balancer.add_backend(net::InetAddress::loopback(kBackendPortBase + 1));
  ASSERT_TRUE(balancer.start().is_ok());

  engine.at(std::chrono::milliseconds(10),
            [&balancer] { balancer.drain_backend(0); });
  std::vector<SimClient*> drained_wave;
  for (int i = 0; i < 4; ++i) {
    auto* client = engine.new_client();
    drained_wave.push_back(client);
    engine.at(std::chrono::milliseconds(50 + 5 * i), [client] {
      client->connect(kBalancerPort);
      client->send(http_get_close("/index.html"));
    });
  }
  engine.at(std::chrono::milliseconds(100),
            [&balancer] { balancer.drain_backend(0, false); });
  std::vector<SimClient*> restored_wave;
  for (int i = 0; i < 2; ++i) {
    auto* client = engine.new_client();
    restored_wave.push_back(client);
    engine.at(std::chrono::milliseconds(150 + 5 * i), [client] {
      client->connect(kBalancerPort);
      client->send(http_get_close("/index.html"));
    });
  }

  ASSERT_TRUE(engine.run(std::chrono::seconds(5)))
      << seed_note(engine) << "\n" << engine.trace_text();

  for (auto* client : drained_wave) {
    EXPECT_NE(client->received().find("HTTP/1.1 200 OK"), std::string::npos);
  }
  for (auto* client : restored_wave) {
    EXPECT_NE(client->received().find("HTTP/1.1 200 OK"), std::string::npos);
  }
  const auto trace = engine.trace_text();
  EXPECT_NE(trace.find("drain backend=0"), std::string::npos);
  EXPECT_NE(trace.find("undrain backend=0"), std::string::npos);

  // While draining, every session went to backend 1; after undrain the
  // round-robin rotation reaches backend 0 again.
  const auto stats = balancer.backend_stats();
  EXPECT_EQ(stats[0].connections, 1u);
  EXPECT_EQ(stats[1].connections, 5u);
  EXPECT_EQ(balancer.dropped_clients(), 0u);

  balancer.stop();
  backend_a->stop();
  backend_b->stop();
}

// ---- differential: resilience must be invisible to the client ----------------
//
// The same scripted clients, at the same virtual instants, once against a
// resilient balancer whose backend 0 dies mid-run and once directly against
// a single healthy backend.  The client-observed bytes must be identical —
// retry and ejection may never alter what a successful client receives.

std::vector<std::string> run_clients_against(uint16_t connect_port,
                                             SimEngine& engine) {
  std::vector<SimClient*> clients;
  const int kTimesMs[] = {10, 20, 30, 50, 60, 70, 80};
  for (int at : kTimesMs) {
    auto* client = engine.new_client();
    clients.push_back(client);
    engine.at(std::chrono::milliseconds(at), [client, connect_port] {
      client->connect(connect_port);
      client->send(http_get_close("/index.html"));
    });
  }
  EXPECT_TRUE(engine.run(std::chrono::seconds(5)))
      << seed_note(engine) << "\n" << engine.trace_text();
  std::vector<std::string> received;
  for (auto* client : clients) received.push_back(client->received());
  return received;
}

// Both runs share one doc root: responses carry Last-Modified from the real
// file mtime, which must match for the byte-for-byte comparison.
std::vector<std::string> flapping_cluster_responses(test::TempDir& docs) {
  SimEngine engine(0xd1ff);
  auto backend_a = start_backend(docs, kBackendPortBase);
  auto backend_b = start_backend(docs, kBackendPortBase + 1);

  LoadBalancerConfig config;
  config.listen_port = kBalancerPort;
  config.resilience = fast_resilience();
  LoadBalancer balancer(config);
  balancer.add_backend(net::InetAddress::loopback(kBackendPortBase));
  balancer.add_backend(net::InetAddress::loopback(kBackendPortBase + 1));
  EXPECT_TRUE(balancer.start().is_ok());

  // Backend 0 dies after the third client and never comes back.
  engine.at(std::chrono::milliseconds(40),
            [&engine] { engine.kill_port(kBackendPortBase); });

  auto received = run_clients_against(kBalancerPort, engine);
  EXPECT_EQ(balancer.dropped_clients(), 0u);
  balancer.stop();
  backend_a->stop();
  backend_b->stop();
  return received;
}

std::vector<std::string> single_backend_responses(test::TempDir& docs) {
  SimEngine engine(0xd1ff);
  auto backend = start_backend(docs, kBackendPortBase);
  auto received = run_clients_against(kBackendPortBase, engine);
  backend->stop();
  return received;
}

TEST(ClusterDifferentialTest, FlappingBackendServesSameBytesAsSingleBackend) {
  test::TempDir docs;
  docs.write_file("index.html", "<html>differential</html>");
  const auto cluster = flapping_cluster_responses(docs);
  const auto direct = single_backend_responses(docs);
  ASSERT_EQ(cluster.size(), direct.size());
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster[i], direct[i]) << "client " << i << " diverged";
    EXPECT_NE(cluster[i].find("HTTP/1.1 200 OK"), std::string::npos);
  }
}

// ---- balancer admin endpoint -------------------------------------------------

TEST(ClusterChaosTest, AdminStatsExposeBreakerAndHealthState) {
  SimEngine engine(0xad31);
  test::TempDir docs;
  docs.write_file("index.html", "<html>admin</html>");
  auto backend_a = start_backend(docs, kBackendPortBase);
  auto backend_b = start_backend(docs, kBackendPortBase + 1);

  LoadBalancerConfig config;
  config.listen_port = kBalancerPort;
  config.admin_enabled = true;
  config.admin_port = kBalancerAdminPort;
  config.resilience = fast_resilience();
  config.resilience.breaker_base_backoff = std::chrono::milliseconds(500);
  config.resilience.breaker_jitter = 0.0;  // keep the breaker open past 100ms
  LoadBalancer balancer(config);
  balancer.add_backend(net::InetAddress::loopback(kBackendPortBase));
  balancer.add_backend(net::InetAddress::loopback(kBackendPortBase + 1));
  ASSERT_TRUE(balancer.start().is_ok());

  // Kill backend 0, then drive enough clients through to trip the breaker
  // (threshold 2: two of the three rotations start at backend 0).
  engine.at(std::chrono::milliseconds(10),
            [&engine] { engine.kill_port(kBackendPortBase); });
  for (int i = 0; i < 3; ++i) {
    auto* client = engine.new_client();
    engine.at(std::chrono::milliseconds(20 + 5 * i), [client] {
      client->connect(kBalancerPort);
      client->send(http_get_close("/index.html"));
    });
  }
  auto* healthz = engine.new_client();
  auto* stats_scrape = engine.new_client();
  auto* json_scrape = engine.new_client();
  engine.at(std::chrono::milliseconds(100), [&] {
    healthz->connect(kBalancerAdminPort);
    healthz->send(http_get_close("/healthz"));
    stats_scrape->connect(kBalancerAdminPort);
    stats_scrape->send(http_get_close("/stats"));
    json_scrape->connect(kBalancerAdminPort);
    json_scrape->send(http_get_close("/stats.json"));
  });

  ASSERT_TRUE(engine.run(std::chrono::seconds(5)))
      << seed_note(engine) << "\n" << engine.trace_text();

  EXPECT_NE(healthz->received().find("200 OK"), std::string::npos);
  EXPECT_NE(healthz->received().find("ok"), std::string::npos);

  const auto& prom = stats_scrape->received();
  EXPECT_NE(prom.find("cops_cluster_backend_healthy{backend=\"0\"} 1"),
            std::string::npos)
      << prom;
  // BreakerState::kOpen renders as gauge value 1.
  EXPECT_NE(prom.find("cops_cluster_backend_breaker_state{backend=\"0\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cops_cluster_backend_breaker_state{backend=\"1\"} 0"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cops_cluster_backend_ejections_total{backend=\"0\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cops_cluster_retries_total 2"), std::string::npos)
      << prom;

  const auto& json = json_scrape->received();
  EXPECT_NE(json.find("\"breaker\":\"open\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ejections\":1"), std::string::npos) << json;

  balancer.stop();
  backend_a->stop();
  backend_b->stop();
}

// ---- per-IP connection cap ---------------------------------------------------

TEST(ServerLimitsSimTest, PerIpConnectionCapRejectsExcessClients) {
  // Every scripted SimClient shares the source host 10.0.0.1, so a cap of 2
  // admits the first two connections and rejects the rest at accept.
  SimEngine engine(0x1b);
  test::TempDir docs;
  docs.write_file("index.html", "<html>cap</html>");

  auto options = CopsHttpServer::default_options();
  simnet::make_deterministic(options);
  options.listen_port = kBackendPortBase;
  options.profiling = true;
  options.max_connections_per_ip = 2;
  HttpServerConfig config;
  config.doc_root = docs.str();
  CopsHttpServer server(std::move(options), config);
  ASSERT_TRUE(server.start().is_ok());

  auto* held_a = engine.new_client();
  auto* held_b = engine.new_client();
  auto* rejected_a = engine.new_client();
  auto* rejected_b = engine.new_client();
  engine.at(std::chrono::milliseconds(5), [&] {
    held_a->connect(kBackendPortBase);
    held_b->connect(kBackendPortBase);
  });
  engine.at(std::chrono::milliseconds(10), [&] {
    rejected_a->connect(kBackendPortBase);
    rejected_b->connect(kBackendPortBase);
  });
  // The held connections finish later; their slots were occupied while the
  // other two were turned away.
  engine.at(std::chrono::milliseconds(100), [&] {
    held_a->send(http_get_close("/index.html"));
    held_b->send(http_get_close("/index.html"));
  });

  ASSERT_TRUE(engine.run(std::chrono::seconds(5)))
      << seed_note(engine) << "\n" << engine.trace_text();

  EXPECT_NE(held_a->received().find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(held_b->received().find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_TRUE(rejected_a->peer_closed());
  EXPECT_TRUE(rejected_b->peer_closed());
  EXPECT_TRUE(rejected_a->received().empty());
  EXPECT_TRUE(rejected_b->received().empty());
  EXPECT_EQ(server.server().profile().per_ip_rejections, 2u);
  server.stop();
}

TEST(ServerLimitsSimTest, PerIpCapReleasedWhenConnectionCloses) {
  SimEngine engine(0x1c);
  test::TempDir docs;
  docs.write_file("index.html", "<html>cap2</html>");

  auto options = CopsHttpServer::default_options();
  simnet::make_deterministic(options);
  options.listen_port = kBackendPortBase;
  options.profiling = true;
  options.max_connections_per_ip = 1;
  HttpServerConfig config;
  config.doc_root = docs.str();
  CopsHttpServer server(std::move(options), config);
  ASSERT_TRUE(server.start().is_ok());

  auto* first = engine.new_client();
  auto* second = engine.new_client();
  engine.at(std::chrono::milliseconds(5), [&] {
    first->connect(kBackendPortBase);
    first->send(http_get_close("/index.html"));
  });
  // By 100ms the first connection has completed and been released, so the
  // same IP gets its slot back.
  engine.at(std::chrono::milliseconds(100), [&] {
    second->connect(kBackendPortBase);
    second->send(http_get_close("/index.html"));
  });

  ASSERT_TRUE(engine.run(std::chrono::seconds(5)))
      << seed_note(engine) << "\n" << engine.trace_text();

  EXPECT_NE(first->received().find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(second->received().find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(server.server().profile().per_ip_rejections, 0u);
  server.stop();
}

// ---- slowloris defense -------------------------------------------------------

TEST(ServerLimitsSimTest, SlowlorisHeaderTimeoutReapsStalledConnection) {
  // One peer drips a request line byte by byte and never finishes; a control
  // peer completes a request and idles on keep-alive.  Only the dripper may
  // be reaped: the header deadline is measured from the first partial byte
  // and deliberately NOT refreshed by further drip bytes (anti-evasion), and
  // it must not fire for connections with no partial request pending.
  SimEngine engine(0x510);
  test::TempDir docs;
  docs.write_file("index.html", "<html>slow</html>");

  auto options = CopsHttpServer::default_options();
  simnet::make_deterministic(options);
  options.listen_port = kBackendPortBase;
  options.profiling = true;
  options.header_read_timeout = std::chrono::seconds(1);
  options.housekeeping_interval = std::chrono::milliseconds(200);
  HttpServerConfig config;
  config.doc_root = docs.str();
  CopsHttpServer server(std::move(options), config);
  ASSERT_TRUE(server.start().is_ok());

  auto* dripper = engine.new_client();
  auto* control = engine.new_client();
  engine.at(std::chrono::milliseconds(1), [&] {
    dripper->connect(kBackendPortBase);
    dripper->send("GET / HTTP/1.1\r\nHo");  // stuck mid-headers
    control->connect(kBackendPortBase);
    control->send(
        "GET /index.html HTTP/1.1\r\nHost: c\r\nConnection: keep-alive\r\n\r\n");
  });
  // Drip more bytes at 500ms: activity, but still no complete request — the
  // deadline must not reset.
  engine.at(std::chrono::milliseconds(500), [&] { dripper->send("st: x"); });
  bool control_alive_after_reap = false;
  engine.at(std::chrono::milliseconds(1500), [&] {
    control_alive_after_reap = !control->peer_closed();
    control->close();
  });

  ASSERT_TRUE(engine.run(std::chrono::seconds(5)))
      << seed_note(engine) << "\n" << engine.trace_text();

  EXPECT_TRUE(dripper->peer_closed()) << engine.trace_text();
  EXPECT_TRUE(control_alive_after_reap)
      << "keep-alive connection wrongly reaped by the header deadline";
  EXPECT_NE(control->received().find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(server.server().profile().header_timeouts, 1u);
  server.stop();
}

TEST(ServerLimitsSimTest, HeaderTimeoutFiresOnVirtualClockSchedule) {
  // Determinism spot-check: the reap lands at the first housekeeping tick
  // after the deadline, on the virtual clock — run twice, identical traces.
  auto run_once = [](uint64_t seed) {
    SimEngine engine(seed);
    test::TempDir docs;
    auto options = CopsHttpServer::default_options();
    simnet::make_deterministic(options);
    options.listen_port = kBackendPortBase;
    options.header_read_timeout = std::chrono::seconds(1);
    options.housekeeping_interval = std::chrono::milliseconds(200);
    HttpServerConfig config;
    config.doc_root = docs.str();
    CopsHttpServer server(std::move(options), config);
    EXPECT_TRUE(server.start().is_ok());

    auto* dripper = engine.new_client();
    engine.at(std::chrono::milliseconds(1), [dripper] {
      dripper->connect(kBackendPortBase);
      dripper->send("GET /x HTTP/1.1\r\n");
    });
    const auto t0 = now();
    EXPECT_TRUE(engine.run(std::chrono::seconds(10)))
        << seed_note(engine) << "\n" << engine.trace_text();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(now() - t0);
    // Reaped at 1.2s (first 200ms housekeeping tick past the 1s deadline),
    // not at the engine deadline.
    EXPECT_TRUE(dripper->peer_closed());
    EXPECT_GE(elapsed.count(), 1000);
    EXPECT_LT(elapsed.count(), 1500);
    server.stop();
    return engine.trace();
  };
  const auto first = run_once(0x51d);
  const auto second = run_once(0x51d);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace cops::cluster
