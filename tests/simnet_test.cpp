// Tests for the simnet engine itself: the syscall seam, the virtual clock,
// fault injection, and seed-replay determinism — plus the regression tests
// for the EINTR/partial-write bugs the harness surfaced in net/socket.cpp
// (see TESTING.md).
//
// Every fault-injecting test prints the replay seed on failure via
// SCOPED_TRACE, so a red run can be reproduced bit-identically.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/byte_buffer.hpp"
#include "common/clock.hpp"
#include "http/http_server.hpp"
#include "net/socket.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops::simnet {
namespace {

std::string seed_note(const SimEngine& engine) {
  return "replay seed=" + std::to_string(engine.seed());
}

// Connects one client to a fresh sim listener and accepts it, returning the
// server-side socket.  Drives the engine directly (no reactor).
net::TcpSocket accept_one(SimEngine& engine, SimClient* client,
                          net::TcpListener& listener, uint16_t port,
                          int max_tries = 1000) {
  client->connect(port);
  engine.pump();
  for (int i = 0; i < max_tries; ++i) {
    auto sock = listener.accept();
    if (sock.is_ok()) return std::move(sock).take();
    EXPECT_EQ(sock.status().code(), StatusCode::kWouldBlock)
        << sock.status().to_string();
  }
  ADD_FAILURE() << "accept never succeeded; " << seed_note(engine);
  return {};
}

// ---- virtual clock ----------------------------------------------------------

TEST(SimClockTest, EngineInstallsVirtualClock) {
  const auto real_before = SteadyClock::now();
  {
    SimEngine engine(1);
    const auto t0 = now();
    engine.advance(std::chrono::hours(24));
    const auto t1 = now();
    EXPECT_EQ(std::chrono::duration_cast<std::chrono::hours>(t1 - t0).count(),
              24);
  }
  // Uninstalled: now() is the real steady clock again (a day cannot have
  // passed in this test's wall time).
  const auto real_after = now();
  EXPECT_LT(real_after - real_before, std::chrono::hours(1));
}

// ---- basic channel plumbing -------------------------------------------------

TEST(SimEngineTest, ListenConnectAcceptEcho) {
  SimEngine engine(2);
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(9000));
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  auto* client = engine.new_client();
  auto sock =
      accept_one(engine, client, listener.value(), 9000);
  ASSERT_TRUE(sock.valid());

  client->send("ping");
  ByteBuffer in;
  auto n = sock.read(in);
  ASSERT_TRUE(n.is_ok()) << n.status().to_string();
  EXPECT_EQ(in.take_string(), "ping");

  auto wrote = sock.write(std::string_view("pong"));
  ASSERT_TRUE(wrote.is_ok());
  EXPECT_EQ(wrote.value(), 4u);
  engine.pump();
  EXPECT_EQ(client->received(), "pong");

  // Nothing pending: read would block.
  auto empty = sock.read(in);
  EXPECT_EQ(empty.status().code(), StatusCode::kWouldBlock);

  // Orderly client FIN reads as EOF.
  client->close();
  auto eof = sock.read(in);
  EXPECT_EQ(eof.status().code(), StatusCode::kClosed);
}

TEST(SimEngineTest, AddressesAreDeterministic) {
  SimEngine engine(3);
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(9001));
  ASSERT_TRUE(listener.is_ok());
  auto addr = listener.value().local_address();
  ASSERT_TRUE(addr.is_ok());
  EXPECT_EQ(addr.value().port(), 9001);

  auto* client = engine.new_client();
  auto sock = accept_one(engine, client, listener.value(), 9001);
  ASSERT_TRUE(sock.valid());
  auto peer = sock.peer_address();
  ASSERT_TRUE(peer.is_ok());
  EXPECT_EQ(peer.value().to_string(), "10.0.0.1:40000");
  auto local = sock.local_address();
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local.value().port(), 9001);
}

TEST(SimEngineTest, RstOnReadAndWrite) {
  SimEngine engine(4);
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(9002));
  ASSERT_TRUE(listener.is_ok());
  auto* client = engine.new_client();
  auto sock = accept_one(engine, client, listener.value(), 9002);
  ASSERT_TRUE(sock.valid());

  client->reset();
  ByteBuffer in;
  auto r = sock.read(in);
  EXPECT_EQ(r.status().code(), StatusCode::kClosed) << seed_note(engine);
  auto w = sock.write(std::string_view("data"));
  EXPECT_EQ(w.status().code(), StatusCode::kClosed) << seed_note(engine);
  EXPECT_NE(engine.trace_text().find("client-rst"), std::string::npos);
}

TEST(SimEngineTest, SynDropWhenBacklogFull) {
  SimEngine engine(5);
  auto listener =
      net::TcpListener::listen(net::InetAddress::loopback(9003), /*backlog=*/1);
  ASSERT_TRUE(listener.is_ok());
  auto* c1 = engine.new_client();
  auto* c2 = engine.new_client();
  c1->connect(9003);
  c2->connect(9003);  // accept queue full: dropped like a SYN under overload
  EXPECT_TRUE(c1->connected());
  EXPECT_FALSE(c2->connected());
  EXPECT_NE(engine.trace_text().find("syn-drop"), std::string::npos);
}

TEST(SimEngineTest, AcceptBurstDrainsUnderEintr) {
  FaultPlan plan;
  plan.accept_eintr = 0.5;
  SimEngine engine(6, plan);
  SCOPED_TRACE(seed_note(engine));
  auto listener =
      net::TcpListener::listen(net::InetAddress::loopback(9004), /*backlog=*/16);
  ASSERT_TRUE(listener.is_ok());
  for (int i = 0; i < 5; ++i) engine.new_client()->connect(9004);

  // The accept loop sees interleaved EINTR (mapped to kWouldBlock) but must
  // still drain all five pending connections.
  int accepted = 0;
  std::vector<net::TcpSocket> socks;
  for (int tries = 0; tries < 1000 && accepted < 5; ++tries) {
    auto sock = listener.value().accept();
    if (sock.is_ok()) {
      socks.push_back(std::move(sock).take());
      ++accepted;
    } else {
      ASSERT_EQ(sock.status().code(), StatusCode::kWouldBlock);
    }
  }
  EXPECT_EQ(accepted, 5);
  EXPECT_NE(engine.trace_text().find("fault accept-eintr"), std::string::npos);
}

TEST(SimEngineTest, SlowPeerStallBacksUpWrites) {
  FaultPlan plan;
  plan.channel_capacity = 128;
  SimEngine engine(7, plan);
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(9005));
  ASSERT_TRUE(listener.is_ok());
  auto* client = engine.new_client();
  auto sock = accept_one(engine, client, listener.value(), 9005);
  ASSERT_TRUE(sock.valid());

  client->pause_reading(true);
  const std::string payload(1024, 'x');
  ByteBuffer out;
  out.append(payload);
  auto first = sock.write(out);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value(), 128u);  // capacity, then the channel is full
  engine.pump();                   // paused: nothing is delivered
  EXPECT_TRUE(client->received().empty());
  auto stalled = sock.write(out);
  EXPECT_EQ(stalled.status().code(), StatusCode::kWouldBlock);

  // Resuming drains the channel and unblocks the writer.
  client->pause_reading(false);
  size_t guard = 0;
  while (out.readable() > 0 && guard++ < 1000) {
    engine.pump();
    auto n = sock.write(out);
    if (!n.is_ok()) {
      ASSERT_EQ(n.status().code(), StatusCode::kWouldBlock);
    }
  }
  engine.pump();
  EXPECT_EQ(client->received(), payload) << seed_note(engine);
}

// ---- regression tests: bugs found by the harness ---------------------------
//
// Before the fix, TcpSocket::read treated EINTR as a fatal error (the
// connection would be torn down with "read-error"); same for both write
// overloads.  These tests fail on the old code at the first injected EINTR.

TEST(SimEintrRegressionTest, ReadRetriesAfterEintr) {
  FaultPlan plan;
  plan.read_eintr = 0.9;
  plan.short_read = 0.5;
  SimEngine engine(42, plan);
  SCOPED_TRACE(seed_note(engine));
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(9010));
  ASSERT_TRUE(listener.is_ok());
  auto* client = engine.new_client();
  auto sock = accept_one(engine, client, listener.value(), 9010);
  ASSERT_TRUE(sock.valid());

  const std::string payload(4096, 'r');
  client->send(payload);
  ByteBuffer in;
  size_t total = 0;
  for (int tries = 0; tries < 10000 && total < payload.size(); ++tries) {
    auto n = sock.read(in);
    if (!n.is_ok()) {
      // Old code: the first injected EINTR surfaces as an INTERNAL error.
      ASSERT_EQ(n.status().code(), StatusCode::kWouldBlock)
          << n.status().to_string();
      continue;
    }
    total += n.value();
  }
  EXPECT_EQ(total, payload.size());
  EXPECT_EQ(in.take_string(), payload);
  EXPECT_NE(engine.trace_text().find("fault read-eintr"), std::string::npos)
      << "plan injected no EINTR - raise the probability or change the seed";
}

TEST(SimEintrRegressionTest, BufferedWriteRetriesAfterEintr) {
  FaultPlan plan;
  plan.write_eintr = 0.6;
  plan.short_write = 0.5;
  plan.channel_capacity = 257;
  SimEngine engine(43, plan);
  SCOPED_TRACE(seed_note(engine));
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(9011));
  ASSERT_TRUE(listener.is_ok());
  auto* client = engine.new_client();
  auto sock = accept_one(engine, client, listener.value(), 9011);
  ASSERT_TRUE(sock.valid());

  std::string payload;
  for (int i = 0; i < 4096; ++i) payload += static_cast<char>('a' + i % 26);
  ByteBuffer out;
  out.append(payload);
  for (int tries = 0; tries < 10000 && out.readable() > 0; ++tries) {
    auto n = sock.write(out);
    if (!n.is_ok()) {
      ASSERT_EQ(n.status().code(), StatusCode::kWouldBlock)
          << n.status().to_string();
    }
    engine.pump();  // let the (virtual) peer drain the channel
  }
  EXPECT_EQ(out.readable(), 0u);
  engine.pump();
  EXPECT_EQ(client->received(), payload);
  EXPECT_NE(engine.trace_text().find("fault write-eintr"), std::string::npos);
}

TEST(SimEintrRegressionTest, DirectWriteRetriesAfterEintr) {
  FaultPlan plan;
  plan.write_eintr = 0.9;
  SimEngine engine(44, plan);
  SCOPED_TRACE(seed_note(engine));
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(9012));
  ASSERT_TRUE(listener.is_ok());
  auto* client = engine.new_client();
  auto sock = accept_one(engine, client, listener.value(), 9012);
  ASSERT_TRUE(sock.valid());

  auto n = sock.write(std::string_view("unbuffered"));
  ASSERT_TRUE(n.is_ok()) << n.status().to_string();
  EXPECT_EQ(n.value(), 10u);
  engine.pump();
  EXPECT_EQ(client->received(), "unbuffered");
  EXPECT_NE(engine.trace_text().find("fault write-eintr"), std::string::npos);
}

// ---- determinism ------------------------------------------------------------

// One fixed scripted scenario under the chaos plan; returns the trace.
std::vector<std::string> chaos_scenario_trace(uint64_t seed) {
  SimEngine engine(seed, FaultPlan::chaos());
  auto listener = net::TcpListener::listen(net::InetAddress::loopback(9020));
  EXPECT_TRUE(listener.is_ok());
  auto* client = engine.new_client();
  auto sock = accept_one(engine, client, listener.value(), 9020);
  EXPECT_TRUE(sock.valid());

  client->send(std::string(512, 'q'));
  ByteBuffer in;
  size_t total = 0;
  for (int tries = 0; tries < 10000 && total < 512; ++tries) {
    auto n = sock.read(in);
    if (n.is_ok()) total += n.value();
  }
  EXPECT_EQ(total, 512u);
  ByteBuffer out;
  out.append(std::string(512, 'p'));
  for (int tries = 0; tries < 10000 && out.readable() > 0; ++tries) {
    (void)sock.write(out);
    engine.pump();
  }
  engine.pump();
  EXPECT_EQ(client->received().size(), 512u);
  return engine.trace();
}

TEST(SimDeterminismTest, SameSeedSameTrace) {
  const auto first = chaos_scenario_trace(1234);
  const auto second = chaos_scenario_trace(1234);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second);
}

TEST(SimDeterminismTest, DifferentSeedDifferentFaults) {
  const auto first = chaos_scenario_trace(1234);
  const auto second = chaos_scenario_trace(5678);
  EXPECT_NE(first, second);
}

// ---- full stack under simulation -------------------------------------------

TEST(SimServerTest, HttpRequestOverSimulatedStack) {
  SimEngine engine(100);
  test::TempDir dir;
  dir.write_file("index.html", "<html>hello simnet</html>");

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8080;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  ASSERT_TRUE(started.is_ok()) << started.to_string();
  EXPECT_EQ(server.port(), 8080);

  auto* client = engine.new_client();
  engine.at(std::chrono::milliseconds(1), [client] {
    client->connect(8080);
    client->send(
        "GET /index.html HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n");
  });
  EXPECT_TRUE(engine.run(std::chrono::seconds(10)))
      << seed_note(engine) << "\n" << engine.trace_text();
  server.stop();

  EXPECT_NE(client->received().find("HTTP/1.1 200 OK"), std::string::npos)
      << client->received();
  EXPECT_NE(client->received().find("<html>hello simnet</html>"),
            std::string::npos);
  EXPECT_TRUE(client->peer_closed());  // Connection: close honoured
  EXPECT_TRUE(engine.failures().empty());
}

TEST(SimServerTest, IdleConnectionReapedOnVirtualClock) {
  // O7 shutdown-long-idle with a 60-second timeout: under the virtual clock
  // this finishes in milliseconds of wall time and needs no real sleeps.
  SimEngine engine(101);
  test::TempDir dir;
  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8081;
  options.shutdown_long_idle = true;
  options.idle_timeout = std::chrono::milliseconds(60'000);
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  ASSERT_TRUE(started.is_ok()) << started.to_string();

  auto* client = engine.new_client();
  engine.at(std::chrono::milliseconds(1), [client] {
    client->connect(8081);  // connect, then go silent
  });
  const auto t0 = now();
  ASSERT_TRUE(engine.run(std::chrono::minutes(5)))
      << seed_note(engine) << "\n" << engine.trace_text();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now() - t0);
  server.stop();

  EXPECT_TRUE(client->peer_closed());
  // Reaped at the idle timeout (housekeeping granularity), not at the
  // 5-minute deadline.
  EXPECT_GE(elapsed.count(), 60'000);
  EXPECT_LT(elapsed.count(), 70'000);
}

TEST(SimServerTest, ClientResetMidSessionCleansUpConnection) {
  // A client that RSTs after sending half a request: the server must tear
  // the connection down (no fd/connection leak) without crashing the
  // pipeline.  The trailing no-op script event keeps the engine running
  // long enough for the server to observe the reset.
  SimEngine engine(102);
  test::TempDir dir;
  dir.write_file("index.html", "<html>reset test</html>");
  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8082;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  ASSERT_TRUE(started.is_ok()) << started.to_string();

  auto* client = engine.new_client();
  engine.at(std::chrono::milliseconds(1), [client] {
    client->connect(8082);
    client->send("GET /index.html HTTP/1.1\r\nHost: s");  // mid-headers
  });
  engine.at(std::chrono::milliseconds(5), [client] { client->reset(); });
  engine.at(std::chrono::milliseconds(50), [] { /* let cleanup settle */ });
  ASSERT_TRUE(engine.run(std::chrono::seconds(10)))
      << seed_note(engine) << "\n" << engine.trace_text();

  EXPECT_EQ(server.server().connection_count(), 0u)
      << "connection leaked after client reset; " << seed_note(engine)
      << "\n" << engine.trace_text();
  server.stop();
  EXPECT_TRUE(engine.failures().empty());
}

}  // namespace
}  // namespace cops::simnet
