// Simnet coverage for the S6 shared-nothing accept path (scale-out PR).
//
// The generative contract: `accept_path` must be *observationally
// invisible*.  A client cannot tell whether its connection came through the
// classic single listener plus dispatch hop or through one of N
// SO_REUSEPORT listeners — only throughput changes.  The differential test
// below enforces exactly that: per seed, the same scripted clients replay
// against both configurations (same shard count) and every client's reply
// stream must match byte for byte, Date header included (the simulated
// clock makes replies bit-identical per seed).
//
// Also covered here, because only the simulation makes them deterministic:
// the listener group's round-robin connection spread, per-shard L1 cache
// warm-up (each shard promotes independently; the L2 fill is shared), and
// the flagship trace-determinism guarantee extended to multi-shard
// reuseport runs.
#include <utime.h>

#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "http/http_server.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops::simnet {
namespace {

using std::chrono::milliseconds;

constexpr uint16_t kPort = 8090;

// Deterministic fixture set: four files with distinct sizes and contents.
std::string fixture_body(size_t i) {
  std::string out = "scaleout fixture " + std::to_string(i) + "\n";
  for (size_t j = 0; j < 20 + i * 40; ++j) {
    out += static_cast<char>('a' + (i * 11 + j * 5) % 26);
  }
  out += '\n';
  return out;
}

// One scripted client: connect time, request bytes, and the send schedule
// (piece boundaries and times), all derived from the seed alone so the
// dispatch and reuseport runs replay identical inputs.
struct ClientScript {
  int connect_ms = 0;
  std::vector<std::pair<int, std::string>> sends;  // (time ms, piece)
};

std::vector<ClientScript> build_scripts(uint64_t seed, size_t n_clients) {
  std::mt19937_64 rng(seed);
  std::vector<ClientScript> scripts(n_clients);
  for (size_t c = 0; c < n_clients; ++c) {
    auto& script = scripts[c];
    script.connect_ms = 1 + static_cast<int>(c);
    std::string wire;
    const size_t requests = 1 + rng() % 3;
    for (size_t r = 0; r < requests; ++r) {
      const bool last = r + 1 == requests;
      wire += "GET /f" + std::to_string(rng() % 4) +
              ".txt HTTP/1.1\r\nHost: sim\r\n" +
              (last ? "Connection: close\r\n" : "") + "\r\n";
    }
    // Arbitrary TCP segmentation on top of the accept path under test.
    size_t pos = 0;
    int when = script.connect_ms + 2;
    while (pos < wire.size()) {
      const size_t chunk = 1 + rng() % (wire.size() - pos);
      script.sends.emplace_back(when, wire.substr(pos, chunk));
      pos += chunk;
      when += static_cast<int>(rng() % 3);
    }
  }
  return scripts;
}

struct SessionResult {
  std::vector<std::string> replies;  // per client, raw received bytes
  std::vector<bool> closed;
  std::vector<nserver::ShardStats> shards;
  std::vector<std::string> trace;
};

// Replays the seed's scripts against a fresh server in the requested
// accept-path configuration and returns every client's observations.
SessionResult run_scaleout_session(uint64_t seed, nserver::AcceptPath path,
                                   int shards, size_t n_clients,
                                   size_t l1_entries = 0) {
  SimEngine engine(seed);
  SCOPED_TRACE("scaleout seed=" + std::to_string(seed));

  test::TempDir dir;
  for (size_t i = 0; i < 4; ++i) {
    const std::string name = "f" + std::to_string(i) + ".txt";
    dir.write_file(name, fixture_body(i));
    // Pin the mtime: the dispatch and reuseport sessions each write their
    // own fixture copies, and a wall-clock second boundary between the two
    // would otherwise make Last-Modified differ and fail the byte-compare.
    struct utimbuf times{1000000000, 1000000000};
    ::utime((dir.path() / name).c_str(), &times);
  }

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  // The whole point of this suite is the multi-shard accept path, so the
  // shard count is restored *after* make_deterministic pinned it to one —
  // the engine's poller token rotation keeps N reactors deterministic.
  options.dispatcher_threads = shards;
  options.accept_path = path;
  options.cache_l1_entries = l1_entries;
  options.listen_port = kPort;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  EXPECT_TRUE(started.is_ok()) << started.to_string();
  if (!started.is_ok()) return {};

  const auto scripts = build_scripts(seed, n_clients);
  std::vector<SimClient*> clients;
  for (const auto& script : scripts) {
    auto* client = engine.new_client();
    clients.push_back(client);
    engine.at(milliseconds(script.connect_ms),
              [client] { client->connect(kPort); });
    for (const auto& [when, piece] : script.sends) {
      engine.at(milliseconds(when),
                [client, piece] { client->send(piece); });
    }
  }

  EXPECT_TRUE(engine.run(std::chrono::seconds(120)))
      << "session did not quiesce\n" << engine.trace_text();

  SessionResult result;
  for (auto* client : clients) {
    result.replies.push_back(client->received());
    result.closed.push_back(client->peer_closed());
  }
  result.shards = server.server().stats_snapshot().shards;
  result.trace = engine.trace();
  EXPECT_TRUE(engine.failures().empty()) << engine.trace_text();
  server.stop();
  return result;
}

// ---- the differential guarantee -------------------------------------------

class ScaleoutDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ScaleoutDifferentialTest, ReuseportMatchesDispatchByteForByte) {
  const auto seed = static_cast<uint64_t>(GetParam());
  constexpr size_t kClients = 6;
  const SessionResult dispatch = run_scaleout_session(
      seed, nserver::AcceptPath::kDispatch, /*shards=*/2, kClients);
  const SessionResult reuseport = run_scaleout_session(
      seed, nserver::AcceptPath::kReuseport, /*shards=*/2, kClients);

  ASSERT_EQ(dispatch.replies.size(), kClients);
  ASSERT_EQ(reuseport.replies.size(), kClients);
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(dispatch.replies[c], reuseport.replies[c])
        << "client " << c << " observed different reply bytes across "
        << "accept paths (seed " << seed << ")";
    EXPECT_FALSE(dispatch.replies[c].empty()) << "client " << c;
    EXPECT_EQ(dispatch.closed[c], reuseport.closed[c]) << "client " << c;
    // Every script ends with Connection: close, so both paths must close.
    EXPECT_TRUE(reuseport.closed[c]) << "client " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaleoutDifferentialTest,
                         ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---- listener-group semantics ----------------------------------------------

TEST(ScaleoutSimTest, ReuseportSpreadsConnectionsRoundRobin) {
  // Eight clients over four shards: the simulated kernel's round-robin
  // spread gives every shard exactly two accepts, and the per-shard gauges
  // (satellite: the `shard` label) report exactly that.
  const SessionResult result = run_scaleout_session(
      0x5ca1e, nserver::AcceptPath::kReuseport, /*shards=*/4,
      /*n_clients=*/8);
  ASSERT_EQ(result.shards.size(), 4u);
  uint64_t total = 0;
  for (const auto& shard : result.shards) {
    EXPECT_EQ(shard.accepts, 2u) << "shard " << shard.shard;
    EXPECT_EQ(shard.connections_open, 0u) << "shard " << shard.shard;
    total += shard.accepts;
  }
  EXPECT_EQ(total, 8u);
}

TEST(ScaleoutSimTest, DispatchKeepsTheSingleListener) {
  // Same workload through the classic path: connections still end up
  // sharded (round-robin by the server, not the kernel), so the per-shard
  // accept gauges spread even though only shard 0 owns a listener.
  const SessionResult result = run_scaleout_session(
      0x5ca1e, nserver::AcceptPath::kDispatch, /*shards=*/4,
      /*n_clients=*/8);
  ASSERT_EQ(result.shards.size(), 4u);
  uint64_t total = 0;
  for (const auto& shard : result.shards) total += shard.accepts;
  EXPECT_EQ(total, 8u);
}

TEST(ScaleoutSimTest, EveryShardWarmsItsOwnL1) {
  // Four clients, two shards, every request hits the same four files: the
  // first touch on each shard falls through to the shared L2 and promotes;
  // repeat touches are per-shard L1 hits.  Both shards must show L1
  // traffic — the tier is per shard, not global.
  const SessionResult result = run_scaleout_session(
      77, nserver::AcceptPath::kReuseport, /*shards=*/2, /*n_clients=*/4,
      /*l1_entries=*/16);
  ASSERT_EQ(result.shards.size(), 2u);
  for (const auto& shard : result.shards) {
    EXPECT_GT(shard.l1_promotions, 0u) << "shard " << shard.shard;
  }
}

// ---- determinism ------------------------------------------------------------

TEST(ScaleoutSimTest, SameSeedSameMultiShardReuseportTrace) {
  // The flagship determinism guarantee holds with four reactor threads and
  // four racing listeners: the poller token rotation serialises them into
  // a bit-identical event trace per seed.
  const SessionResult first = run_scaleout_session(
      424242, nserver::AcceptPath::kReuseport, /*shards=*/4,
      /*n_clients=*/6, /*l1_entries=*/16);
  const SessionResult second = run_scaleout_session(
      424242, nserver::AcceptPath::kReuseport, /*shards=*/4,
      /*n_clients=*/6, /*l1_entries=*/16);
  ASSERT_FALSE(first.trace.empty());
  ASSERT_EQ(first.trace.size(), second.trace.size())
      << "trace lengths diverged across identical runs";
  for (size_t i = 0; i < first.trace.size(); ++i) {
    ASSERT_EQ(first.trace[i], second.trace[i])
        << "first divergence at trace line " << i;
  }
}

}  // namespace
}  // namespace cops::simnet
