// Model-based HTTP session tests (tentpole of the simnet harness).
//
// An explicit model of the COPS-HTTP request/response contract generates
// legal and near-legal request sequences from a seeded PRNG, replays them
// through the *full* generated server stack over the simulated network —
// under both a fault-free plan and a chaos plan injecting EINTR/EAGAIN
// storms, short reads/writes, and a tiny channel capacity — and checks
// every response (status line, body bytes, close behaviour) against the
// model.  The protocol-level outcome must be identical under every fault
// plan; only the event trace (retries, splits) may differ.
//
// Every test is parameterised by its PRNG seed and prints it on failure.
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "http/http_server.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops::simnet {
namespace {

using std::chrono::milliseconds;

// Deterministic fixture content.
std::string file_a() { return "alpha file: the quick brown fox\n"; }
std::string file_b() {
  std::string out;
  out.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    out += static_cast<char>('A' + (i * 7) % 26);
  }
  return out;
}

struct ExpectedResponse {
  int status = 200;
  bool has_body = true;    // false: HEAD and 304 (no body bytes on the wire)
  bool check_body = false; // compare exact bytes (200s with known content)
  std::string body;
};

struct Scenario {
  std::string wire;  // every request, concatenated in order
  std::vector<ExpectedResponse> expected;
};

// One step of the protocol model: appends a request and its expected
// response.  `last` requests carry Connection: close.
void model_step(std::mt19937_64& rng, Scenario& s, bool last) {
  const std::string tail =
      std::string(last ? "Connection: close\r\n" : "") + "\r\n";
  ExpectedResponse expect;
  switch (rng() % 7) {
    case 0:
      s.wire += "GET /a.txt HTTP/1.1\r\nHost: sim\r\n" + tail;
      expect = {200, true, true, file_a()};
      break;
    case 1:
      s.wire += "HEAD /a.txt HTTP/1.1\r\nHost: sim\r\n" + tail;
      expect = {200, false, false, {}};
      break;
    case 2:
      s.wire += "GET /missing.txt HTTP/1.1\r\nHost: sim\r\n" + tail;
      expect = {404, true, false, {}};
      break;
    case 3:
      s.wire += "GET /empty.txt HTTP/1.1\r\nHost: sim\r\n" + tail;
      expect = {200, true, true, ""};
      break;
    case 4:
      s.wire += "GET /b.bin HTTP/1.1\r\nHost: sim\r\n" + tail;
      expect = {200, true, true, file_b()};
      break;
    case 5:
      // If-Modified-Since in the far future: always 304, no body.
      s.wire += "GET /a.txt HTTP/1.1\r\nHost: sim\r\n"
                "If-Modified-Since: Sun, 01 Jan 2040 00:00:00 GMT\r\n" + tail;
      expect = {304, false, false, {}};
      break;
    default:
      s.wire += "POST /a.txt HTTP/1.1\r\nHost: sim\r\nContent-Length: 0\r\n" +
                tail;
      expect = {405, true, false, {}};
      break;
  }
  s.expected.push_back(std::move(expect));
}

Scenario generate_scenario(std::mt19937_64& rng) {
  Scenario s;
  const int requests = 2 + static_cast<int>(rng() % 5);
  for (int i = 0; i < requests; ++i) model_step(rng, s, i == requests - 1);
  return s;
}

struct ParsedResponse {
  int status = 0;
  std::string body;
};

// Parses the client's byte stream into responses.  `expected` supplies the
// wire shape (whether body bytes follow the header block).  Returns false
// with `error` set on any framing violation.
bool parse_response_stream(const std::string& stream,
                           const std::vector<ExpectedResponse>& expected,
                           std::vector<ParsedResponse>& out,
                           std::string& error) {
  size_t pos = 0;
  for (const auto& shape : expected) {
    const size_t header_end = stream.find("\r\n\r\n", pos);
    if (header_end == std::string::npos) {
      error = "missing header terminator for response " +
              std::to_string(out.size());
      return false;
    }
    const std::string head = stream.substr(pos, header_end - pos);
    ParsedResponse resp;
    if (head.rfind("HTTP/1.1 ", 0) != 0 || head.size() < 12) {
      error = "bad status line: " + head.substr(0, 40);
      return false;
    }
    resp.status = std::stoi(head.substr(9, 3));
    size_t content_length = 0;
    // Case-insensitive header scan for Content-Length.
    std::string lower;
    lower.reserve(head.size());
    for (char c : head) lower += static_cast<char>(std::tolower(c));
    if (const size_t cl = lower.find("content-length:");
        cl != std::string::npos) {
      content_length = std::stoul(lower.substr(cl + 15));
    }
    pos = header_end + 4;
    if (shape.has_body) {
      if (pos + content_length > stream.size()) {
        error = "truncated body for response " + std::to_string(out.size());
        return false;
      }
      resp.body = stream.substr(pos, content_length);
      pos += content_length;
    }
    out.push_back(std::move(resp));
  }
  if (pos != stream.size()) {
    error = "trailing bytes after last response: " +
            std::to_string(stream.size() - pos);
    return false;
  }
  return true;
}

// Runs one generated scenario through the full stack and checks it against
// the model.  Fills `trace_out` (for the determinism test) when non-null.
void run_http_model(uint64_t seed, const FaultPlan& plan,
                    std::vector<std::string>* trace_out = nullptr) {
  SimEngine engine(seed, plan);
  SCOPED_TRACE("replay seed=" + std::to_string(seed));

  test::TempDir dir;
  dir.write_file("a.txt", file_a());
  dir.write_file("b.bin", file_b());
  dir.write_file("empty.txt", "");

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8090;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  auto started = server.start();
  ASSERT_TRUE(started.is_ok()) << started.to_string();

  std::mt19937_64 model_rng(seed);
  const Scenario scenario = generate_scenario(model_rng);

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  // Deliver the request bytes in random segments at random times: the
  // server sees arbitrary TCP segmentation on top of the fault plan.
  size_t pos = 0;
  int when_ms = 2;
  while (pos < scenario.wire.size()) {
    const size_t remaining = scenario.wire.size() - pos;
    const size_t chunk = 1 + model_rng() % remaining;
    const std::string piece = scenario.wire.substr(pos, chunk);
    engine.at(milliseconds(when_ms), [client, piece] { client->send(piece); });
    pos += chunk;
    when_ms += static_cast<int>(model_rng() % 3);
  }

  EXPECT_TRUE(engine.run(std::chrono::seconds(120)))
      << "scenario did not quiesce\n" << engine.trace_text();
  server.stop();

  // ---- check against the model -------------------------------------------
  std::vector<ParsedResponse> responses;
  std::string error;
  ASSERT_TRUE(parse_response_stream(client->received(), scenario.expected,
                                    responses, error))
      << error << "\nreceived:\n" << client->received();
  ASSERT_EQ(responses.size(), scenario.expected.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].status, scenario.expected[i].status)
        << "response " << i;
    if (scenario.expected[i].check_body) {
      EXPECT_EQ(responses[i].body, scenario.expected[i].body)
          << "response " << i;
    }
  }
  // The final request said Connection: close — the server must have closed.
  EXPECT_TRUE(client->peer_closed());
  EXPECT_TRUE(engine.failures().empty());
  if (trace_out != nullptr) *trace_out = engine.trace();
}

enum class Plan { kNone, kChaos };

FaultPlan to_plan(Plan plan) {
  return plan == Plan::kNone ? FaultPlan::none() : FaultPlan::chaos();
}

class HttpModelTest : public ::testing::TestWithParam<std::tuple<int, Plan>> {};

TEST_P(HttpModelTest, SessionMatchesModel) {
  const auto [seed, plan] = GetParam();
  run_http_model(static_cast<uint64_t>(seed), to_plan(plan));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, HttpModelTest,
    ::testing::Combine(::testing::Range(1, 13),
                       ::testing::Values(Plan::kNone, Plan::kChaos)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Plan::kNone ? "_clean" : "_chaos");
    });

// The flagship determinism guarantee: the same seed drives the full server
// stack to a bit-identical event trace, twice in a row.
TEST(HttpModelDeterminismTest, SameSeedSameFullStackTrace) {
  std::vector<std::string> first;
  std::vector<std::string> second;
  run_http_model(424242, FaultPlan::chaos(), &first);
  run_http_model(424242, FaultPlan::chaos(), &second);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size())
      << "trace lengths diverged across identical runs";
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "first divergence at trace line " << i;
  }
}

// Anti-smuggling: a pipelined POST carrying BOTH Content-Length and
// Transfer-Encoding (RFC 7230 §3.3.3) is answered with a deterministic 400
// and the connection closes *immediately* — the body and the GET smuggled
// after it must never be parsed as a second request.  A lenient server that
// picked one of the two framings would read some guessed length and then
// happily serve the smuggled GET on the same keep-alive connection.
TEST(HttpSmugglingTest, ClPlusTePostGetsOne400AndCloses) {
  for (const auto& plan : {FaultPlan::none(), FaultPlan::chaos()}) {
    SimEngine engine(31337, plan);
    test::TempDir dir;
    dir.write_file("a.txt", file_a());

    auto options = http::CopsHttpServer::default_options();
    make_deterministic(options);
    options.listen_port = 8090;
    http::HttpServerConfig config;
    config.doc_root = dir.str();
    http::CopsHttpServer server(std::move(options), config);
    ASSERT_TRUE(server.start().is_ok());

    auto* client = engine.new_client();
    engine.at(milliseconds(1), [client] { client->connect(8090); });
    engine.at(milliseconds(2), [client] {
      client->send(
          "POST /a.txt HTTP/1.1\r\n"
          "Host: sim\r\n"
          "Content-Length: 4\r\n"
          "Transfer-Encoding: chunked\r\n"
          "\r\n"
          "1c\r\nGET /a.txt HTTP/1.1\r\n\r\n\r\n0\r\n\r\n"
          "GET /a.txt HTTP/1.1\r\nHost: sim\r\n\r\n");
    });
    ASSERT_TRUE(engine.run(std::chrono::seconds(120)))
        << engine.trace_text();
    server.stop();

    const std::string& received = client->received();
    // Exactly one response, and it is the 400.
    EXPECT_EQ(received.rfind("HTTP/1.1 400", 0), 0u)
        << "first reply is not a 400:\n" << received;
    size_t status_lines = 0;
    for (size_t at = received.find("HTTP/1.1 ");
         at != std::string::npos;
         at = received.find("HTTP/1.1 ", at + 1)) {
      ++status_lines;
    }
    EXPECT_EQ(status_lines, 1u)
        << "smuggled GET was answered:\n" << received;
    EXPECT_EQ(received.find(" 200 "), std::string::npos);
    // And the connection is closed — nothing after the reject is decoded.
    EXPECT_TRUE(client->peer_closed());
    EXPECT_TRUE(engine.failures().empty());
  }
}

// Unsupported transfer codings (anything that is not exactly "chunked")
// still draw the deterministic 501 + close from before the chunked decoder
// existed: we cannot recover the framing, so nothing after the header block
// may be decoded.
TEST(HttpSmugglingTest, GzipTePostGetsOne501AndCloses) {
  SimEngine engine(31338, FaultPlan::chaos());
  test::TempDir dir;
  dir.write_file("a.txt", file_a());

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8090;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  ASSERT_TRUE(server.start().is_ok());

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  engine.at(milliseconds(2), [client] {
    client->send(
        "POST /a.txt HTTP/1.1\r\n"
        "Host: sim\r\n"
        "Transfer-Encoding: gzip\r\n"
        "\r\n"
        "GET /a.txt HTTP/1.1\r\nHost: sim\r\n\r\n");
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(120))) << engine.trace_text();
  server.stop();

  const std::string& received = client->received();
  EXPECT_EQ(received.rfind("HTTP/1.1 501", 0), 0u)
      << "first reply is not a 501:\n" << received;
  EXPECT_EQ(received.find(" 200 "), std::string::npos)
      << "smuggled GET was answered:\n" << received;
  EXPECT_TRUE(client->peer_closed());
  EXPECT_TRUE(engine.failures().empty());
}

// A well-formed chunked POST is no longer rejected: the body decodes, the
// method is answered (405 for a file server), and the connection stays
// usable — the pipelined GET is served normally.  This is the lifted 501.
TEST(HttpSmugglingTest, ValidChunkedPostDecodesAndConnectionSurvives) {
  SimEngine engine(31339, FaultPlan::none());
  test::TempDir dir;
  dir.write_file("a.txt", file_a());

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8090;
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  http::CopsHttpServer server(std::move(options), config);
  ASSERT_TRUE(server.start().is_ok());

  auto* client = engine.new_client();
  engine.at(milliseconds(1), [client] { client->connect(8090); });
  engine.at(milliseconds(2), [client] {
    client->send(
        "POST /a.txt HTTP/1.1\r\n"
        "Host: sim\r\n"
        "Transfer-Encoding: chunked\r\n"
        "\r\n"
        "5\r\nhello\r\n0\r\n\r\n"
        "GET /a.txt HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n");
  });
  ASSERT_TRUE(engine.run(std::chrono::seconds(120))) << engine.trace_text();
  server.stop();

  const std::string& received = client->received();
  EXPECT_EQ(received.rfind("HTTP/1.1 405", 0), 0u)
      << "chunked POST did not draw a 405:\n" << received;
  EXPECT_NE(received.find("HTTP/1.1 200"), std::string::npos)
      << "pipelined GET after the chunked POST was not served:\n" << received;
  EXPECT_NE(received.find(file_a()), std::string::npos);
  EXPECT_TRUE(engine.failures().empty());
}

}  // namespace
}  // namespace cops::simnet
