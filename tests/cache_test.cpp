// Tests for the file cache and the five replacement policies (option O6).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>

#include "nserver/cache_policy.hpp"
#include "nserver/file_cache.hpp"
#include "nserver/l1_cache.hpp"
#include "tests/test_util.hpp"

namespace cops::nserver {
namespace {

FileDataPtr make_file(const std::string& path, size_t size) {
  auto data = std::make_shared<FileData>();
  data->path = path;
  data->bytes.assign(size, 'x');
  return data;
}

// Snapshot a real on-disk file the way FileIoService does (contents + mtime),
// so revalidation's stat() comparison is meaningful.
FileDataPtr snapshot_disk_file(const std::string& path) {
  auto data = std::make_shared<FileData>();
  data->path = path;
  std::ifstream in(path, std::ios::binary);
  data->bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
  struct stat st{};
  EXPECT_EQ(::stat(path.c_str(), &st), 0);
  data->mtime_seconds = static_cast<int64_t>(st.st_mtime);
  return data;
}

FileCache make_cache(CachePolicyKind kind, size_t capacity,
                     size_t threshold = 64 * 1024,
                     CustomEvictionHook hook = nullptr) {
  return FileCache(make_cache_policy(kind, threshold, std::move(hook)),
                   capacity);
}

// ---------- basic cache behaviour ---------------------------------------------

TEST(FileCache, HitAfterInsert) {
  auto cache = make_cache(CachePolicyKind::kLru, 1000);
  EXPECT_TRUE(cache.insert("/a", make_file("/a", 100)));
  auto hit = cache.lookup("/a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 100u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(FileCache, MissCounts) {
  auto cache = make_cache(CachePolicyKind::kLru, 1000);
  EXPECT_EQ(cache.lookup("/nope"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(FileCache, HitRateComputed) {
  auto cache = make_cache(CachePolicyKind::kLru, 1000);
  cache.insert("/a", make_file("/a", 10));
  (void)cache.lookup("/a");
  (void)cache.lookup("/a");
  (void)cache.lookup("/b");
  EXPECT_NEAR(cache.hit_rate(), 2.0 / 3.0, 1e-9);
}

TEST(FileCache, ObjectLargerThanCapacityRefused) {
  auto cache = make_cache(CachePolicyKind::kLru, 100);
  EXPECT_FALSE(cache.insert("/big", make_file("/big", 200)));
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(FileCache, ReplaceSameKeyUpdatesBytes) {
  auto cache = make_cache(CachePolicyKind::kLru, 1000);
  cache.insert("/a", make_file("/a", 100));
  cache.insert("/a", make_file("/a", 300));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.size_bytes(), 300u);
}

TEST(FileCache, EraseRemoves) {
  auto cache = make_cache(CachePolicyKind::kLru, 1000);
  cache.insert("/a", make_file("/a", 100));
  cache.erase("/a");
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.lookup("/a"), nullptr);
}

TEST(FileCache, ClearEmptiesEverything) {
  auto cache = make_cache(CachePolicyKind::kLfu, 1000);
  cache.insert("/a", make_file("/a", 100));
  cache.insert("/b", make_file("/b", 100));
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  // Reinsertions after clear work.
  EXPECT_TRUE(cache.insert("/c", make_file("/c", 100)));
}

// ---------- stale-entry revalidation ------------------------------------------

TEST(FileCache, ChangedFileInvalidatedOnLookup) {
  test::TempDir dir;
  dir.write_file("f.txt", "one");
  const std::string path = (dir.path() / "f.txt").string();
  auto cache = make_cache(CachePolicyKind::kLru, 1000);
  cache.set_revalidate_interval(std::chrono::milliseconds(0));
  ASSERT_TRUE(cache.insert(path, snapshot_disk_file(path)));

  // Unchanged on disk: still a hit.
  ASSERT_NE(cache.lookup(path), nullptr);
  EXPECT_EQ(cache.invalidations(), 0u);

  // Rewrite with a different size (mtime alone has 1 s granularity).
  dir.write_file("f.txt", "something longer");
  EXPECT_EQ(cache.lookup(path), nullptr);  // stale entry dropped, not served
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.entry_count(), 0u);

  // The caller re-reads and re-inserts; the fresh entry hits again.
  ASSERT_TRUE(cache.insert(path, snapshot_disk_file(path)));
  auto fresh = cache.lookup(path);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->bytes, "something longer");
}

TEST(FileCache, VanishedFileInvalidatedOnLookup) {
  test::TempDir dir;
  dir.write_file("gone.txt", "data");
  const std::string path = (dir.path() / "gone.txt").string();
  auto cache = make_cache(CachePolicyKind::kLru, 1000);
  cache.set_revalidate_interval(std::chrono::milliseconds(0));
  ASSERT_TRUE(cache.insert(path, snapshot_disk_file(path)));
  std::filesystem::remove(path);
  EXPECT_EQ(cache.lookup(path), nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(FileCache, RevalidationThrottledByInterval) {
  test::TempDir dir;
  dir.write_file("f.txt", "one");
  const std::string path = (dir.path() / "f.txt").string();
  auto cache = make_cache(CachePolicyKind::kLru, 1000);
  cache.set_revalidate_interval(std::chrono::hours(1));
  ASSERT_TRUE(cache.insert(path, snapshot_disk_file(path)));
  dir.write_file("f.txt", "something longer");
  // Within the interval the stat() is skipped: the stale entry is served
  // (the O6 trade-off: bounded staleness in exchange for no stat per hit).
  EXPECT_NE(cache.lookup(path), nullptr);
  EXPECT_EQ(cache.invalidations(), 0u);
}

TEST(FileCache, DisabledPolicyRefusesInserts) {
  FileCache cache(nullptr, 1000);
  EXPECT_FALSE(cache.insert("/a", make_file("/a", 10)));
  EXPECT_STREQ(cache.policy_name(), "None");
}

// ---------- LRU -----------------------------------------------------------------

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  auto cache = make_cache(CachePolicyKind::kLru, 300);
  cache.insert("/a", make_file("/a", 100));
  cache.insert("/b", make_file("/b", 100));
  cache.insert("/c", make_file("/c", 100));
  (void)cache.lookup("/a");  // refresh a; b is now LRU
  cache.insert("/d", make_file("/d", 100));
  EXPECT_EQ(cache.lookup("/b"), nullptr);
  EXPECT_NE(cache.lookup("/a"), nullptr);
  EXPECT_NE(cache.lookup("/d"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruPolicy, EvictsMultipleForLargeInsert) {
  auto cache = make_cache(CachePolicyKind::kLru, 300);
  cache.insert("/a", make_file("/a", 100));
  cache.insert("/b", make_file("/b", 100));
  cache.insert("/c", make_file("/c", 100));
  cache.insert("/big", make_file("/big", 250));
  EXPECT_EQ(cache.lookup("/a"), nullptr);
  EXPECT_EQ(cache.lookup("/b"), nullptr);
  EXPECT_EQ(cache.lookup("/c"), nullptr);
  EXPECT_NE(cache.lookup("/big"), nullptr);
  EXPECT_EQ(cache.evictions(), 3u);
}

// ---------- LFU -----------------------------------------------------------------

TEST(LfuPolicy, EvictsLeastFrequentlyUsed) {
  auto cache = make_cache(CachePolicyKind::kLfu, 300);
  cache.insert("/a", make_file("/a", 100));
  cache.insert("/b", make_file("/b", 100));
  cache.insert("/c", make_file("/c", 100));
  (void)cache.lookup("/a");
  (void)cache.lookup("/a");
  (void)cache.lookup("/c");
  // /b has the lowest access count.
  cache.insert("/d", make_file("/d", 100));
  EXPECT_EQ(cache.lookup("/b"), nullptr);
  EXPECT_NE(cache.lookup("/a"), nullptr);
}

TEST(LfuPolicy, TieBrokenByRecency) {
  auto cache = make_cache(CachePolicyKind::kLfu, 200);
  cache.insert("/old", make_file("/old", 100));
  cache.insert("/new", make_file("/new", 100));
  // Equal frequency (1 each): the older entry goes.
  cache.insert("/x", make_file("/x", 100));
  EXPECT_EQ(cache.lookup("/old"), nullptr);
  EXPECT_NE(cache.lookup("/new"), nullptr);
}

// ---------- LRU-MIN -------------------------------------------------------------

TEST(LruMinPolicy, PrefersEvictingLargeFiles) {
  auto cache = make_cache(CachePolicyKind::kLruMin, 1000);
  cache.insert("/small1", make_file("/small1", 50));
  cache.insert("/large", make_file("/large", 800));
  cache.insert("/small2", make_file("/small2", 100));
  // Incoming 100-byte object: LRU-MIN evicts an entry >= 100 bytes (the
  // large one), not the least-recently-used small one.
  cache.insert("/new", make_file("/new", 100));
  EXPECT_EQ(cache.lookup("/large"), nullptr);
  EXPECT_NE(cache.lookup("/small1"), nullptr);
  EXPECT_NE(cache.lookup("/small2"), nullptr);
}

TEST(LruMinPolicy, HalvesThresholdWhenNoLargeCandidate) {
  auto cache = make_cache(CachePolicyKind::kLruMin, 200);
  cache.insert("/a", make_file("/a", 60));
  cache.insert("/b", make_file("/b", 60));
  cache.insert("/c", make_file("/c", 60));
  // Incoming 150 > any entry: threshold halves (150→75→37) until the LRU
  // small file qualifies.
  cache.insert("/incoming", make_file("/incoming", 150));
  EXPECT_NE(cache.lookup("/incoming"), nullptr);
  EXPECT_LE(cache.size_bytes(), 200u);
}

// ---------- LRU-Threshold --------------------------------------------------------

TEST(LruThresholdPolicy, RefusesOversizedObjects) {
  auto cache = make_cache(CachePolicyKind::kLruThreshold, 10000,
                          /*threshold=*/500);
  EXPECT_FALSE(cache.insert("/big", make_file("/big", 501)));
  EXPECT_TRUE(cache.insert("/ok", make_file("/ok", 500)));
}

TEST(LruThresholdPolicy, EvictsLikeLruBelowThreshold) {
  auto cache = make_cache(CachePolicyKind::kLruThreshold, 250,
                          /*threshold=*/500);
  cache.insert("/a", make_file("/a", 100));
  cache.insert("/b", make_file("/b", 100));
  (void)cache.lookup("/a");
  cache.insert("/c", make_file("/c", 100));
  EXPECT_EQ(cache.lookup("/b"), nullptr);
  EXPECT_NE(cache.lookup("/a"), nullptr);
}

// ---------- Hyper-G ---------------------------------------------------------------

TEST(HyperGPolicy, FrequencyFirst) {
  auto cache = make_cache(CachePolicyKind::kHyperG, 300);
  cache.insert("/hot", make_file("/hot", 100));
  cache.insert("/cold", make_file("/cold", 100));
  cache.insert("/warm", make_file("/warm", 100));
  (void)cache.lookup("/hot");
  (void)cache.lookup("/hot");
  (void)cache.lookup("/warm");
  cache.insert("/new", make_file("/new", 100));
  EXPECT_EQ(cache.lookup("/cold"), nullptr);
  EXPECT_NE(cache.lookup("/hot"), nullptr);
}

TEST(HyperGPolicy, FrequencyTieBrokenByRecency) {
  auto cache = make_cache(CachePolicyKind::kHyperG, 200);
  cache.insert("/first", make_file("/first", 100));
  cache.insert("/second", make_file("/second", 100));
  cache.insert("/third", make_file("/third", 100));
  EXPECT_EQ(cache.lookup("/first"), nullptr);
  EXPECT_NE(cache.lookup("/second"), nullptr);
}

// ---------- Custom hook -------------------------------------------------------------

TEST(CustomPolicy, HookChoosesVictim) {
  // Evict the largest entry, whatever the recency (a user-supplied policy).
  CustomEvictionHook hook =
      [](const std::unordered_map<std::string, CacheEntryInfo>& entries,
         size_t) -> std::optional<std::string> {
    const CacheEntryInfo* victim = nullptr;
    for (const auto& [key, info] : entries) {
      if (victim == nullptr || info.size > victim->size) victim = &info;
    }
    return victim == nullptr ? std::nullopt
                             : std::optional<std::string>(victim->key);
  };
  auto cache =
      make_cache(CachePolicyKind::kCustom, 1000, 64 * 1024, std::move(hook));
  cache.insert("/small", make_file("/small", 100));
  cache.insert("/large", make_file("/large", 850));
  cache.insert("/x", make_file("/x", 100));
  EXPECT_EQ(cache.lookup("/large"), nullptr);
  EXPECT_NE(cache.lookup("/small"), nullptr);
}

TEST(CustomPolicy, MissingHookRefusesInsertWhenFull) {
  auto cache = make_cache(CachePolicyKind::kCustom, 150);
  EXPECT_TRUE(cache.insert("/a", make_file("/a", 100)));
  EXPECT_FALSE(cache.insert("/b", make_file("/b", 100)));  // cannot evict
}

// ---------- capacity property across policies ---------------------------------------

class CachePolicyParamTest
    : public ::testing::TestWithParam<CachePolicyKind> {};

TEST_P(CachePolicyParamTest, NeverExceedsCapacity) {
  auto cache = make_cache(GetParam(), 1500, /*threshold=*/400);
  std::mt19937 rng(3);
  std::uniform_int_distribution<size_t> size_dist(10, 390);
  for (int i = 0; i < 300; ++i) {
    const std::string key = "/f" + std::to_string(i % 40);
    if (i % 3 == 0) {
      (void)cache.lookup(key);
    } else {
      cache.insert(key, make_file(key, size_dist(rng)));
    }
    ASSERT_LE(cache.size_bytes(), 1500u) << "policy violated capacity";
  }
  EXPECT_GT(cache.entry_count(), 0u);
}

TEST_P(CachePolicyParamTest, LookupAfterManyEvictionsStillConsistent) {
  auto cache = make_cache(GetParam(), 800, /*threshold=*/400);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "/k" + std::to_string(i);
    cache.insert(key, make_file(key, 100));
  }
  // Entry count must match the bytes accounting (8 × 100 fits).
  EXPECT_LE(cache.entry_count(), 8u);
  EXPECT_EQ(cache.size_bytes(), cache.entry_count() * 100);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyParamTest,
                         ::testing::Values(CachePolicyKind::kLru,
                                           CachePolicyKind::kLfu,
                                           CachePolicyKind::kLruMin,
                                           CachePolicyKind::kLruThreshold,
                                           CachePolicyKind::kHyperG));

// ---------- two-tier split: the per-shard L1 ----------------------------------

constexpr auto kTtl = std::chrono::milliseconds(60000);

TEST(L1FileCache, HitAfterPromoteUnderCurrentEpoch) {
  L1FileCache l1(8, 4096, kTtl);
  l1.promote("/a", make_file("/a", 100), /*epoch=*/1);
  auto hit = l1.lookup("/a", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 100u);
  EXPECT_EQ(l1.hits(), 1u);
  EXPECT_EQ(l1.promotions(), 1u);
}

TEST(L1FileCache, StaleEpochIsAMiss) {
  // An entry promoted under epoch E must vanish the moment the L2 reports
  // E+1 — that is how erase/clear/invalidation reach every shard replica.
  L1FileCache l1(8, 4096, kTtl);
  l1.promote("/a", make_file("/a", 100), 1);
  EXPECT_EQ(l1.lookup("/a", 2), nullptr);
  EXPECT_EQ(l1.misses(), 1u);
  // Re-promotion under the new epoch serves again.
  l1.promote("/a", make_file("/a", 100), 2);
  EXPECT_NE(l1.lookup("/a", 2), nullptr);
}

TEST(L1FileCache, TtlZeroStepsAsideEntirely) {
  // Same contract as the L2's revalidate interval 0: every lookup must
  // re-check, so the L1 never serves.
  L1FileCache l1(8, 4096, std::chrono::milliseconds(0));
  l1.promote("/a", make_file("/a", 100), 1);
  EXPECT_EQ(l1.lookup("/a", 1), nullptr);
  EXPECT_EQ(l1.hits(), 0u);
}

TEST(L1FileCache, OversizedEntryStaysL2Only) {
  L1FileCache l1(8, /*entry_max_bytes=*/256, kTtl);
  l1.promote("/big", make_file("/big", 1000), 1);
  EXPECT_EQ(l1.promotions(), 0u);
  EXPECT_EQ(l1.lookup("/big", 1), nullptr);
}

TEST(L1FileCache, WrongKeyInSharedSlotIsAMiss) {
  // Direct-mapped: whatever occupies the slot, a key mismatch must never
  // serve another file's bytes.
  L1FileCache l1(1, 4096, kTtl);  // every key maps to the single slot
  l1.promote("/a", make_file("/a", 10), 1);
  EXPECT_EQ(l1.lookup("/b", 1), nullptr);
  // A colliding promotion displaces the previous occupant.
  l1.promote("/b", make_file("/b", 20), 1);
  EXPECT_EQ(l1.lookup("/a", 1), nullptr);
  ASSERT_NE(l1.lookup("/b", 1), nullptr);
}

TEST(L1FileCache, ClearDropsEverySlot) {
  L1FileCache l1(8, 4096, kTtl);
  l1.promote("/a", make_file("/a", 10), 1);
  l1.promote("/b", make_file("/b", 10), 1);
  l1.clear();
  EXPECT_EQ(l1.lookup("/a", 1), nullptr);
  EXPECT_EQ(l1.lookup("/b", 1), nullptr);
}

TEST(L1FileCache, HitRateComputed) {
  L1FileCache l1(8, 4096, kTtl);
  l1.promote("/a", make_file("/a", 10), 1);
  (void)l1.lookup("/a", 1);
  (void)l1.lookup("/a", 1);
  (void)l1.lookup("/b", 1);
  EXPECT_NEAR(l1.hit_rate(), 2.0 / 3.0, 1e-9);
}

TEST(FileCache, InvalidationEpochBumpsOnEraseAndClearNotOnEviction) {
  auto cache = make_cache(CachePolicyKind::kLru, 300);
  const uint64_t start = cache.invalidation_epoch();

  // Capacity eviction leaves the on-disk files unchanged — L1 replicas of
  // the evicted entries are still byte-correct, so the epoch must hold.
  cache.insert("/a", make_file("/a", 100));
  cache.insert("/b", make_file("/b", 100));
  cache.insert("/c", make_file("/c", 100));
  cache.insert("/d", make_file("/d", 100));  // evicts
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_EQ(cache.invalidation_epoch(), start);

  cache.erase("/d");
  const uint64_t after_erase = cache.invalidation_epoch();
  EXPECT_GT(after_erase, start);
  cache.clear();
  EXPECT_GT(cache.invalidation_epoch(), after_erase);
}

}  // namespace
}  // namespace cops::nserver
