// Adaptive overload manager (overload = adaptive) — unit and scenario tests.
//
// Unit layers: the CoDel sliding-minimum queue-delay monitor, the graduated
// tier latches (engage ascending / release descending, with hysteresis),
// the pressure-decay-derived Retry-After bounds, the watermark controller's
// dead-queue regression (a removed or stale queue must not wedge the
// acceptor suspended), and the quota-queue pause floor behind the tier-2
// action.
//
// Scenario layer (simnet, `chaos` label): a seeded 10× arrival spike into
// COPS-HTTP with a modeled per-request CPU cost.  The adaptive manager must
// bound the p99 latency of *admitted* requests by shedding the rest with
// 503 + Retry-After, then release every action once the spike drains; the
// classical watermark controller — which watches queue *length*, always
// zero in the inline SPED pipeline — admits everything and lets the backlog
// latency grow unbounded.  Same seed, same trace, twice.
#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/quota_priority_queue.hpp"
#include "http/http_server.hpp"
#include "nserver/event_processor.hpp"
#include "nserver/overload_control.hpp"
#include "nserver/overload_manager.hpp"
#include "simnet/sim_harness.hpp"
#include "tests/test_util.hpp"

namespace cops::nserver {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

// ---- QueueDelayMonitor (CoDel sliding minimum) -------------------------------

TEST(QueueDelayMonitorTest, BurstForgivenStandingQueueFlagged) {
  QueueDelayMonitor monitor("q", milliseconds(5), milliseconds(100));
  const auto t = now();

  // A burst: one terrible sample next to one near-zero sample.  The sliding
  // *minimum* sees the good sample, so pressure stays low.
  monitor.record_delay(milliseconds(50));
  monitor.record_delay(milliseconds(0));
  auto reading = monitor.sample(t + milliseconds(1));
  EXPECT_LT(reading.pressure, 0.1) << "burst must be forgiven";

  // A standing queue: every sample in the window is above 2x target.
  monitor.record_delay(milliseconds(20));
  monitor.record_delay(milliseconds(30));
  monitor.record_delay(milliseconds(25));
  reading = monitor.sample(t + milliseconds(1));
  // The old near-zero sample is still inside the window, so min wins...
  EXPECT_LT(reading.pressure, 0.1);
  // ...until the window slides past it.
  reading = monitor.sample(t + milliseconds(300));
  EXPECT_DOUBLE_EQ(reading.pressure, 0.0) << "empty window means idle";

  monitor.record_delay(milliseconds(20));
  monitor.record_delay(milliseconds(30));
  reading = monitor.sample(now() + milliseconds(1));
  EXPECT_DOUBLE_EQ(reading.pressure, 1.0) << "standing queue at 2x target";
  EXPECT_NEAR(reading.raw, 0.020, 1e-9);
}

TEST(QueueDelayMonitorTest, PressureIsHalfAtTarget) {
  QueueDelayMonitor monitor("q", milliseconds(10), milliseconds(100));
  monitor.record_delay(milliseconds(10));
  const auto reading = monitor.sample(now() + milliseconds(1));
  // delay == target maps to 0.5, exactly the tier-1 engage threshold.
  EXPECT_DOUBLE_EQ(reading.pressure, 0.5);
}

// ---- graduated tiers ---------------------------------------------------------

// Drives the manager with a single externally-controlled gauge (alpha 1.0:
// no smoothing, the level IS the pressure) and logs every action
// transition.
struct TierHarness {
  explicit TierHarness(OverloadManagerConfig config) : manager(config) {
    level = std::make_shared<double>(0.0);
    auto value = [lvl = level] { return *lvl; };
    manager.add_monitor(
        std::make_unique<GaugeMonitor>("load", value, 1.0));
    OverloadActions actions;
    actions.conserve = [this](bool on) {
      log.push_back(on ? "+conserve" : "-conserve");
    };
    actions.pause_low_priority = [this](bool on) {
      log.push_back(on ? "+pause" : "-pause");
    };
    actions.shed = [this](bool on) { log.push_back(on ? "+shed" : "-shed"); };
    actions.stop_accept = [this](bool on) {
      log.push_back(on ? "+stop" : "-stop");
    };
    manager.set_actions(std::move(actions));
  }

  void step(double pressure) {
    *level = pressure;
    t += seconds(1);
    manager.tick(t);
  }

  OverloadManager manager;
  std::shared_ptr<double> level;
  std::vector<std::string> log;
  TimePoint t = now();
};

OverloadManagerConfig no_smoothing_config() {
  OverloadManagerConfig config;
  config.ewma_alpha = 1.0;
  return config;
}

std::vector<std::string> run_ramp(const std::vector<double>& levels) {
  TierHarness harness(no_smoothing_config());
  for (double level : levels) harness.step(level);
  return harness.log;
}

TEST(OverloadManagerTest, TiersEngageAscendingReleaseDescending) {
  // Rising ramp engages in severity order; falling ramp releases in exact
  // reverse — the quota-class pause engages before shedding and releases
  // after shedding ends, with hysteresis gaps (release at threshold - 0.10).
  const std::vector<double> ramp = {0.30, 0.55, 0.70, 0.85, 0.95,
                                    0.80, 0.68, 0.54, 0.35};
  const std::vector<std::string> expected = {
      "+conserve", "+pause", "+shed", "+stop",
      "-stop", "-shed", "-pause", "-conserve"};
  EXPECT_EQ(run_ramp(ramp), expected);
  // Deterministic: the same ramp yields the identical transition log.
  EXPECT_EQ(run_ramp(ramp), run_ramp(ramp));
}

TEST(OverloadManagerTest, HysteresisHoldsTierAcrossSmallDips) {
  TierHarness harness(no_smoothing_config());
  harness.step(0.85);  // engage conserve+pause+shed
  EXPECT_EQ(harness.manager.tier(), OverloadTier::kShed);
  harness.step(0.75);  // inside the hysteresis band (release at 0.70)
  EXPECT_EQ(harness.manager.tier(), OverloadTier::kShed)
      << "a dip inside the hysteresis band must not flap the tier";
  harness.step(0.69);  // below 0.70: shed releases, pause (0.55) holds
  EXPECT_EQ(harness.manager.tier(), OverloadTier::kPauseLowPriority);
}

TEST(OverloadManagerTest, SnapshotReportsMonitorsAndTier) {
  TierHarness harness(no_smoothing_config());
  harness.step(0.85);
  const auto snap = harness.manager.snapshot();
  ASSERT_EQ(snap.monitors.size(), 1u);
  EXPECT_EQ(snap.monitors[0].name, "load");
  EXPECT_DOUBLE_EQ(snap.monitors[0].smoothed, 0.85);
  EXPECT_DOUBLE_EQ(snap.pressure, 0.85);
  EXPECT_EQ(snap.tier, OverloadTier::kShed);
  EXPECT_TRUE(snap.conserving);
  EXPECT_TRUE(snap.low_priority_paused);
  EXPECT_TRUE(snap.shedding);
  EXPECT_FALSE(snap.accept_stopped);
  EXPECT_EQ(snap.ticks, 1u);
}

// ---- Retry-After derivation (satellite: bounds) ------------------------------

TEST(OverloadManagerTest, RetryAfterDerivedFromDecayAndClamped) {
  OverloadManagerConfig config = no_smoothing_config();
  config.retry_after_min = seconds(2);
  config.retry_after_max = seconds(20);
  TierHarness harness(config);

  // First tick under pressure: no decay history yet — advertise the max.
  harness.step(0.90);
  EXPECT_EQ(harness.manager.retry_after_hint(), seconds(20));

  // Flat pressure: still no measurable decay — max.
  harness.step(0.90);
  EXPECT_EQ(harness.manager.retry_after_hint(), seconds(20));

  // Decaying 0.05/s from 0.85 toward the shed-release point 0.70:
  // (0.85 - 0.70) / 0.05 = 3 seconds.
  harness.step(0.85);
  EXPECT_EQ(harness.manager.retry_after_hint(), seconds(3));

  // A glacial decay estimate clamps to the max...
  harness.step(0.849);
  EXPECT_EQ(harness.manager.retry_after_hint(), seconds(20));

  // ...a cliff clamps to the min...
  harness.step(0.71);
  EXPECT_EQ(harness.manager.retry_after_hint(), seconds(2));

  // ...and at/below the release point the hint floors at the min.
  harness.step(0.50);
  EXPECT_EQ(harness.manager.retry_after_hint(), seconds(2));

  // Rising pressure never advertises a short retry.
  harness.step(0.95);
  EXPECT_EQ(harness.manager.retry_after_hint(), seconds(20));
}

// ---- OverloadController dead-queue regression (satellite 1) ------------------

TEST(OverloadControllerTest, GoneQueueCannotWedgeAcceptorSuspended) {
  // Regression: evaluate() used to take every depth callback's value at
  // face value, so a subsystem that was stopped while the controller was
  // suspended (its callback returning SIZE_MAX or a frozen huge depth)
  // could never drain below the low watermark — the acceptor stayed
  // suspended forever.
  OverloadController controller(10, 3);
  size_t depth = 20;
  bool gone = false;
  controller.watch_queue("q", [&] {
    return gone ? OverloadController::kQueueGone : depth;
  });

  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kSuspend);
  EXPECT_TRUE(controller.overloaded());

  // The queue's subsystem dies; its depth callback now reports kQueueGone.
  gone = true;
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kResume)
      << "a gone queue must not hold the acceptor suspended";
  EXPECT_FALSE(controller.overloaded());

  // And a gone queue never triggers a suspension either.
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kNoChange);
}

TEST(OverloadControllerTest, UnwatchReleasesSuspension) {
  OverloadController controller(10, 3);
  controller.watch_queue("busy", [] { return size_t{50}; });
  controller.watch_queue("calm", [] { return size_t{0}; });
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kSuspend);

  // Removing the queue that tripped the watermark lets the next evaluation
  // judge only the remaining (calm) queue and resume.
  controller.unwatch_queue("busy");
  EXPECT_EQ(controller.evaluate(), OverloadController::Decision::kResume);
}

// ---- quota-queue pause floor (tier-2 mechanism) ------------------------------

TEST(QuotaPriorityQueueTest, PausedFloorParksLowerLevels) {
  QuotaPriorityQueue<int> queue({2, 1});
  ASSERT_TRUE(queue.push(1, 0));
  ASSERT_TRUE(queue.push(2, 1));
  ASSERT_TRUE(queue.push(3, 1));

  queue.set_paused_floor(1);  // only level 0 drains
  auto popped = queue.try_pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 1);
  EXPECT_FALSE(queue.try_pop().has_value()) << "level 1 is paused";
  EXPECT_EQ(queue.size(), 2u) << "paused items stay queued";

  // Pushes are still accepted while paused.
  ASSERT_TRUE(queue.push(4, 1));

  queue.set_paused_floor(static_cast<size_t>(-1));
  std::vector<int> drained;
  while (auto item = queue.try_pop()) drained.push_back(*item);
  EXPECT_EQ(drained, (std::vector<int>{2, 3, 4}));
}

TEST(QuotaPriorityQueueTest, ShutdownDrainsThroughPause) {
  QuotaPriorityQueue<int> queue({1, 1});
  ASSERT_TRUE(queue.push(7, 1));
  queue.set_paused_floor(1);
  queue.shutdown();
  // stop() must still drain parked events — pause never deadlocks
  // shutdown.
  auto popped = queue.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 7);
}

TEST(EventProcessorTest, PauseLowPriorityParksQuotaLevels) {
  EventProcessorConfig config;
  config.name = "test";
  config.threads = 1;
  config.scheduling = true;
  config.priority_quotas = {8, 1};
  EventProcessor processor(config);

  processor.pause_low_priority(true);
  EXPECT_TRUE(processor.low_priority_paused());

  std::atomic<int> low_runs{0};
  std::atomic<int> high_runs{0};
  for (int i = 0; i < 3; ++i) {
    Event event;
    event.kind = EventKind::kUser;
    event.priority = 1;
    event.action = [&low_runs] { low_runs.fetch_add(1); };
    ASSERT_TRUE(processor.submit(std::move(event)));
  }
  Event high;
  high.kind = EventKind::kUser;
  high.priority = 0;
  high.action = [&high_runs] { high_runs.fetch_add(1); };
  ASSERT_TRUE(processor.submit(std::move(high)));

  // The high-priority event drains while the low levels stay parked.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (high_runs.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(high_runs.load(), 1);
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(low_runs.load(), 0) << "paused levels must not drain";
  EXPECT_EQ(processor.queue_depth(), 3u);

  processor.pause_low_priority(false);
  while (low_runs.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(low_runs.load(), 3);
  processor.stop();
}

}  // namespace
}  // namespace cops::nserver

// ---- simnet spike scenarios --------------------------------------------------

namespace cops::simnet {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;
using std::chrono::seconds;

struct SpikeOutcome {
  int admitted = 0;             // 200 responses
  int shed = 0;                 // 503 responses
  int no_response = 0;
  double p99_admitted_ms = 0.0;
  long retry_after_lo = 1 << 30;  // observed Retry-After bounds on 503s
  long retry_after_hi = 0;
  bool late_probe_admitted = false;
  nserver::OverloadSnapshot final_state;
  std::vector<std::string> trace;
};

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

// One seeded spike run: a modest baseline arrival rate, a 10x spike, then
// silence and a late probe request that must be admitted after recovery.
// Every request carries Connection: close, so each client maps to exactly
// one response and the server closes the connection.
SpikeOutcome run_spike(uint64_t seed, nserver::OverloadMode mode) {
  SimEngine engine(seed, FaultPlan::none());
  test::TempDir dir;
  dir.write_file("a.txt", "spike fixture\n");

  auto options = http::CopsHttpServer::default_options();
  make_deterministic(options);
  options.listen_port = 8090;
  options.overload_control = true;
  options.overload_mode = mode;
  options.overload_target_delay = milliseconds(5);
  options.overload_interval = milliseconds(50);
  options.overload_ewma_alpha = 0.5;
  options.overload_retry_after = seconds(1);
  options.overload_retry_after_max = seconds(30);
  options.housekeeping_interval = milliseconds(10);
  http::HttpServerConfig config;
  config.doc_root = dir.str();
  // The modeled bottleneck: 20ms of (virtual) CPU per admitted request —
  // 50 req/s of capacity.  Shed 503s skip this cost by design.
  config.handle_delay = milliseconds(20);
  http::CopsHttpServer server(std::move(options), config);
  EXPECT_TRUE(server.start().is_ok());

  const std::string request =
      "GET /a.txt HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n";

  struct Probe {
    SimClient* client = nullptr;
    std::shared_ptr<double> sent_ms;       // virtual send time
    std::shared_ptr<double> first_byte_ms;  // virtual first-byte time
  };
  std::vector<Probe> probes;
  auto launch = [&](microseconds when) {
    Probe probe;
    probe.client = engine.new_client();
    probe.sent_ms = std::make_shared<double>(-1.0);
    probe.first_byte_ms = std::make_shared<double>(-1.0);
    auto sent = probe.sent_ms;
    auto mark = probe.first_byte_ms;
    probe.client->on_data = [mark](std::string_view) {
      if (*mark < 0.0) {
        *mark = to_seconds(now().time_since_epoch()) * 1000.0;
      }
    };
    auto* client = probe.client;
    engine.at(when, [client, request, sent] {
      *sent = to_seconds(now().time_since_epoch()) * 1000.0;
      client->connect(8090);
      client->send(request);
    });
    probes.push_back(std::move(probe));
  };

  // Baseline: ~33 req/s (utilization 0.66) for 300ms.
  for (int i = 0; i < 10; ++i) {
    launch(microseconds(100000 + i * 30000));
  }
  // Spike: 10x the baseline arrival rate (400 req/s) for 250ms.
  const size_t spike_begin = probes.size();
  for (int i = 0; i < 100; ++i) {
    launch(microseconds(400000 + i * 2500));
  }
  (void)spike_begin;
  // Late probe, well after the spike drains: recovery must admit it.
  const size_t late_index = probes.size();
  launch(microseconds(8000000));

  EXPECT_TRUE(engine.run(seconds(120))) << "spike did not quiesce";

  SpikeOutcome outcome;
  std::vector<double> admitted_latencies;
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto& probe = probes[i];
    const std::string& received = probe.client->received();
    if (received.rfind("HTTP/1.1 200", 0) == 0) {
      ++outcome.admitted;
      if (*probe.first_byte_ms >= 0.0 && *probe.sent_ms >= 0.0) {
        admitted_latencies.push_back(*probe.first_byte_ms - *probe.sent_ms);
      }
      if (i == late_index) outcome.late_probe_admitted = true;
    } else if (received.rfind("HTTP/1.1 503", 0) == 0) {
      ++outcome.shed;
      const size_t at = received.find("Retry-After: ");
      if (at != std::string::npos) {
        const long value = std::stol(received.substr(at + 13));
        outcome.retry_after_lo = std::min(outcome.retry_after_lo, value);
        outcome.retry_after_hi = std::max(outcome.retry_after_hi, value);
      } else {
        engine.fail("503 without Retry-After");
      }
    } else {
      ++outcome.no_response;
    }
  }
  outcome.p99_admitted_ms = percentile(admitted_latencies, 0.99);
  if (auto* manager = server.server().overload_manager()) {
    outcome.final_state = manager->snapshot();
  }
  outcome.trace = engine.trace();
  EXPECT_TRUE(engine.failures().empty()) << engine.trace_text();
  server.stop();
  return outcome;
}

TEST(OverloadSpikeTest, AdaptiveBoundsAdmittedP99WatermarkDoesNot) {
  const auto adaptive = run_spike(777, nserver::OverloadMode::kAdaptive);
  const auto watermark = run_spike(777, nserver::OverloadMode::kWatermark);

  // The watermark controller watches queue *length* — identically zero in
  // the inline SPED pipeline — so it admits the whole spike and the backlog
  // latency grows with it.  Everything gets a response, nothing is shed.
  EXPECT_EQ(watermark.shed, 0);
  EXPECT_EQ(watermark.no_response, 0);
  EXPECT_EQ(watermark.admitted, 111);
  EXPECT_GT(watermark.p99_admitted_ms, 1000.0)
      << "the spike is supposed to build a >1s backlog under watermark";

  // The adaptive manager sheds the excess and keeps the admitted tail
  // bounded.
  EXPECT_GT(adaptive.shed, 10) << "adaptive run must shed part of the spike";
  EXPECT_EQ(adaptive.no_response, 0);
  EXPECT_GT(adaptive.admitted, 10);
  EXPECT_LT(adaptive.p99_admitted_ms, watermark.p99_admitted_ms / 2.0);
  EXPECT_LT(adaptive.p99_admitted_ms, 1500.0);

  // Shed 503s advertise a Retry-After inside the configured clamp.
  EXPECT_GE(adaptive.retry_after_lo, 1);
  EXPECT_LE(adaptive.retry_after_hi, 30);

  // Steady state again: the spike drained long before the late probe, so
  // every action released and the probe was admitted.
  EXPECT_TRUE(adaptive.late_probe_admitted);
  EXPECT_EQ(adaptive.final_state.tier, nserver::OverloadTier::kNone);
  EXPECT_FALSE(adaptive.final_state.conserving);
  EXPECT_FALSE(adaptive.final_state.low_priority_paused);
  EXPECT_FALSE(adaptive.final_state.shedding);
  EXPECT_FALSE(adaptive.final_state.accept_stopped);
}

TEST(OverloadSpikeTest, SameSeedSameTrace) {
  const auto first = run_spike(424242, nserver::OverloadMode::kAdaptive);
  const auto second = run_spike(424242, nserver::OverloadMode::kAdaptive);
  ASSERT_FALSE(first.trace.empty());
  ASSERT_EQ(first.trace.size(), second.trace.size())
      << "trace lengths diverged across identical runs";
  for (size_t i = 0; i < first.trace.size(); ++i) {
    ASSERT_EQ(first.trace[i], second.trace[i])
        << "first divergence at trace line " << i;
  }
  EXPECT_EQ(first.admitted, second.admitted);
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_EQ(first.p99_admitted_ms, second.p99_admitted_ms);
}

}  // namespace
}  // namespace cops::simnet
