// TimerQueue cancel-under-fire and OverloadController admission-edge tests
// on the *simulated* clock — no real sleeps anywhere (a 10-minute timer
// storm runs in microseconds of wall time).
#include <chrono>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "net/timer_queue.hpp"
#include "nserver/overload_control.hpp"
#include "simnet/sim_engine.hpp"

namespace cops {
namespace {

using std::chrono::milliseconds;
using std::chrono::minutes;
using std::chrono::seconds;

// RAII virtual clock for tests that need no channels: SimEngine installs
// both seams; we only use the clock and advance().
class SimClockFixture : public ::testing::Test {
 protected:
  simnet::SimEngine engine_{99};
};

// ---- TimerQueue on the virtual clock ---------------------------------------

TEST_F(SimClockFixture, TimersFireInDeadlineOrderAcrossClockAdvances) {
  net::TimerQueue timers;
  std::vector<int> fired;
  timers.schedule_after(milliseconds(30), [&] { fired.push_back(3); });
  timers.schedule_after(milliseconds(10), [&] { fired.push_back(1); });
  timers.schedule_after(milliseconds(20), [&] { fired.push_back(2); });

  engine_.advance(milliseconds(15));
  timers.run_due();
  EXPECT_EQ(fired, (std::vector<int>{1}));
  engine_.advance(milliseconds(100));
  timers.run_due();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(timers.pending(), 0u);
}

TEST_F(SimClockFixture, CancelUnderFire) {
  // A timer callback cancels a sibling due in the same batch: the sibling
  // must not fire even though it was already due when run_due() started.
  net::TimerQueue timers;
  std::vector<int> fired;
  net::TimerQueue::TimerId victim = 0;
  timers.schedule_after(milliseconds(10), [&] {
    fired.push_back(1);
    timers.cancel(victim);
  });
  victim = timers.schedule_after(milliseconds(20), [&] { fired.push_back(2); });
  timers.schedule_after(milliseconds(30), [&] { fired.push_back(3); });

  engine_.advance(milliseconds(60));
  timers.run_due();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  EXPECT_EQ(timers.pending(), 0u);
}

TEST_F(SimClockFixture, CallbackReschedulesItselfWithoutLivelock) {
  // A periodic timer re-arming from its own callback must fire once per
  // run_due batch, not loop forever on an already-passed deadline.
  net::TimerQueue timers;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    timers.schedule_after(milliseconds(10), tick);
  };
  timers.schedule_after(milliseconds(10), tick);
  for (int i = 0; i < 5; ++i) {
    engine_.advance(milliseconds(10));
    timers.run_due();
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(timers.pending(), 1u);
}

TEST_F(SimClockFixture, ClockJumpFiresEverythingDue) {
  // A large forward clock jump (NTP step, suspended VM) must fire every
  // timer exactly once, in order.
  net::TimerQueue timers;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    timers.schedule_after(seconds(i + 1), [&fired, i] { fired.push_back(i); });
  }
  engine_.advance(minutes(10));  // jump past all deadlines at once
  EXPECT_EQ(timers.run_due(), 100u);
  ASSERT_EQ(fired.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[i], i);
}

TEST_F(SimClockFixture, CancelStormDoesNotGrowHeapUnboundedly) {
  // Schedule/cancel churn (every request under O7 re-arms an idle timer):
  // tombstones must be compacted, keeping heap_size < 2x pending.
  net::TimerQueue timers;
  std::mt19937_64 rng(7);
  std::vector<net::TimerQueue::TimerId> live;
  for (int round = 0; round < 2000; ++round) {
    live.push_back(
        timers.schedule_after(milliseconds(1 + rng() % 1000), [] {}));
    if (live.size() > 1 && rng() % 2 == 0) {
      const size_t idx = rng() % live.size();
      timers.cancel(live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
  }
  EXPECT_LT(timers.heap_size(), 2 * timers.pending() + 2)
      << "tombstones were not compacted";
  // And exactly the survivors fire.
  engine_.advance(seconds(2));
  EXPECT_EQ(timers.run_due(), live.size());
  EXPECT_EQ(timers.pending(), 0u);
}

TEST_F(SimClockFixture, NextTimeoutNeverRoundsToZeroEarly) {
  // next_timeout_ms rounds *up*: a timer 1ns in the future must yield a
  // strictly positive timeout, or a poll loop would spin on CPU.
  net::TimerQueue timers;
  timers.schedule_at(now() + std::chrono::microseconds(1500), [] {});
  const int ms = timers.next_timeout_ms(500);
  EXPECT_GE(ms, 1);
  EXPECT_LE(ms, 2);
  // Cancelled timer at the top must not cause a spurious early wakeup.
  net::TimerQueue timers2;
  auto id = timers2.schedule_after(milliseconds(5), [] {});
  timers2.schedule_after(milliseconds(400), [] {});
  timers2.cancel(id);
  const int ms2 = timers2.next_timeout_ms(500);
  EXPECT_GE(ms2, 399);
}

// ---- OverloadController admission edges ------------------------------------

TEST(OverloadControlEdgeTest, ExactlyAtHighWatermarkDoesNotSuspend) {
  // The paper says "exceeds its specified high watermark": depth == high is
  // not overload.
  nserver::OverloadController control(/*high=*/20, /*low=*/5);
  size_t depth = 20;
  control.watch_queue("q", [&] { return depth; });
  EXPECT_EQ(control.evaluate(), nserver::OverloadController::Decision::kNoChange);
  depth = 21;
  EXPECT_EQ(control.evaluate(), nserver::OverloadController::Decision::kSuspend);
  EXPECT_TRUE(control.overloaded());
}

TEST(OverloadControlEdgeTest, ExactlyAtLowWatermarkDoesNotResume) {
  // "drops below a specified low watermark": depth == low keeps suspended.
  nserver::OverloadController control(/*high=*/20, /*low=*/5);
  size_t depth = 25;
  control.watch_queue("q", [&] { return depth; });
  EXPECT_EQ(control.evaluate(), nserver::OverloadController::Decision::kSuspend);
  depth = 5;
  EXPECT_EQ(control.evaluate(), nserver::OverloadController::Decision::kNoChange);
  EXPECT_TRUE(control.overloaded());
  depth = 4;
  EXPECT_EQ(control.evaluate(), nserver::OverloadController::Decision::kResume);
  EXPECT_FALSE(control.overloaded());
}

TEST(OverloadControlEdgeTest, HysteresisBandNeverFlaps) {
  // Depths oscillating inside (low, high] must produce no decisions at all
  // in either state — that band is the hysteresis.
  nserver::OverloadController control(/*high=*/20, /*low=*/5);
  size_t depth = 10;
  control.watch_queue("q", [&] { return depth; });
  std::mt19937_64 rng(11);
  for (int i = 0; i < 100; ++i) {
    depth = 6 + rng() % 15;  // 6..20 inclusive
    EXPECT_EQ(control.evaluate(),
              nserver::OverloadController::Decision::kNoChange);
  }
  // Enter overload, then oscillate in the band again: still no decisions.
  depth = 100;
  EXPECT_EQ(control.evaluate(), nserver::OverloadController::Decision::kSuspend);
  for (int i = 0; i < 100; ++i) {
    depth = 5 + rng() % 16;  // 5..20 inclusive
    EXPECT_EQ(control.evaluate(),
              nserver::OverloadController::Decision::kNoChange);
  }
  EXPECT_EQ(control.suspend_count(), 1u);
}

TEST(OverloadControlEdgeTest, WorstQueueGoverns) {
  // Multiple watched queues: the *max* depth drives both edges, and resume
  // requires every queue below low.
  nserver::OverloadController control(/*high=*/10, /*low=*/3);
  size_t cpu = 0;
  size_t disk = 0;
  control.watch_queue("cpu", [&] { return cpu; });
  control.watch_queue("disk", [&] { return disk; });
  cpu = 2;
  disk = 11;
  EXPECT_EQ(control.evaluate(), nserver::OverloadController::Decision::kSuspend);
  disk = 0;
  cpu = 3;  // still not below low
  EXPECT_EQ(control.evaluate(), nserver::OverloadController::Decision::kNoChange);
  cpu = 2;
  EXPECT_EQ(control.evaluate(), nserver::OverloadController::Decision::kResume);
}

}  // namespace
}  // namespace cops
