// Micro-benchmark: the Event Processor's two queue disciplines — plain FIFO
// (scheduling off) vs the quota priority queue (option O8).  Quantifies the
// cost of the structural variation the template generates.
#include <benchmark/benchmark.h>

#include "common/mpmc_queue.hpp"
#include "common/quota_priority_queue.hpp"
#include "nserver/event.hpp"
#include "nserver/event_processor.hpp"

namespace {

using cops::MpmcQueue;
using cops::QuotaPriorityQueue;
using cops::nserver::Event;
using cops::nserver::EventKind;
using cops::nserver::EventProcessor;
using cops::nserver::EventProcessorConfig;

void fifo_queue_ops(benchmark::State& state) {
  MpmcQueue<int> queue;
  int i = 0;
  for (auto _ : state) {
    queue.push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(fifo_queue_ops);

void quota_priority_queue_ops(benchmark::State& state) {
  QuotaPriorityQueue<int> queue({8, 1});
  int i = 0;
  for (auto _ : state) {
    queue.push(i, i % 2);
    ++i;
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(quota_priority_queue_ops);

void processor_throughput(benchmark::State& state) {
  const bool scheduling = state.range(0) != 0;
  EventProcessorConfig config;
  config.name = "bench";
  config.threads = 2;
  config.scheduling = scheduling;
  EventProcessor processor(config);
  std::atomic<uint64_t> done{0};
  uint64_t submitted = 0;
  for (auto _ : state) {
    Event event;
    event.kind = EventKind::kCompute;
    event.priority = static_cast<int>(submitted % 2);
    event.action = [&done] { done.fetch_add(1, std::memory_order_relaxed); };
    processor.submit(std::move(event));
    ++submitted;
  }
  while (done.load() < submitted) {
    std::this_thread::yield();
  }
  state.SetItemsProcessed(static_cast<int64_t>(submitted));
}
BENCHMARK(processor_throughput)->Arg(0)->Arg(1)->ArgName("scheduling");

void inline_processor_dispatch(benchmark::State& state) {
  // Option O2 = No: zero-thread processor runs events inline (SPED).
  EventProcessorConfig config;
  config.name = "inline";
  config.threads = 0;
  EventProcessor processor(config);
  uint64_t count = 0;
  for (auto _ : state) {
    Event event;
    event.action = [&count] { ++count; };
    processor.submit(std::move(event));
  }
  benchmark::DoNotOptimize(count);
  state.SetItemsProcessed(static_cast<int64_t>(count));
}
BENCHMARK(inline_processor_dispatch);

}  // namespace

BENCHMARK_MAIN();
