// Fig. 6 reproduction: automatic overload control (option O9).
//
// Paper setup: decode is made CPU-intensive (thread sleeps 50 ms per
// request — scaled here), the Reactive Event Processor queue gets a high
// watermark of 20 and a low watermark of 5, and 1..128 Web clients apply
// load.  With overload control the server suspends the Acceptor while the
// queue is long, so established connections keep their response times low;
// without it, every queued request waits behind an ever-growing backlog.
//
// Expected shape: "response time" (established connections) is dramatically
// lower with control, with no throughput loss; "combined" time (which adds
// the connection-establishment wait of postponed clients) also improves.
#include <cstdio>

#include "bench_common.hpp"
#include "http/http_server.hpp"

namespace {

struct Row {
  size_t clients;
  double resp_ms_on, comb_ms_on, rps_on;
  double resp_ms_off, comb_ms_off, rps_off;
};

}  // namespace

int main() {
  using namespace cops;
  bench::print_header(
      "FIG 6 — response time with and without automatic overload control",
      "CPU-bound decode (scaled from the paper's 50 ms sleep), watermarks "
      "hi=20 lo=5.\nPaper shape: overload control cuts response time "
      "sharply without losing throughput.");

  auto env = bench::bench_env();
  auto fileset = bench::ensure_fileset(env);
  const auto decode_delay = std::chrono::milliseconds(5);  // paper: 50 ms
  // Overload steady state needs a longer window than the other figures:
  // without control, queueing delays exceed a second before the first
  // responses complete (the paper measured 5 minutes per point).
  const double seconds = std::max(env.seconds_per_point, env.quick ? 1.0 : 2.5);

  std::vector<size_t> clients_sweep =
      env.quick ? std::vector<size_t>{4, 32, 128}
                : std::vector<size_t>{1, 2, 4, 8, 16, 32, 64, 128};

  auto run_point = [&](size_t clients, bool control) {
    auto options = http::CopsHttpServer::default_options();
    options.overload_control = control;
    options.queue_high_watermark = 20;  // paper's settings
    options.queue_low_watermark = 5;
    options.housekeeping_interval = std::chrono::milliseconds(50);
    options.processor_threads = 1;  // the CPU is the bottleneck resource
    // Small backlog: while the Acceptor is suspended, further SYNs are
    // dropped and clients back off — the paper's "postponed" connections.
    options.listen_backlog = 16;
    http::HttpServerConfig config;
    config.doc_root = fileset.root;
    config.decode_delay = decode_delay;
    http::CopsHttpServer server(options, config);
    if (!server.start().is_ok()) return loadgen::ClientStats{};

    loadgen::ClientConfig load;
    load.server = net::InetAddress::loopback(server.port());
    load.num_clients = clients;
    load.requests_per_connection = 5;
    load.think_time = std::chrono::milliseconds(5);
    load.duration = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(seconds));
    load.connect_timeout = std::chrono::milliseconds(500);
    load.backoff_initial = std::chrono::milliseconds(50);
    load.backoff_max = std::chrono::seconds(6);
    // Arrivals ramp over the first third of the window (the paper's
    // 5-minute runs reach steady state; an all-at-once SYN burst would
    // land every connection before the first watermark check).
    load.start_spread = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(seconds / 3.0));
    auto sampler = std::make_shared<loadgen::WorkloadSampler>(fileset);
    load.path_for = [sampler](size_t, std::mt19937& rng) {
      return sampler->sample(rng);
    };
    auto stats = loadgen::run_clients(load);
    server.stop();
    return stats;
  };

  std::vector<Row> rows;
  for (size_t clients : clients_sweep) {
    Row row{};
    row.clients = clients;
    auto on = run_point(clients, true);
    auto off = run_point(clients, false);
    row.resp_ms_on = on.response_time.mean_micros() / 1000.0;
    row.comb_ms_on = on.combined_time.mean_micros() / 1000.0;
    row.rps_on = on.throughput_rps();
    row.resp_ms_off = off.response_time.mean_micros() / 1000.0;
    row.comb_ms_off = off.combined_time.mean_micros() / 1000.0;
    row.rps_off = off.throughput_rps();
    rows.push_back(row);
    std::fprintf(stderr, "  [fig6] %zu clients done\n", clients);
  }

  std::printf("%8s | %12s %12s %9s | %12s %12s %9s\n", "clients",
              "resp ms ON", "comb ms ON", "rps ON", "resp ms OFF",
              "comb ms OFF", "rps OFF");
  for (const auto& row : rows) {
    std::printf("%8zu | %12.1f %12.1f %9.1f | %12.1f %12.1f %9.1f\n",
                row.clients, row.resp_ms_on, row.comb_ms_on, row.rps_on,
                row.resp_ms_off, row.comb_ms_off, row.rps_off);
  }
  std::printf(
      "\nresp = request->response latency on established connections; comb "
      "adds the connection-establishment wait (postponed clients).  The "
      "paper's claim: with control, resp stays near the service time while "
      "throughput is not degraded.\n");
  return 0;
}
