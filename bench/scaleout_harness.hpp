// Shared-nothing scale-out harness, shared by the micro_scaleout baseline
// binary and the perf-smoke gate.  Unlike the simnet benches this one runs
// in REAL time against a real COPS-HTTP server: the whole point is parallel
// speedup across shard threads, which a single global virtual clock cannot
// express.
//
// The modeled server: COPS-HTTP in the SPED configuration (no separate
// processor pool, synchronous completions) with `handle_delay_ms` of
// *sleeping* per-request work on the shard's dispatcher thread.  Sleeping —
// not spinning — models a latency-bound request (downstream RPC, device
// wait) and makes the bench honest on small CI machines: one shard
// serialises the sleeps (capacity = 1000/handle_delay_ms req/s), N shards
// overlap them, so throughput scales with the shard count without needing
// N physical cores.
//
// Load is OPEN-loop (loadgen/open_loop.hpp): Poisson arrivals at a fixed
// offered rate, latency measured from the scheduled arrival — a saturated
// server cannot slow the generator down, and queueing shows up as latency
// instead of silently thinning the load (coordinated omission).
//
// Scenarios per point:
//   saturate  offered ≈ saturation_factor × shard capacity; the achieved
//             rate is the measured capacity of the configuration.  The
//             committed baseline's headline is achieved(4 shards,
//             reuseport, L1) / achieved(1 shard) ≥ 1.5.
//   matched   a fixed offered rate below single-shard capacity for every
//             configuration, so p99 compares reuseport vs dispatch at
//             identical load.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "http/http_server.hpp"
#include "loadgen/open_loop.hpp"

namespace cops::bench {

struct ScaleoutBenchConfig {
  std::string docroot = "/tmp/cops_bench_scaleout";
  // Shard counts for the saturation sweep (reuseport + L1).
  std::vector<int> shard_counts = {1, 2, 4};
  // Per-request sleeping Handle cost; shard capacity = 1000 / this, req/s.
  int handle_delay_ms = 10;
  // Offered load for the saturation scenario, as a multiple of capacity.
  double saturation_factor = 1.25;
  // Offered load for the matched-latency scenario (must stay below one
  // shard's capacity so every configuration is uncongested).
  double matched_rps = 60.0;
  // Arrival window per point, real milliseconds.
  int window_ms = 4000;
  size_t fileset_size = 16;
  unsigned seed = 7;
};

[[nodiscard]] inline ScaleoutBenchConfig scaleout_quick_config(
    std::string docroot = "/tmp/cops_bench_scaleout") {
  ScaleoutBenchConfig config;
  config.docroot = std::move(docroot);
  config.shard_counts = {1, 2};
  config.window_ms = 1200;
  config.matched_rps = 40.0;
  return config;
}

[[nodiscard]] inline double scaleout_capacity_rps(
    const ScaleoutBenchConfig& config) {
  return 1000.0 / static_cast<double>(config.handle_delay_ms);
}

struct ScaleoutRow {
  std::string accept_path;  // "reuseport" | "dispatch"
  std::string scenario;     // "saturate" | "matched"
  int shards = 0;
  bool l1 = false;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  uint64_t arrivals = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double l1_hit_rate = 0.0;
};

[[nodiscard]] inline bool make_scaleout_docroot(
    const ScaleoutBenchConfig& config) {
  std::error_code ec;
  std::filesystem::create_directories(config.docroot, ec);
  if (ec) return false;
  for (size_t i = 0; i < config.fileset_size; ++i) {
    std::ofstream out(config.docroot + "/f" + std::to_string(i) + ".txt",
                      std::ios::trunc);
    // A few hundred bytes to a few KB, so replies span more than one name.
    const std::string line = "scaleout bench fixture " + std::to_string(i) +
                             " ----------------------------------------\n";
    for (size_t j = 0; j < 4 + i * 2; ++j) out << line;
    if (!out.good()) return false;
  }
  return true;
}

[[nodiscard]] inline double scaleout_percentile(std::vector<int64_t> values,
                                                double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return static_cast<double>(values[std::min(index, values.size() - 1)]) /
         1000.0;
}

// One real-time point: start the server in the requested configuration,
// offer an open-loop Poisson load, report achieved rate and latency.
[[nodiscard]] inline ScaleoutRow run_scaleout_point(
    const ScaleoutBenchConfig& config, const char* accept_path,
    const char* scenario, int shards, bool l1, double offered_rps) {
  using std::chrono::milliseconds;
  using std::chrono::seconds;

  auto options = http::CopsHttpServer::default_options();
  options.dispatcher_threads = shards;
  // SPED: hooks (and their sleeping Handle cost) run inline on the shard's
  // dispatcher thread — each shard is one shared-nothing event loop.
  options.separate_processor_pool = false;
  options.completion = nserver::CompletionMode::kSynchronous;
  options.allow_blocking_dispatcher = true;
  options.accept_path = std::string(accept_path) == "reuseport"
                            ? nserver::AcceptPath::kReuseport
                            : nserver::AcceptPath::kDispatch;
  options.cache_policy = nserver::CachePolicyKind::kLru;
  options.cache_l1_entries = l1 ? 128 : 0;
  options.profiling = true;  // for the L1 hit-rate readout below
  options.listen_port = 0;
  // Saturation points queue bursts in the kernel; a deep backlog keeps SYN
  // drops out of the measurement (satellite: the knob reaches every
  // per-shard listener).
  options.listen_backlog = 1024;

  http::HttpServerConfig http_config;
  http_config.doc_root = config.docroot;
  http_config.handle_delay = milliseconds(config.handle_delay_ms);
  http::CopsHttpServer server(std::move(options), http_config);
  if (!server.start().is_ok()) {
    std::fprintf(stderr, "scaleout bench: server start failed\n");
    return {};
  }

  loadgen::OpenLoopConfig load;
  load.server = net::InetAddress::loopback(server.port());
  load.offered_rps = offered_rps;
  load.duration = milliseconds(config.window_ms);
  load.drain_grace = seconds(3);
  load.request_timeout = seconds(5);
  load.max_in_flight = 1024;  // saturation backlogs run a few hundred deep
  load.seed = config.seed;
  const size_t files = config.fileset_size;
  load.path_for = [files](uint64_t, std::mt19937& rng) {
    std::uniform_int_distribution<size_t> pick(0, files - 1);
    return "/f" + std::to_string(pick(rng)) + ".txt";
  };
  auto stats = loadgen::run_open_loop(load);

  ScaleoutRow row;
  row.accept_path = accept_path;
  row.scenario = scenario;
  row.shards = shards;
  row.l1 = l1;
  row.offered_rps = offered_rps;
  row.achieved_rps = stats.achieved_rps();
  row.arrivals = stats.arrivals;
  row.completed = stats.completed;
  row.errors = stats.errors;
  row.p50_ms = scaleout_percentile(stats.latencies_us, 0.5);
  row.p99_ms = scaleout_percentile(std::move(stats.latencies_us), 0.99);
  row.l1_hit_rate = server.server().profile().l1_hit_rate;
  server.stop();
  return row;
}

[[nodiscard]] inline std::string scaleout_rows_to_json(
    const ScaleoutBenchConfig& config, const std::vector<ScaleoutRow>& rows,
    bool quick) {
  std::string out = "{\n  \"benchmark\": \"scaleout\",\n  \"quick\": ";
  out += quick ? "true" : "false";
  char line[384];
  std::snprintf(line, sizeof(line),
                ",\n  \"handle_delay_ms\": %d,\n  \"window_ms\": %d,\n"
                "  \"rows\": [\n",
                config.handle_delay_ms, config.window_ms);
  out += line;
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::snprintf(
        line, sizeof(line),
        "    {\"accept_path\": \"%s\", \"scenario\": \"%s\", "
        "\"shards\": %d, \"l1\": %s, \"offered_rps\": %.0f, "
        "\"achieved_rps\": %.1f, \"arrivals\": %llu, \"completed\": %llu, "
        "\"errors\": %llu, \"p50_ms\": %.2f, \"p99_ms\": %.2f, "
        "\"l1_hit_rate\": %.4f}%s\n",
        row.accept_path.c_str(), row.scenario.c_str(), row.shards,
        row.l1 ? "true" : "false", row.offered_rps, row.achieved_rps,
        static_cast<unsigned long long>(row.arrivals),
        static_cast<unsigned long long>(row.completed),
        static_cast<unsigned long long>(row.errors), row.p50_ms, row.p99_ms,
        row.l1_hit_rate, i + 1 < rows.size() ? "," : "");
    out += line;
  }
  out += "  ]\n}\n";
  return out;
}

// Structural validation of the emitted document — the perf-smoke gate and
// the committed baseline's consumers rely on exactly these fields.
[[nodiscard]] inline bool validate_scaleout_json(const std::string& json,
                                                 std::string* error) {
  const auto need = [&](const char* token) {
    if (json.find(token) == std::string::npos) {
      if (error) *error = std::string("missing token: ") + token;
      return false;
    }
    return true;
  };
  if (!need("\"benchmark\": \"scaleout\"")) return false;
  if (!need("\"quick\": ")) return false;
  if (!need("\"handle_delay_ms\": ")) return false;
  if (!need("\"rows\": [")) return false;
  for (const char* token :
       {"\"accept_path\": \"reuseport\"", "\"accept_path\": \"dispatch\"",
        "\"scenario\": \"saturate\"", "\"scenario\": \"matched\"",
        "\"shards\": ", "\"l1\": ", "\"offered_rps\"", "\"achieved_rps\"",
        "\"completed\"", "\"errors\"", "\"p50_ms\"", "\"p99_ms\"",
        "\"l1_hit_rate\""}) {
    if (!need(token)) return false;
  }
  if (json.empty() || json.back() != '\n' || json[json.size() - 2] != '}') {
    if (error) *error = "document not terminated";
    return false;
  }
  return true;
}

}  // namespace cops::bench
