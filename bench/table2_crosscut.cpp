// Table 2 reproduction: the option × class crosscut matrix, computed from
// the N-Server template's actual directives ('o' = option controls whether
// the unit exists, '+' = generated code for the unit depends on the value).
//
// The paper uses this matrix to argue that a static framework supporting
// all options is infeasible — the options crosscut too many classes — which
// motivates generating a custom framework after option selection.
#include <cstdio>

#include "bench_common.hpp"
#include "gdp/pattern_template.hpp"

int main() {
  using namespace cops;
  bench::print_header(
      "TABLE 2 — options crosscut the generated code",
      "Computed from the live template directives (not hand-maintained).");

  const auto tmpl = gdp::make_nserver_template();
  auto table = tmpl.format_crosscut_table();
  if (!table.is_ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().to_string().c_str());
    return 1;
  }
  std::fputs(table.value().c_str(), stdout);

  // The quantitative claim behind the table: most options affect several
  // units, so option combinations explode multiplicatively.
  auto matrix = tmpl.crosscut();
  if (!matrix.is_ok()) return 1;
  int crosscutting_options = 0;
  for (const auto& spec : tmpl.options().specs()) {
    int touched = 0;
    for (const auto& [unit, row] : matrix.value()) {
      auto it = row.find(spec.key);
      if (it != row.end() && (it->second.existence || it->second.body)) {
        ++touched;
      }
    }
    if (touched >= 2) ++crosscutting_options;
    std::printf("  %-22s affects %d generated unit(s)\n", spec.key.c_str(),
                touched);
  }
  std::printf(
      "\n%d of 12 options crosscut >= 2 units — the paper's argument for "
      "generating (not dynamically configuring) the framework.\n",
      crosscutting_options);
  return 0;
}
