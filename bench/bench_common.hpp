// Shared experiment plumbing for the table/figure reproduction binaries.
//
// Scaling: every experiment honours two environment variables —
//   COPS_BENCH_QUICK=1        fewer sweep points, shorter measurements
//   COPS_BENCH_SECONDS=<f>    seconds per measurement point (default 1.5)
// The paper measured 5 minutes per point on a 4-CPU Sun E420R; the defaults
// here are scaled for a small Linux box (see DESIGN.md, substitutions).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "loadgen/fileset.hpp"
#include "loadgen/http_client.hpp"

namespace cops::bench {

struct BenchEnv {
  bool quick = false;
  double seconds_per_point = 1.5;
  std::string fileset_root = "/tmp/cops_bench_fileset";
  size_t fileset_dirs = 4;  // ~20 MB (paper: 204.8 MB, 41 dirs)
};

inline BenchEnv bench_env() {
  BenchEnv env;
  if (const char* quick = std::getenv("COPS_BENCH_QUICK");
      quick != nullptr && quick[0] == '1') {
    env.quick = true;
    env.seconds_per_point = 0.5;
    env.fileset_dirs = 2;
  }
  if (const char* seconds = std::getenv("COPS_BENCH_SECONDS")) {
    env.seconds_per_point = std::atof(seconds);
  }
  return env;
}

// Creates (once) the SpecWeb99-style file set used by the web benches.
inline loadgen::FilesetConfig ensure_fileset(const BenchEnv& env) {
  loadgen::FilesetConfig config;
  config.root = env.fileset_root;
  config.directories = env.fileset_dirs;
  auto status = loadgen::generate_fileset(config);
  if (!status.is_ok()) {
    std::fprintf(stderr, "fileset generation failed: %s\n",
                 status.to_string().c_str());
    std::exit(1);
  }
  return config;
}

// Client sweep matching the paper's Fig. 3/4 x-axis (log scale, 1..1024).
inline std::vector<size_t> client_sweep(bool quick) {
  if (quick) return {1, 8, 64, 256};
  return {1, 4, 16, 32, 64, 128, 256, 512, 1024};
}

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", paper_note);
  std::printf("================================================================\n");
}

}  // namespace cops::bench
