// Future work (paper, Section VI): distributed N-Server measurements.
//
// "The most interesting extension of this work is to support the generation
// of distributed N-servers that will serve from a network of workstations."
// This bench measures the loopback emulation: a single COPS-HTTP worker vs
// 2 and 4 workers behind the event-driven load balancer, plus the
// balancer's own overhead (balancer → one worker vs direct).
//
// On a single-CPU host the fleet shares one processor, so the interesting
// numbers are the relay overhead and the balance quality; on real SMP/
// multi-host deployments the same topology scales capacity.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "cluster/load_balancer.hpp"
#include "http/http_server.hpp"

namespace {

struct Cluster {
  std::vector<std::unique_ptr<cops::http::CopsHttpServer>> workers;
  std::unique_ptr<cops::cluster::LoadBalancer> balancer;

  uint16_t start(const cops::loadgen::FilesetConfig& fileset, int n) {
    cops::http::HttpServerConfig config;
    config.doc_root = fileset.root;
    for (int i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<cops::http::CopsHttpServer>(
          cops::http::CopsHttpServer::default_options(), config));
      if (!workers.back()->start().is_ok()) return 0;
    }
    cops::cluster::LoadBalancerConfig balancer_config;
    balancer_config.policy = cops::cluster::BalancePolicy::kLeastConnections;
    balancer = std::make_unique<cops::cluster::LoadBalancer>(balancer_config);
    for (auto& worker : workers) {
      balancer->add_backend(
          cops::net::InetAddress::loopback(worker->port()));
    }
    if (!balancer->start().is_ok()) return 0;
    return balancer->port();
  }

  void stop() {
    if (balancer) balancer->stop();
    for (auto& worker : workers) worker->stop();
  }
};

}  // namespace

int main() {
  using namespace cops;
  bench::print_header(
      "FUTURE WORK — distributed N-Server (balancer + worker fleet)",
      "Loopback emulation of the paper's network-of-workstations vision; "
      "measures relay overhead and balance quality.");

  auto env = bench::bench_env();
  auto fileset = bench::ensure_fileset(env);
  const size_t clients = env.quick ? 32 : 128;

  auto run_load = [&](uint16_t port) {
    loadgen::ClientConfig load;
    load.server = net::InetAddress::loopback(port);
    load.num_clients = clients;
    load.think_time = std::chrono::milliseconds(2);
    load.duration = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(env.seconds_per_point));
    auto sampler = std::make_shared<loadgen::WorkloadSampler>(fileset);
    load.path_for = [sampler](size_t, std::mt19937& rng) {
      return sampler->sample(rng);
    };
    return loadgen::run_clients(load);
  };

  // Baseline: one worker, direct.
  double direct_rps = 0;
  {
    http::HttpServerConfig config;
    config.doc_root = fileset.root;
    http::CopsHttpServer worker(http::CopsHttpServer::default_options(),
                                config);
    if (!worker.start().is_ok()) return 1;
    direct_rps = run_load(worker.port()).throughput_rps();
    worker.stop();
  }

  std::printf("%-26s %14s %14s %18s\n", "topology", "rps", "vs direct",
              "balance (conn split)");
  std::printf("%-26s %14.1f %14s %18s\n", "direct (no balancer)", direct_rps,
              "1.00", "-");
  for (int n : {1, 2, 4}) {
    Cluster cluster;
    const uint16_t port = cluster.start(fileset, n);
    if (port == 0) {
      std::fprintf(stderr, "cluster start failed\n");
      return 1;
    }
    const auto stats = run_load(port);
    const auto backend_stats = cluster.balancer->backend_stats();
    std::string split;
    for (size_t i = 0; i < backend_stats.size(); ++i) {
      if (!split.empty()) split += "/";
      split += std::to_string(backend_stats[i].connections);
    }
    std::printf("%-26s %14.1f %14.2f %18s\n",
                ("balancer + " + std::to_string(n) + " worker(s)").c_str(),
                stats.throughput_rps(),
                direct_rps > 0 ? stats.throughput_rps() / direct_rps : 0.0,
                split.c_str());
    cluster.stop();
  }
  std::printf(
      "\nThe balancer costs one extra relay hop; with every process pinned "
      "to this host's single CPU the fleet cannot add capacity — the "
      "topology, balance split, and failover are what this run validates.\n");
  return 0;
}
