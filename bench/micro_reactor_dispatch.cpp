// Micro-benchmark: Reactor primitives — cross-thread post round-trips and
// timer scheduling throughput.
#include <benchmark/benchmark.h>

#include <atomic>
#include <future>

#include "net/reactor.hpp"

namespace {

void reactor_post_roundtrip(benchmark::State& state) {
  cops::net::Reactor reactor;
  reactor.start_thread();
  for (auto _ : state) {
    std::promise<void> done;
    auto fut = done.get_future();
    reactor.post([&done] { done.set_value(); });
    fut.wait();
  }
  reactor.stop();
  reactor.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(reactor_post_roundtrip);

void reactor_post_batched(benchmark::State& state) {
  cops::net::Reactor reactor;
  reactor.start_thread();
  std::atomic<uint64_t> executed{0};
  uint64_t posted = 0;
  for (auto _ : state) {
    reactor.post([&executed] { executed.fetch_add(1); });
    ++posted;
  }
  while (executed.load() < posted) std::this_thread::yield();
  reactor.stop();
  reactor.join();
  state.SetItemsProcessed(static_cast<int64_t>(posted));
}
BENCHMARK(reactor_post_batched);

void timer_schedule_cancel(benchmark::State& state) {
  cops::net::TimerQueue timers;
  for (auto _ : state) {
    auto id = timers.schedule_after(std::chrono::hours(1), [] {});
    timers.cancel(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(timer_schedule_cancel);

void timer_run_due(benchmark::State& state) {
  cops::net::TimerQueue timers;
  int fired = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 64; ++i) {
      timers.schedule_after(std::chrono::nanoseconds(0), [&fired] { ++fired; });
    }
    state.ResumeTiming();
    timers.run_due();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(timer_run_due);

}  // namespace

BENCHMARK_MAIN();
