// Overload-spike harness shared by the micro_overload baseline binary and
// the perf-smoke gate.  Every point is a fully deterministic simnet run —
// virtual time, fixed seed — so the committed BENCH_overload.json is
// bit-stable across machines.
//
// The modeled server: COPS-HTTP in the deterministic SPED configuration
// with 20 ms of virtual CPU per admitted request (50 req/s of capacity).
// Each point offers a fixed arrival rate for a fixed window and reports
// the p99 first-byte latency of *admitted* requests plus the shed rate,
// for both overload modes:
//
//   watermark  the paper's O9 queue-length controller.  The SPED pipeline
//              never queues (events run inline), so it admits everything
//              and the backlog latency grows with offered load — the
//              ablation baseline.
//   adaptive   the queue-DELAY manager (overload = adaptive): sheds with
//              503 + Retry-After once standing event-loop lag exceeds the
//              CoDel target, bounding admitted p99.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "http/http_server.hpp"
#include "simnet/sim_engine.hpp"
#include "simnet/sim_harness.hpp"

namespace cops::bench {

struct OverloadBenchConfig {
  std::string docroot = "/tmp/cops_bench_overload";
  // Offered arrival rates to sweep (req/s); capacity is 50 req/s.
  std::vector<double> offered_rps = {25, 50, 100, 200, 400};
  // Arrival window per point (virtual milliseconds).
  int window_ms = 1000;
  uint64_t seed = 1;
};

[[nodiscard]] inline OverloadBenchConfig overload_quick_config(
    std::string docroot = "/tmp/cops_bench_overload") {
  OverloadBenchConfig config;
  config.docroot = std::move(docroot);
  config.offered_rps = {25, 400};
  config.window_ms = 400;
  return config;
}

struct OverloadRow {
  std::string mode;
  double offered_rps = 0.0;
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t no_response = 0;
  double shed_rate = 0.0;
  double p99_admitted_ms = 0.0;
};

[[nodiscard]] inline bool make_overload_docroot(
    const OverloadBenchConfig& config) {
  std::error_code ec;
  std::filesystem::create_directories(config.docroot, ec);
  if (ec) return false;
  std::ofstream out(config.docroot + "/a.txt", std::ios::trunc);
  out << "overload bench fixture\n";
  return out.good();
}

[[nodiscard]] inline double overload_percentile(std::vector<double> values,
                                                double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

// One deterministic point: `offered_rps` arrivals/s for `window_ms`, then
// drain to quiescence.
[[nodiscard]] inline OverloadRow run_overload_point(
    const OverloadBenchConfig& config, const char* mode, double offered_rps) {
  using std::chrono::microseconds;
  using std::chrono::milliseconds;
  using std::chrono::seconds;

  simnet::SimEngine engine(config.seed, simnet::FaultPlan::none());

  auto options = http::CopsHttpServer::default_options();
  simnet::make_deterministic(options);
  options.listen_port = 8090;
  options.overload_control = true;
  options.overload_mode = std::string(mode) == "adaptive"
                              ? nserver::OverloadMode::kAdaptive
                              : nserver::OverloadMode::kWatermark;
  options.overload_target_delay = milliseconds(5);
  options.overload_interval = milliseconds(50);
  options.overload_ewma_alpha = 0.5;
  options.overload_retry_after = seconds(1);
  options.overload_retry_after_max = seconds(30);
  options.housekeeping_interval = milliseconds(10);
  http::HttpServerConfig http_config;
  http_config.doc_root = config.docroot;
  http_config.handle_delay = milliseconds(20);  // 50 req/s of capacity
  http::CopsHttpServer server(std::move(options), http_config);
  if (!server.start().is_ok()) {
    std::fprintf(stderr, "overload bench: server start failed\n");
    return {};
  }

  const std::string request =
      "GET /a.txt HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n";

  struct Probe {
    simnet::SimClient* client = nullptr;
    std::shared_ptr<double> sent_ms;
    std::shared_ptr<double> first_byte_ms;
  };
  std::vector<Probe> probes;
  const double spacing_us = 1e6 / offered_rps;
  const auto count =
      static_cast<size_t>(offered_rps * config.window_ms / 1000.0);
  for (size_t i = 0; i < count; ++i) {
    Probe probe;
    probe.client = engine.new_client();
    probe.sent_ms = std::make_shared<double>(-1.0);
    probe.first_byte_ms = std::make_shared<double>(-1.0);
    auto sent = probe.sent_ms;
    auto mark = probe.first_byte_ms;
    probe.client->on_data = [mark](std::string_view) {
      if (*mark < 0.0) {
        *mark = to_seconds(now().time_since_epoch()) * 1000.0;
      }
    };
    auto* client = probe.client;
    const auto when =
        microseconds(100000 + static_cast<int64_t>(i * spacing_us));
    engine.at(when, [client, request, sent] {
      *sent = to_seconds(now().time_since_epoch()) * 1000.0;
      client->connect(8090);
      client->send(request);
    });
    probes.push_back(std::move(probe));
  }

  OverloadRow row;
  row.mode = mode;
  row.offered_rps = offered_rps;
  row.offered = probes.size();
  if (!engine.run(seconds(300))) {
    std::fprintf(stderr, "overload bench: point did not quiesce\n");
    return row;
  }

  std::vector<double> admitted_latencies;
  for (const auto& probe : probes) {
    const std::string& received = probe.client->received();
    if (received.rfind("HTTP/1.1 200", 0) == 0) {
      ++row.admitted;
      if (*probe.first_byte_ms >= 0.0 && *probe.sent_ms >= 0.0) {
        admitted_latencies.push_back(*probe.first_byte_ms - *probe.sent_ms);
      }
    } else if (received.rfind("HTTP/1.1 503", 0) == 0) {
      ++row.shed;
    } else {
      ++row.no_response;
    }
  }
  row.shed_rate =
      row.offered > 0
          ? static_cast<double>(row.shed) / static_cast<double>(row.offered)
          : 0.0;
  row.p99_admitted_ms = overload_percentile(admitted_latencies, 0.99);
  server.stop();
  return row;
}

[[nodiscard]] inline std::string overload_rows_to_json(
    const std::vector<OverloadRow>& rows, bool quick) {
  std::string out = "{\n  \"benchmark\": \"overload\",\n  \"quick\": ";
  out += quick ? "true" : "false";
  out += ",\n  \"rows\": [\n";
  char line[256];
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::snprintf(line, sizeof(line),
                  "    {\"mode\": \"%s\", \"offered_rps\": %.0f, "
                  "\"offered\": %llu, \"admitted\": %llu, \"shed\": %llu, "
                  "\"no_response\": %llu, \"shed_rate\": %.4f, "
                  "\"p99_admitted_ms\": %.1f}%s\n",
                  row.mode.c_str(), row.offered_rps,
                  static_cast<unsigned long long>(row.offered),
                  static_cast<unsigned long long>(row.admitted),
                  static_cast<unsigned long long>(row.shed),
                  static_cast<unsigned long long>(row.no_response),
                  row.shed_rate, row.p99_admitted_ms,
                  i + 1 < rows.size() ? "," : "");
    out += line;
  }
  out += "  ]\n}\n";
  return out;
}

// Structural validation of the emitted document — the committed baseline's
// consumers (and the perf-smoke gate) rely on exactly these fields.
[[nodiscard]] inline bool validate_overload_json(const std::string& json,
                                                 std::string* error) {
  const auto need = [&](const char* token) {
    if (json.find(token) == std::string::npos) {
      if (error) *error = std::string("missing token: ") + token;
      return false;
    }
    return true;
  };
  if (!need("\"benchmark\": \"overload\"")) return false;
  if (!need("\"quick\": ")) return false;
  if (!need("\"rows\": [")) return false;
  for (const char* token :
       {"\"mode\": \"watermark\"", "\"mode\": \"adaptive\"", "\"offered_rps\"",
        "\"admitted\"", "\"shed\"", "\"shed_rate\"", "\"p99_admitted_ms\""}) {
    if (!need(token)) return false;
  }
  if (json.back() != '\n' || json[json.size() - 2] != '}') {
    if (error) *error = "document not terminated";
    return false;
  }
  return true;
}

}  // namespace cops::bench
