// Ablation (option O2): dispatcher-inline event handling (SPED, the Zeus /
// Harvest structure from Related Work) vs a separate Event Processor pool.
//
// With one CPU the pool cannot add parallelism, so this measures the pure
// queue-hop overhead vs the isolation benefit; on SMP hardware the pool is
// what lets the N-Server use extra processors (the paper's motivation for
// adding the Event Processor to the Reactor).
#include <cstdio>

#include "bench_common.hpp"
#include "http/http_server.hpp"

int main() {
  using namespace cops;
  bench::print_header(
      "ABLATION O2 — inline dispatch (SPED) vs separate processor pool",
      "Same COPS-HTTP server, same workload; only option O2 differs.");

  auto env = bench::bench_env();
  auto fileset = bench::ensure_fileset(env);

  auto run = [&](bool pool, size_t clients) {
    auto options = http::CopsHttpServer::default_options();
    options.separate_processor_pool = pool;
    options.processor_threads = pool ? 2 : 0;
    http::HttpServerConfig config;
    config.doc_root = fileset.root;
    http::CopsHttpServer server(options, config);
    if (!server.start().is_ok()) return loadgen::ClientStats{};
    loadgen::ClientConfig load;
    load.server = net::InetAddress::loopback(server.port());
    load.num_clients = clients;
    load.think_time = std::chrono::milliseconds(2);
    load.duration = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(env.seconds_per_point));
    auto sampler = std::make_shared<loadgen::WorkloadSampler>(fileset);
    load.path_for = [sampler](size_t, std::mt19937& rng) {
      return sampler->sample(rng);
    };
    auto stats = loadgen::run_clients(load);
    server.stop();
    return stats;
  };

  const std::vector<size_t> sweep =
      env.quick ? std::vector<size_t>{8, 64} : std::vector<size_t>{8, 64, 256};
  std::printf("%10s %14s %14s %16s %16s\n", "clients", "SPED rps", "pool rps",
              "SPED p50 us", "pool p50 us");
  for (size_t clients : sweep) {
    auto sped = run(false, clients);
    auto pool = run(true, clients);
    std::printf("%10zu %14.1f %14.1f %16lld %16lld\n", clients,
                sped.throughput_rps(), pool.throughput_rps(),
                static_cast<long long>(sped.response_time.quantile_micros(0.5)),
                static_cast<long long>(
                    pool.response_time.quantile_micros(0.5)));
  }
  std::printf(
      "\nOn this single-CPU host the queue hop is pure overhead; the pool "
      "pays off once hooks block (O4 synchronous) or CPUs are plentiful.\n");
  return 0;
}
