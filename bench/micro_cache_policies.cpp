// Micro-benchmark: file-cache replacement policies (option O6) under a
// Zipf-skewed access stream — cost and hit rate of each policy.
#include <benchmark/benchmark.h>

#include <random>

#include "common/zipf.hpp"
#include "nserver/cache_policy.hpp"
#include "nserver/file_cache.hpp"

namespace {

using cops::nserver::CachePolicyKind;
using cops::nserver::FileCache;
using cops::nserver::FileData;
using cops::nserver::FileDataPtr;

FileDataPtr make_file(size_t size) {
  auto data = std::make_shared<FileData>();
  data->bytes.assign(size, 'x');
  return data;
}

void bench_policy(benchmark::State& state, CachePolicyKind kind) {
  constexpr size_t kObjects = 400;
  constexpr size_t kCapacity = 64 * 1024;  // fits ~¼ of the working set
  FileCache cache(cops::nserver::make_cache_policy(kind, 4 * 1024), kCapacity);
  cops::ZipfDistribution zipf(kObjects, 1.0);
  std::mt19937 rng(17);
  std::uniform_int_distribution<size_t> size_dist(128, 2048);
  std::vector<size_t> sizes(kObjects);
  for (auto& s : sizes) s = size_dist(rng);

  for (auto _ : state) {
    const size_t object = zipf(rng);
    const std::string key = "/f" + std::to_string(object);
    auto hit = cache.lookup(key);
    if (hit == nullptr) {
      cache.insert(key, make_file(sizes[object]));
    }
    benchmark::DoNotOptimize(hit);
  }
  state.counters["hit_rate"] = cache.hit_rate();
  state.counters["evictions"] =
      static_cast<double>(cache.evictions()) / double(state.iterations());
}

}  // namespace

BENCHMARK_CAPTURE(bench_policy, LRU, CachePolicyKind::kLru);
BENCHMARK_CAPTURE(bench_policy, LFU, CachePolicyKind::kLfu);
BENCHMARK_CAPTURE(bench_policy, LRU_MIN, CachePolicyKind::kLruMin);
BENCHMARK_CAPTURE(bench_policy, LRU_Threshold, CachePolicyKind::kLruThreshold);
BENCHMARK_CAPTURE(bench_policy, Hyper_G, CachePolicyKind::kHyperG);

BENCHMARK_MAIN();
