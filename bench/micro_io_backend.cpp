// I/O backend baseline: epoll readiness vs io_uring completion, persisted
// as BENCH_io_backend.json.
//
//   micro_io_backend [--quick] [--out PATH]
//
// Real-time points (see io_backend_harness.hpp): COPS-HTTP serving a cached
// fileset to a fixed set of raw-syscall keep-alive sessions, once per
// backend.  Exits non-zero when the emitted JSON fails validation or when
// the regression gates below fail:
//
//   * both rows completed the full request count with zero errors;
//   * on a kernel with a working io_uring the uring row really ran on the
//     ring (effective=true) and its throughput is no slower than epoll
//     (with slack for CI noise); without one, the row records the graceful
//     fallback instead of failing the build.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io_backend_harness.hpp"

int main(int argc, char** argv) {
  using namespace cops::bench;

  std::string out_path = "BENCH_io_backend.json";
  BenchEnv env = bench_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      env.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  print_header("I/O backend baseline (epoll vs io_uring)",
               "Closed-loop keep-alive GETs from raw-syscall clients against "
               "COPS-HTTP,\nonce per io_backend.  Measures the syscall path: "
               "per-request readiness +\nrecv/send vs batched SQE submission "
               "and completion reaping.");

  const IoBackendBenchConfig config =
      env.quick ? io_backend_quick_config() : IoBackendBenchConfig{};
  if (!make_io_backend_docroot(config)) {
    std::fprintf(stderr, "FAIL: could not create docroot %s\n",
                 config.docroot.c_str());
    return 1;
  }
  const bool have_uring = cops::net::uring_available();
  std::printf("  io_uring: compiled=%d available=%d\n",
              cops::net::uring_compiled() ? 1 : 0, have_uring ? 1 : 0);

  std::vector<IoBackendRow> rows;
  for (const char* backend : {"epoll", "io_uring"}) {
    rows.push_back(run_io_backend_point(config, backend));
    const auto& row = rows.back();
    std::printf("  %-8s effective=%d  %6llu req  %4llu err  %8.1f req/s  "
                "p50 %7.1f us  p99 %7.1f us\n",
                row.backend.c_str(), row.effective ? 1 : 0,
                static_cast<unsigned long long>(row.requests),
                static_cast<unsigned long long>(row.errors), row.rps,
                row.p50_us, row.p99_us);
  }
  const IoBackendRow& epoll_row = rows[0];
  const IoBackendRow& uring_row = rows[1];

  // Gate 1: both rows served every request.
  const uint64_t expected = static_cast<uint64_t>(config.connections) *
                            static_cast<uint64_t>(config.warmup_requests +
                                                  config.requests_per_connection);
  for (const auto& row : rows) {
    if (row.errors != 0 || row.requests != expected) {
      std::fprintf(stderr, "FAIL: %s row incomplete (%llu/%llu, %llu errors)\n",
                   row.backend.c_str(),
                   static_cast<unsigned long long>(row.requests),
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(row.errors));
      return 1;
    }
  }
  // Gate 2: with a working ring, the uring row ran on it and is no slower
  // than epoll (20% + CI slack); without one, fallback must be recorded.
  if (have_uring) {
    if (!uring_row.effective) {
      std::fprintf(stderr, "FAIL: probe passed but uring row fell back\n");
      return 1;
    }
    if (uring_row.rps < 0.8 * epoll_row.rps) {
      std::fprintf(stderr,
                   "FAIL: io_uring %.1f req/s much slower than epoll %.1f\n",
                   uring_row.rps, epoll_row.rps);
      return 1;
    }
  } else if (uring_row.effective) {
    std::fprintf(stderr, "FAIL: no ring available yet row claims uring\n");
    return 1;
  }

  const std::string json = io_backend_rows_to_json(config, rows, env.quick);
  std::string error;
  if (!validate_io_backend_json(json, &error)) {
    std::fprintf(stderr, "FAIL: emitted JSON invalid: %s\n%s\n",
                 error.c_str(), json.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  if (!out.good()) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
