// Overload-spike baseline: watermark vs adaptive overload control across a
// sweep of offered loads, persisted as BENCH_overload.json.
//
//   micro_overload [--quick] [--out PATH]
//
// Every point is a deterministic simnet run (virtual time, fixed seed):
// COPS-HTTP in the SPED configuration with 20 ms of virtual CPU per
// admitted request (50 req/s capacity), offered 0.5x-8x that capacity.
// Exits non-zero when the emitted JSON fails validation or when the
// regression gates below fail:
//
//   * adaptive never sheds below capacity, and sheds a real fraction of an
//     8x overload;
//   * the watermark controller (queue length, always zero in SPED) sheds
//     nothing at any load — the ablation this baseline documents;
//   * at 8x capacity, adaptive bounds admitted p99 to less than half the
//     watermark backlog p99.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "overload_harness.hpp"

int main(int argc, char** argv) {
  using namespace cops::bench;

  std::string out_path = "BENCH_overload.json";
  BenchEnv env = bench_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      env.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  print_header("Overload baseline (watermark vs adaptive, simnet)",
               "p99 of admitted requests and shed rate vs offered load at "
               "50 req/s of modeled capacity.\nAdaptive sheds the excess "
               "with 503 + Retry-After; the queue-length watermark admits "
               "everything in SPED.");

  const OverloadBenchConfig config =
      env.quick ? overload_quick_config() : OverloadBenchConfig{};
  if (!make_overload_docroot(config)) {
    std::fprintf(stderr, "FAIL: could not create docroot %s\n",
                 config.docroot.c_str());
    return 1;
  }

  std::vector<OverloadRow> rows;
  const OverloadRow* watermark_peak = nullptr;
  const OverloadRow* adaptive_peak = nullptr;
  const OverloadRow* adaptive_idle = nullptr;
  for (const char* mode : {"watermark", "adaptive"}) {
    for (const double offered : config.offered_rps) {
      rows.push_back(run_overload_point(config, mode, offered));
      const auto& row = rows.back();
      std::printf("  %-9s %5.0f req/s offered  %4llu admitted  %4llu shed "
                  "(%.0f%%)  p99 %8.1f ms\n",
                  row.mode.c_str(), row.offered_rps,
                  static_cast<unsigned long long>(row.admitted),
                  static_cast<unsigned long long>(row.shed),
                  row.shed_rate * 100.0, row.p99_admitted_ms);
      if (row.offered == 0 || row.no_response != 0) {
        std::fprintf(stderr, "FAIL: point %s/%.0f lost requests\n", mode,
                     offered);
        return 1;
      }
    }
    const auto& peak = rows.back();
    if (peak.mode == "watermark") watermark_peak = &peak;
    if (peak.mode == "adaptive") {
      adaptive_peak = &peak;
      adaptive_idle = &rows[rows.size() - config.offered_rps.size()];
    }
  }

  // Gate 1: the watermark controller never sheds — SPED queues are always
  // empty, which is exactly why the adaptive manager exists.
  for (const auto& row : rows) {
    if (row.mode == "watermark" && row.shed != 0) {
      std::fprintf(stderr,
                   "FAIL: watermark shed %llu requests at %.0f req/s — the "
                   "SPED queue-length ablation no longer holds\n",
                   static_cast<unsigned long long>(row.shed),
                   row.offered_rps);
      return 1;
    }
  }
  // Gate 2: adaptive admits everything below capacity...
  if (adaptive_idle->shed != 0) {
    std::fprintf(stderr,
                 "FAIL: adaptive shed %llu requests below capacity\n",
                 static_cast<unsigned long long>(adaptive_idle->shed));
    return 1;
  }
  // ...and sheds a real fraction of an 8x overload.
  if (adaptive_peak->shed_rate < 0.10) {
    std::fprintf(stderr, "FAIL: adaptive shed only %.1f%% at 8x capacity\n",
                 adaptive_peak->shed_rate * 100.0);
    return 1;
  }
  // Gate 3: shedding must buy a bounded admitted p99.
  if (adaptive_peak->p99_admitted_ms >=
      watermark_peak->p99_admitted_ms / 2.0) {
    std::fprintf(stderr,
                 "FAIL: adaptive admitted p99 %.1f ms not < half of "
                 "watermark %.1f ms at 8x capacity\n",
                 adaptive_peak->p99_admitted_ms,
                 watermark_peak->p99_admitted_ms);
    return 1;
  }

  const std::string json = overload_rows_to_json(rows, env.quick);
  std::string error;
  if (!validate_overload_json(json, &error)) {
    std::fprintf(stderr, "FAIL: emitted JSON invalid: %s\n%s\n",
                 error.c_str(), json.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  if (!out.good()) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
