// Ablation (option O4): asynchronous completion events (proactor-emulated
// file I/O + completion events) vs synchronous completions (hooks block
// their worker) under cache-miss-heavy load.
//
// COPS-HTTP ships with Asynchronous, COPS-FTP with Synchronous (Table 1) —
// this bench shows the tradeoff that drove those choices.
#include <cstdio>

#include "bench_common.hpp"
#include "http/http_server.hpp"

int main() {
  using namespace cops;
  bench::print_header(
      "ABLATION O4 — asynchronous vs synchronous completion events",
      "Cache disabled so every request performs file I/O; worker pool "
      "fixed at 2.");

  auto env = bench::bench_env();
  auto fileset = bench::ensure_fileset(env);

  auto run = [&](nserver::CompletionMode mode, size_t clients) {
    auto options = http::CopsHttpServer::default_options();
    options.completion = mode;
    options.cache_policy = nserver::CachePolicyKind::kNone;
    options.processor_threads = 2;
    options.file_io_threads = 2;
    http::HttpServerConfig config;
    config.doc_root = fileset.root;
    http::CopsHttpServer server(options, config);
    if (!server.start().is_ok()) return loadgen::ClientStats{};
    loadgen::ClientConfig load;
    load.server = net::InetAddress::loopback(server.port());
    load.num_clients = clients;
    load.think_time = std::chrono::milliseconds(2);
    load.duration = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(env.seconds_per_point));
    auto sampler = std::make_shared<loadgen::WorkloadSampler>(fileset);
    load.path_for = [sampler](size_t, std::mt19937& rng) {
      return sampler->sample(rng);
    };
    auto stats = loadgen::run_clients(load);
    server.stop();
    return stats;
  };

  const std::vector<size_t> sweep =
      env.quick ? std::vector<size_t>{16, 128}
                : std::vector<size_t>{16, 64, 256};
  std::printf("%10s %14s %14s %14s %14s\n", "clients", "async rps",
              "sync rps", "async p99 us", "sync p99 us");
  for (size_t clients : sweep) {
    auto async_stats = run(nserver::CompletionMode::kAsynchronous, clients);
    auto sync_stats = run(nserver::CompletionMode::kSynchronous, clients);
    std::printf("%10zu %14.1f %14.1f %14lld %14lld\n", clients,
                async_stats.throughput_rps(), sync_stats.throughput_rps(),
                static_cast<long long>(
                    async_stats.response_time.quantile_micros(0.99)),
                static_cast<long long>(
                    sync_stats.response_time.quantile_micros(0.99)));
  }
  std::printf(
      "\nAsync keeps the small worker pool free while I/O is in flight "
      "(completion events rejoin the queue); sync is simpler and fine when "
      "the pool can grow (COPS-FTP pairs it with dynamic allocation).\n");
  return 0;
}
