// Shared machinery for the send-path benchmark (BENCH_send_path.json).
//
// One COPS-HTTP server per send_path mode (copy / writev / sendfile) serves
// a cached-file-heavy workload with an occasional large sendfile-eligible
// request; the profiler's send-path counters turn into per-reply figures:
// how many reply bytes each mode materialises into owned buffers before the
// socket sees them.  Used by both the committed-baseline runner
// (micro_send_path) and the perf-smoke ctest.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "http/http_server.hpp"
#include "http/response.hpp"
#include "loadgen/http_client.hpp"
#include "nserver/options.hpp"

namespace cops::bench {

struct SendPathRow {
  std::string mode;
  double rps = 0.0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  uint64_t replies = 0;
  double bytes_copied_per_reply = 0.0;
  double sendfile_bytes_per_reply = 0.0;
  uint64_t writev_calls = 0;
};

struct SendPathBenchConfig {
  std::string docroot;
  double seconds = 1.5;
  size_t clients = 32;
  size_t small_files = 16;
  size_t small_file_bytes = 32 * 1024;
  // One file above the sendfile threshold: exercises the fd path in
  // send_path=sendfile and the cache path in the other two modes.
  size_t big_file_bytes = 1024 * 1024;
  size_t sendfile_min_bytes = 256 * 1024;
  // Every Nth request fetches the big file; the rest hit the cached set.
  size_t big_every = 16;
  unsigned seed = 7;
};

inline SendPathBenchConfig send_path_quick_config(std::string docroot) {
  SendPathBenchConfig config;
  config.docroot = std::move(docroot);
  config.seconds = 0.4;
  config.clients = 8;
  config.small_files = 4;
  return config;
}

// Writes the benchmark file set: small_files cacheable files plus one large
// sendfile-eligible file.  Deterministic contents so reply streams are
// comparable across modes.
inline bool make_send_path_docroot(const SendPathBenchConfig& config) {
  std::string mkdir = "mkdir -p " + config.docroot;
  if (std::system(mkdir.c_str()) != 0) return false;
  for (size_t i = 0; i < config.small_files; ++i) {
    std::ofstream out(config.docroot + "/small" + std::to_string(i) + ".html",
                      std::ios::binary | std::ios::trunc);
    if (!out) return false;
    std::string chunk(config.small_file_bytes,
                      static_cast<char>('a' + (i % 26)));
    out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  }
  std::ofstream big(config.docroot + "/big.bin",
                    std::ios::binary | std::ios::trunc);
  if (!big) return false;
  std::string chunk(config.big_file_bytes, 'B');
  big.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  return big.good();
}

inline nserver::SendPath parse_send_path_mode(const std::string& mode) {
  if (mode == "copy") return nserver::SendPath::kCopy;
  if (mode == "sendfile") return nserver::SendPath::kSendfile;
  return nserver::SendPath::kWritev;
}

inline SendPathRow run_send_path_mode(const SendPathBenchConfig& config,
                                      const std::string& mode) {
  auto options = http::CopsHttpServer::default_options();
  options.profiling = true;
  options.send_path = parse_send_path_mode(mode);
  options.sendfile_min_bytes = config.sendfile_min_bytes;
  http::HttpServerConfig server_config;
  server_config.doc_root = config.docroot;
  http::CopsHttpServer server(options, server_config);
  if (!server.start().is_ok()) return {};

  loadgen::ClientConfig load;
  load.server = net::InetAddress::loopback(server.port());
  load.num_clients = config.clients;
  load.requests_per_connection = 5;
  load.think_time = std::chrono::milliseconds(0);
  load.duration = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(config.seconds));
  load.connect_timeout = std::chrono::milliseconds(500);
  load.seed = config.seed;
  const size_t small_files = config.small_files;
  const size_t big_every = config.big_every;
  load.path_for = [small_files, big_every](size_t client_index,
                                           std::mt19937& rng) {
    if (big_every != 0 && rng() % big_every == 0) return std::string("/big.bin");
    const size_t pick = (client_index + rng()) % small_files;
    return "/small" + std::to_string(pick) + ".html";
  };

  // Warm-up populates the cache; deltas below exclude it from the counters.
  auto warm = load;
  warm.duration = std::chrono::milliseconds(150);
  loadgen::run_clients(warm);
  const auto before = server.server().profile();
  const auto stats = loadgen::run_clients(load);
  const auto after = server.server().profile();
  server.stop();

  SendPathRow row;
  row.mode = mode;
  row.rps = stats.throughput_rps();
  row.p50_us = stats.response_time.quantile_micros(0.5);
  row.p99_us = stats.response_time.quantile_micros(0.99);
  row.replies = after.replies_sent - before.replies_sent;
  row.writev_calls = after.send_writev_calls - before.send_writev_calls;
  if (row.replies > 0) {
    row.bytes_copied_per_reply =
        static_cast<double>(after.send_bytes_copied - before.send_bytes_copied) /
        static_cast<double>(row.replies);
    row.sendfile_bytes_per_reply =
        static_cast<double>(after.send_sendfile_bytes -
                            before.send_sendfile_bytes) /
        static_cast<double>(row.replies);
  }
  return row;
}

inline std::string send_path_rows_to_json(const std::vector<SendPathRow>& rows,
                                          bool quick) {
  std::string out = "{\n  \"benchmark\": \"send_path\",\n  \"quick\": ";
  out += quick ? "true" : "false";
  out += ",\n  \"rows\": [\n";
  char buf[256];
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"rps\": %.1f, \"p50_us\": %lld, "
                  "\"p99_us\": %lld, \"replies\": %llu, "
                  "\"bytes_copied_per_reply\": %.1f, "
                  "\"sendfile_bytes_per_reply\": %.1f, "
                  "\"writev_calls\": %llu}%s\n",
                  row.mode.c_str(), row.rps,
                  static_cast<long long>(row.p50_us),
                  static_cast<long long>(row.p99_us),
                  static_cast<unsigned long long>(row.replies),
                  row.bytes_copied_per_reply, row.sendfile_bytes_per_reply,
                  static_cast<unsigned long long>(row.writev_calls),
                  i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

// Structural validation of the emitted JSON — the perf-smoke gate fails on a
// malformed file rather than committing garbage.  Checks balanced braces and
// brackets, the required keys, and that all three modes are present.
inline bool validate_send_path_json(const std::string& text,
                                    std::string* error) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    if (braces < 0 || brackets < 0) {
      if (error) *error = "unbalanced close at offset " + std::to_string(i);
      return false;
    }
  }
  if (braces != 0 || brackets != 0 || in_string) {
    if (error) *error = "unbalanced braces/brackets/quotes";
    return false;
  }
  for (const char* key :
       {"\"benchmark\": \"send_path\"", "\"rows\"", "\"mode\": \"copy\"",
        "\"mode\": \"writev\"", "\"mode\": \"sendfile\"",
        "\"bytes_copied_per_reply\"", "\"rps\"", "\"p50_us\"", "\"p99_us\""}) {
    if (text.find(key) == std::string::npos) {
      if (error) *error = std::string("missing key ") + key;
      return false;
    }
  }
  return true;
}

// Satellite micro-assert: HttpResponse::serialize() must reserve the exact
// final size up front.  A geometric append-growth would leave capacity well
// above size for a large body; exact reserve leaves them equal.
inline bool serialize_reserves_exactly(std::string* error) {
  http::HttpResponse resp;
  resp.status = http::StatusCode::kOk;
  resp.set_header("Content-Type", "application/octet-stream");
  resp.body.assign(8u * 1024u * 1024u, 'x');
  const std::string wire = resp.serialize();
  if (wire.capacity() != wire.size()) {
    if (error) {
      *error = "serialize() reallocated: size=" + std::to_string(wire.size()) +
               " capacity=" + std::to_string(wire.capacity());
    }
    return false;
  }
  return true;
}

}  // namespace cops::bench
