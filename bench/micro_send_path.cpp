// Send-path micro-benchmark: copy vs writev vs sendfile reply paths on the
// same cached-file workload, persisted as BENCH_send_path.json.
//
//   micro_send_path [--quick] [--out PATH]
//
// Honours COPS_BENCH_QUICK=1 / COPS_BENCH_SECONDS like the figure benches.
// Exits non-zero when the emitted JSON fails validation or when writev does
// not beat copy on copied bytes per reply — the regression gate this
// baseline exists for.
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "send_path_harness.hpp"

int main(int argc, char** argv) {
  using namespace cops::bench;

  std::string out_path = "BENCH_send_path.json";
  BenchEnv env = bench_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      env.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  print_header("Send-path baseline (copy vs writev vs sendfile)",
               "Zero-copy reply path: bytes copied per reply and throughput "
               "per send_path mode.");

  std::string reserve_error;
  if (!serialize_reserves_exactly(&reserve_error)) {
    std::fprintf(stderr, "FAIL: %s\n", reserve_error.c_str());
    return 1;
  }

  SendPathBenchConfig config =
      env.quick ? send_path_quick_config("/tmp/cops_send_path_docroot")
                : SendPathBenchConfig{};
  if (!env.quick) {
    config.docroot = "/tmp/cops_send_path_docroot";
    config.seconds = env.seconds_per_point;
  }
  if (!make_send_path_docroot(config)) {
    std::fprintf(stderr, "FAIL: could not create docroot %s\n",
                 config.docroot.c_str());
    return 1;
  }

  std::vector<SendPathRow> rows;
  for (const char* mode : {"copy", "writev", "sendfile"}) {
    rows.push_back(run_send_path_mode(config, mode));
    const auto& row = rows.back();
    std::printf("  %-9s %9.1f req/s  p50 %6lld us  p99 %6lld us  "
                "%10.1f copied B/reply  %10.1f sendfile B/reply\n",
                row.mode.c_str(), row.rps,
                static_cast<long long>(row.p50_us),
                static_cast<long long>(row.p99_us),
                row.bytes_copied_per_reply, row.sendfile_bytes_per_reply);
    if (row.replies == 0) {
      std::fprintf(stderr, "FAIL: mode %s completed no replies\n",
                   row.mode.c_str());
      return 1;
    }
  }

  // The acceptance gate: the scatter-gather path must copy at least 20%
  // fewer bytes per reply than the flat-buffer path on this cached-file
  // workload (it copies only headers, so the real margin is far larger).
  const double copy_bytes = rows[0].bytes_copied_per_reply;
  const double writev_bytes = rows[1].bytes_copied_per_reply;
  if (!(writev_bytes <= 0.8 * copy_bytes)) {
    std::fprintf(stderr,
                 "FAIL: writev copied %.1f B/reply vs copy %.1f B/reply "
                 "(want <= 0.8x)\n",
                 writev_bytes, copy_bytes);
    return 1;
  }

  const std::string json = send_path_rows_to_json(rows, env.quick);
  std::string json_error;
  if (!validate_send_path_json(json, &json_error)) {
    std::fprintf(stderr, "FAIL: malformed JSON: %s\n", json_error.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  if (!out.good()) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
