// Table 3 reproduction: the code distribution of COPS-FTP.
//
// Paper (Java, on top of the reused Apache FTPServer):
//   Reused code     124 classes  945 methods  8,141 NCSS
//   Removed code     18 classes  199 methods  1,186 NCSS
//   Added code       23 classes  150 methods  1,897 NCSS
//   Generated code   84 classes  480 methods  2,937 NCSS
//
// Mapping onto this repository (see DESIGN.md, substitutions):
//   Reused    → the FTP application substrate (protocol, user db, fs view,
//               data connections) standing in for Apache FTPServer
//   Added     → the event-driven adaptation (ftp_server hooks)
//   Generated → copsgen output for the COPS-FTP preset + the N-Server
//               framework sources the generator instantiates
//   Removed   → not applicable (we built the substrate event-ready rather
//               than carving a thread-per-connection server apart)
#include <cstdio>

#include "bench_common.hpp"
#include "common/source_stats.hpp"
#include "gdp/pattern_template.hpp"

namespace {

void print_row(const char* label, const cops::SourceStats& stats,
               const char* paper) {
  std::printf("%-18s %8d %8d %8d     %s\n", label, stats.classes,
              stats.methods, stats.ncss, paper);
}

}  // namespace

int main() {
  using namespace cops;
  bench::print_header(
      "TABLE 3 — code distribution of COPS-FTP",
      "Columns: classes / methods / NCSS, measured on this repository;\n"
      "paper's Java numbers shown alongside for shape comparison.");

  const std::string src = std::string(COPS_SOURCE_DIR) + "/src";
  const auto reused = analyze_files({
      src + "/ftp/command.hpp", src + "/ftp/command.cpp",
      src + "/ftp/replies.hpp", src + "/ftp/user_db.hpp",
      src + "/ftp/user_db.cpp", src + "/ftp/fs_view.hpp",
      src + "/ftp/fs_view.cpp", src + "/ftp/session.hpp",
      src + "/ftp/session.cpp",
  });
  const auto added = analyze_files({
      src + "/ftp/ftp_server.hpp",
      src + "/ftp/ftp_server.cpp",
      std::string(COPS_SOURCE_DIR) + "/examples/cops_ftp.cpp",
  });

  // Generated: instantiate the template for the COPS-FTP preset, plus the
  // framework sources whose inclusion the options govern.
  const auto tmpl = gdp::make_nserver_template();
  auto scaffold = tmpl.generate(gdp::nserver_ftp_options(),
                                "/tmp/cops_bench_gen_ftp",
                                {{"app_name", "CopsFtp"},
                                 {"listen_port", "2121"}});
  if (!scaffold.is_ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 scaffold.status().to_string().c_str());
    return 1;
  }
  auto generated = scaffold.value().totals;
  generated += analyze_directory(src + "/nserver");
  generated += analyze_directory(src + "/net");

  std::printf("%-18s %8s %8s %8s     %s\n", "", "classes", "methods", "NCSS",
              "paper (classes/methods/NCSS)");
  print_row("Reused code", reused, "124 / 945 / 8,141");
  print_row("Added code", added, " 23 / 150 / 1,897");
  print_row("Generated code", generated, " 84 / 480 / 2,937");
  std::printf("%-18s %8s %8s %8s     %s\n", "Removed code", "-", "-", "-",
              " 18 / 199 / 1,186 (N/A here: substrate built event-ready)");

  const double added_fraction =
      double(added.ncss) / double(added.ncss + reused.ncss + generated.ncss);
  std::printf(
      "\nShape check: the event-driven adaptation is %.1f%% of the total "
      "code (paper: 1,897 / 12,975 = 14.6%%; and only 711 lines were truly "
      "new logic).\n",
      added_fraction * 100.0);
  return 0;
}
