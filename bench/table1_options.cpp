// Table 1 reproduction: the N-Server options, their legal values, and the
// settings used for COPS-FTP and COPS-HTTP — printed from the live pattern
// template, then validated.
#include <cstdio>

#include "bench_common.hpp"
#include "gdp/pattern_template.hpp"

int main() {
  using namespace cops;
  bench::print_header(
      "TABLE 1 — N-Server options and their values",
      "Paper: options O1-O12 with legal values and the two application "
      "presets.");

  const auto tmpl = gdp::make_nserver_template();
  const auto ftp = tmpl.options().with_defaults(gdp::nserver_ftp_options());
  const auto http = tmpl.options().with_defaults(gdp::nserver_http_options());

  std::printf("%-42s %-38s %-14s %-14s\n", "Option", "Legal values",
              "COPS-FTP", "COPS-HTTP");
  std::printf("%s\n", std::string(110, '-').c_str());
  for (const auto& spec : tmpl.options().specs()) {
    std::string legal;
    switch (spec.type) {
      case gdp::OptionType::kBool:
        legal = "Yes/No";
        break;
      case gdp::OptionType::kInt:
        legal = std::to_string(spec.min_value) + ".." +
                std::to_string(spec.max_value) + " (paper: 1 or 2..N)";
        break;
      case gdp::OptionType::kEnum:
        for (const auto& value : spec.legal_values) {
          if (!legal.empty()) legal += "/";
          legal += value;
        }
        break;
    }
    std::printf("%-42s %-38s %-14s %-14s\n", spec.label.c_str(), legal.c_str(),
                ftp.get_or(spec.key, "?").c_str(),
                http.get_or(spec.key, "?").c_str());
  }

  const auto ftp_problems = tmpl.options().validate(ftp);
  const auto http_problems = tmpl.options().validate(http);
  std::printf("\npreset validation: COPS-FTP %s, COPS-HTTP %s\n",
              ftp_problems.empty() ? "OK" : "INVALID",
              http_problems.empty() ? "OK" : "INVALID");
  std::printf(
      "paper values matched: FTP {1, Yes, Yes, Synchronous, Dynamic, No, "
      "Yes, No, No, Production, No, No}\n"
      "                      HTTP {1, Yes, Yes, Asynchronous, Static, "
      "LRU, No, No*, No*, Production, No, No}\n"
      "(*: scheduling / overload control were enabled only for the second "
      "and third HTTP experiments — see fig5/fig6 benches)\n");
  return (ftp_problems.empty() && http_problems.empty()) ? 0 : 1;
}
