// Shared-nothing scale-out baseline: throughput and latency vs shard count
// for the per-shard SO_REUSEPORT accept path and the two-tier file cache,
// persisted as BENCH_scaleout.json.
//
//   micro_scaleout [--quick] [--out PATH]
//   micro_scaleout --curve [--accept-path dispatch|reuseport] [--shards N]
//                          [--l1 0|1] [--rates R1,R2,...]
//
// Real-time points (see scaleout_harness.hpp): COPS-HTTP in SPED with a
// sleeping per-request Handle cost, offered an open-loop Poisson load.
// Exits non-zero when the emitted JSON fails validation or when the
// regression gates below fail:
//
//   * reuseport + L1 throughput scales: achieved rate at the largest shard
//     count is at least 1.5x (quick: 1.2x) the single-shard rate;
//   * at a matched offered load below single-shard capacity, reuseport p99
//     is no worse than the single-listener dispatch baseline (with slack
//     for CI noise);
//   * matched-load points lose nothing, and the L1 actually serves: its
//     hit rate is real once warmed.
//
// --curve skips the gates and JSON: it sweeps the given offered rates over
// ONE fixed configuration and prints achieved-vs-offered plus p50/p99 from
// arrival — the Fig 3/4-style load-curve generator (see EXPERIMENTS.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "scaleout_harness.hpp"

namespace {

int run_curve(const char* accept_path, int shards, bool l1,
              const std::vector<double>& rates) {
  using namespace cops::bench;
  ScaleoutBenchConfig config;
  if (!make_scaleout_docroot(config)) {
    std::fprintf(stderr, "FAIL: could not create docroot %s\n",
                 config.docroot.c_str());
    return 1;
  }
  std::printf("# load curve: accept_path=%s shards=%d l1=%d "
              "(capacity %.0f req/s per shard)\n",
              accept_path, shards, l1 ? 1 : 0, scaleout_capacity_rps(config));
  std::printf("%10s %10s %10s %10s %8s\n", "offered", "achieved", "p50_ms",
              "p99_ms", "errors");
  for (const double rate : rates) {
    const auto row = run_scaleout_point(config, accept_path, "curve", shards,
                                        l1, rate);
    std::printf("%10.0f %10.1f %10.2f %10.2f %8llu\n", row.offered_rps,
                row.achieved_rps, row.p50_ms, row.p99_ms,
                static_cast<unsigned long long>(row.errors));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cops::bench;

  std::string out_path = "BENCH_scaleout.json";
  BenchEnv env = bench_env();
  bool curve = false;
  std::string curve_accept_path = "reuseport";
  int curve_shards = 4;
  bool curve_l1 = true;
  std::vector<double> curve_rates = {25, 50, 100, 200, 400, 800};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      env.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--curve") == 0) {
      curve = true;
    } else if (std::strcmp(argv[i], "--accept-path") == 0 && i + 1 < argc) {
      curve_accept_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      curve_shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--l1") == 0 && i + 1 < argc) {
      curve_l1 = std::atoi(argv[++i]) != 0;
    } else if (std::strcmp(argv[i], "--rates") == 0 && i + 1 < argc) {
      curve_rates.clear();
      for (const char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        curve_rates.push_back(std::atof(tok));
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH]\n"
                   "       %s --curve [--accept-path dispatch|reuseport] "
                   "[--shards N] [--l1 0|1] [--rates R1,R2,...]\n",
                   argv[0], argv[0]);
      return 2;
    }
  }
  if (curve) {
    if ((curve_accept_path != "reuseport" &&
         curve_accept_path != "dispatch") ||
        curve_shards < 1 || curve_rates.empty()) {
      std::fprintf(stderr, "bad --curve arguments\n");
      return 2;
    }
    return run_curve(curve_accept_path.c_str(), curve_shards, curve_l1,
                     curve_rates);
  }

  print_header("Scale-out baseline (reuseport vs dispatch, L1 vs shared)",
               "Open-loop Poisson load against COPS-HTTP in SPED with a "
               "sleeping Handle cost.\nSaturation points measure capacity "
               "per shard count; matched points compare latency\nat "
               "identical offered load.");

  const ScaleoutBenchConfig config =
      env.quick ? scaleout_quick_config() : ScaleoutBenchConfig{};
  if (!make_scaleout_docroot(config)) {
    std::fprintf(stderr, "FAIL: could not create docroot %s\n",
                 config.docroot.c_str());
    return 1;
  }
  const double capacity = scaleout_capacity_rps(config);
  const int max_shards = config.shard_counts.back();

  std::vector<ScaleoutRow> rows;
  const auto point = [&](const char* accept_path, const char* scenario,
                         int shards, bool l1, double offered) {
    rows.push_back(
        run_scaleout_point(config, accept_path, scenario, shards, l1,
                           offered));
    const auto& row = rows.back();
    std::printf("  %-9s %-8s %d shard%s l1=%d  %5.0f offered  %6.1f "
                "achieved  p50 %7.2f ms  p99 %7.2f ms  l1_rate %.2f\n",
                row.accept_path.c_str(), row.scenario.c_str(), row.shards,
                row.shards == 1 ? " " : "s", row.l1 ? 1 : 0, row.offered_rps,
                row.achieved_rps, row.p50_ms, row.p99_ms, row.l1_hit_rate);
    return &rows.back();
  };

  // Saturation sweep: capacity vs shard count on the shared-nothing path.
  const ScaleoutRow* first_shard = nullptr;
  const ScaleoutRow* peak_shard = nullptr;
  for (const int shards : config.shard_counts) {
    const double offered = config.saturation_factor * capacity * shards;
    const ScaleoutRow* row =
        point("reuseport", "saturate", shards, /*l1=*/true, offered);
    if (!first_shard) first_shard = row;
    peak_shard = row;
  }
  // The single-listener and shared-cache ablations at the peak shard count.
  const double peak_offered =
      config.saturation_factor * capacity * max_shards;
  const ScaleoutRow* peak_dispatch =
      point("dispatch", "saturate", max_shards, /*l1=*/true, peak_offered);
  point("reuseport", "saturate", max_shards, /*l1=*/false, peak_offered);
  // Matched offered load, below one shard's capacity: latency head-to-head.
  const ScaleoutRow* matched_reuseport = point(
      "reuseport", "matched", max_shards, /*l1=*/true, config.matched_rps);
  const ScaleoutRow* matched_dispatch = point(
      "dispatch", "matched", max_shards, /*l1=*/true, config.matched_rps);

  // Gate 1: shared-nothing throughput scaling.  Full mode demands the
  // committed baseline's 1.5x at 4 shards; quick (2 shards, short window)
  // gets a softer floor against CI noise.
  const double floor = env.quick ? 1.2 : 1.5;
  if (first_shard->achieved_rps <= 0.0 ||
      peak_shard->achieved_rps < floor * first_shard->achieved_rps) {
    std::fprintf(stderr,
                 "FAIL: %d-shard achieved %.1f req/s is not %.1fx the "
                 "1-shard %.1f req/s\n",
                 peak_shard->shards, peak_shard->achieved_rps, floor,
                 first_shard->achieved_rps);
    return 1;
  }
  // Gate 2: at matched load, reuseport latency is no worse than the
  // dispatch baseline (slack: 1.5x + 5 ms absolute for scheduler noise).
  if (matched_reuseport->p99_ms >
      matched_dispatch->p99_ms * 1.5 + 5.0) {
    std::fprintf(stderr,
                 "FAIL: matched-load reuseport p99 %.2f ms much worse than "
                 "dispatch %.2f ms\n",
                 matched_reuseport->p99_ms, matched_dispatch->p99_ms);
    return 1;
  }
  // Gate 3: matched-load points are uncongested — nothing may be lost.
  for (const ScaleoutRow* row : {matched_reuseport, matched_dispatch}) {
    if (row->errors != 0 || row->completed != row->arrivals) {
      std::fprintf(stderr,
                   "FAIL: matched %s point lost requests (%llu/%llu, %llu "
                   "errors)\n",
                   row->accept_path.c_str(),
                   static_cast<unsigned long long>(row->completed),
                   static_cast<unsigned long long>(row->arrivals),
                   static_cast<unsigned long long>(row->errors));
      return 1;
    }
  }
  // Gate 4: the per-shard L1 really serves traffic when enabled.
  if (peak_shard->l1_hit_rate < 0.30) {
    std::fprintf(stderr, "FAIL: L1 hit rate %.2f — the tier is not serving\n",
                 peak_shard->l1_hit_rate);
    return 1;
  }
  if (peak_dispatch->completed == 0) {
    std::fprintf(stderr, "FAIL: dispatch baseline served nothing\n");
    return 1;
  }

  const std::string json = scaleout_rows_to_json(config, rows, env.quick);
  std::string error;
  if (!validate_scaleout_json(json, &error)) {
    std::fprintf(stderr, "FAIL: emitted JSON invalid: %s\n%s\n",
                 error.c_str(), json.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  if (!out.good()) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
