// Table 4 reproduction: the code distribution of COPS-HTTP.
//
// Paper (Java):
//   Generated code            79 classes  474 methods  2,697 NCSS
//   HTTP protocol code        10 classes   50 methods    449 NCSS
//   Other application code    16 classes   89 methods    785 NCSS
//   Total                    105 classes  613 methods  3,931 NCSS
//
// The paper's headline: with an existing HTTP protocol library, only 785
// NCSS (20 % of the server) must be written by hand — the rest is generated.
#include <cstdio>

#include "bench_common.hpp"
#include "common/source_stats.hpp"
#include "gdp/pattern_template.hpp"

namespace {

void print_row(const char* label, const cops::SourceStats& stats,
               const char* paper) {
  std::printf("%-24s %8d %8d %8d     %s\n", label, stats.classes,
              stats.methods, stats.ncss, paper);
}

}  // namespace

int main() {
  using namespace cops;
  bench::print_header(
      "TABLE 4 — code distribution of COPS-HTTP",
      "Columns: classes / methods / NCSS, measured on this repository;\n"
      "paper's Java numbers alongside.");

  const std::string root(COPS_SOURCE_DIR);
  const std::string src = root + "/src";

  const auto tmpl = gdp::make_nserver_template();
  auto scaffold = tmpl.generate(gdp::nserver_http_options(),
                                "/tmp/cops_bench_gen_http",
                                {{"app_name", "CopsHttp"},
                                 {"listen_port", "8080"}});
  if (!scaffold.is_ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 scaffold.status().to_string().c_str());
    return 1;
  }
  auto generated = scaffold.value().totals;
  generated += analyze_directory(src + "/nserver");
  generated += analyze_directory(src + "/net");

  const auto protocol = analyze_files({
      src + "/http/method.hpp", src + "/http/status_code.hpp",
      src + "/http/request.hpp", src + "/http/request.cpp",
      src + "/http/request_parser.hpp", src + "/http/request_parser.cpp",
      src + "/http/response.hpp", src + "/http/response.cpp",
      src + "/http/mime.hpp", src + "/http/mime.cpp",
      src + "/http/http_date.hpp", src + "/http/http_date.cpp",
  });
  const auto application = analyze_files({
      src + "/http/http_server.hpp",
      src + "/http/http_server.cpp",
      root + "/examples/cops_http.cpp",
  });

  auto total = generated;
  total += protocol;
  total += application;

  std::printf("%-24s %8s %8s %8s     %s\n", "", "classes", "methods", "NCSS",
              "paper (classes/methods/NCSS)");
  print_row("Generated code", generated, " 79 / 474 / 2,697");
  print_row("HTTP protocol code", protocol, " 10 /  50 /   449");
  print_row("Other application code", application, " 16 /  89 /   785");
  print_row("Total code", total, "105 / 613 / 3,931");

  const double handwritten_fraction =
      double(application.ncss) / double(total.ncss);
  std::printf(
      "\nShape check: hand-written server-specific code is %.1f%% of the "
      "total (paper: 785 / 3,931 = 20%%).\n",
      handwritten_fraction * 100.0);
  return 0;
}
