// Shared sweep machinery for the Fig. 3/4 experiments (COPS-HTTP vs the
// Apache-like baseline under the SpecWeb99-style workload).
#pragma once

#include <functional>
#include <memory>

#include "baseline/threaded_server.hpp"
#include "bench_common.hpp"
#include "http/http_server.hpp"
#include "loadgen/http_client.hpp"

namespace cops::bench {

struct SweepPoint {
  size_t clients = 0;
  loadgen::ClientStats cops;
  loadgen::ClientStats apache;
};

struct SweepConfig {
  BenchEnv env;
  loadgen::FilesetConfig fileset;
  std::chrono::milliseconds think_time{5};
  // Paper: COPS-HTTP cache was 20 MB of a 204.8 MB set (~10 %); scale the
  // same ratio to the generated set.
  double cache_fraction = 0.10;
};

inline loadgen::ClientConfig make_load(const SweepConfig& sweep,
                                       uint16_t port, size_t clients) {
  loadgen::ClientConfig load;
  load.server = net::InetAddress::loopback(port);
  load.num_clients = clients;
  load.requests_per_connection = 5;  // paper: 5 requests per connection
  load.think_time = sweep.think_time;
  load.duration = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(sweep.env.seconds_per_point));
  load.connect_timeout = std::chrono::milliseconds(500);
  load.backoff_initial = std::chrono::milliseconds(50);
  load.backoff_max = std::chrono::seconds(6);  // scaled Solaris 1-min cap
  auto sampler = std::make_shared<loadgen::WorkloadSampler>(sweep.fileset);
  load.path_for = [sampler](size_t, std::mt19937& rng) {
    return sampler->sample(rng);
  };
  return load;
}

inline loadgen::ClientStats run_cops_point(const SweepConfig& sweep,
                                           size_t clients) {
  auto options = http::CopsHttpServer::default_options();
  options.cache_capacity_bytes = static_cast<size_t>(
      sweep.cache_fraction *
      static_cast<double>(loadgen::fileset_bytes(sweep.fileset)));
  http::HttpServerConfig config;
  config.doc_root = sweep.fileset.root;
  http::CopsHttpServer server(options, config);
  if (!server.start().is_ok()) return {};
  // Warm-up pass, as in the paper ("Both Web servers were warmed up").
  auto warm = make_load(sweep, server.port(), std::min<size_t>(clients, 16));
  warm.duration = std::chrono::milliseconds(150);
  loadgen::run_clients(warm);
  auto stats = loadgen::run_clients(make_load(sweep, server.port(), clients));
  server.stop();
  return stats;
}

inline loadgen::ClientStats run_apache_point(const SweepConfig& sweep,
                                             size_t clients) {
  baseline::ThreadedServerConfig config;
  config.doc_root = sweep.fileset.root;
  config.worker_pool = 150;   // Apache 1.3.27's bounded pool (paper)
  config.listen_backlog = 32; // small backlog → SYN drops under overload
  baseline::ThreadedHttpServer server(config);
  if (!server.start().is_ok()) return {};
  auto warm = make_load(sweep, server.port(), std::min<size_t>(clients, 16));
  warm.duration = std::chrono::milliseconds(150);
  loadgen::run_clients(warm);
  auto stats = loadgen::run_clients(make_load(sweep, server.port(), clients));
  server.stop();
  return stats;
}

inline std::vector<SweepPoint> run_sweep(const SweepConfig& sweep) {
  std::vector<SweepPoint> points;
  for (size_t clients : client_sweep(sweep.env.quick)) {
    SweepPoint point;
    point.clients = clients;
    point.cops = run_cops_point(sweep, clients);
    point.apache = run_apache_point(sweep, clients);
    points.push_back(std::move(point));
    std::fprintf(stderr, "  [sweep] %zu clients done\n", clients);
  }
  return points;
}

}  // namespace cops::bench
