// Heap-allocation counter for the request-path benchmark and the
// allocation-counting perf-smoke test.
//
// Exactly one translation unit per executable defines
// COPS_ALLOC_COUNTER_IMPLEMENT before including this header; that TU
// provides replacement global operator new/delete which route through
// std::malloc/std::free and bump a thread-local counter pair.  Everything
// else includes the header plainly and only sees the accessor.
//
// The counters are thread-local on purpose: the measured decode loops are
// single-threaded, and thread-locality means background threads (none in
// the benches, but cheap insurance) cannot pollute a measurement window.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cops::bench {

struct AllocCounters {
  uint64_t count = 0;  // operator-new invocations on this thread
  uint64_t bytes = 0;  // bytes those invocations requested
};

// This thread's live counters (zero-initialised on first use).
AllocCounters& alloc_counters();

inline void reset_alloc_counters() { alloc_counters() = AllocCounters{}; }

}  // namespace cops::bench

#ifdef COPS_ALLOC_COUNTER_IMPLEMENT

#include <cstdlib>
#include <new>

// GCC pairs the visible malloc-backed operator new with the free() inside
// operator delete at STL inlining sites and warns, even though the pair is
// symmetric by construction.  Implement-TU only, so scoped to this block.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace cops::bench {

AllocCounters& alloc_counters() {
  // Trivially-constructible thread_local: its initialisation cannot recurse
  // into operator new.
  thread_local AllocCounters counters;
  return counters;
}

namespace alloc_counter_detail {

inline void* counted_alloc(std::size_t size) {
  auto& c = alloc_counters();
  c.count += 1;
  c.bytes += size;
  // malloc(0) may return nullptr legally; operator new must not.
  return std::malloc(size == 0 ? 1 : size);
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  auto& c = alloc_counters();
  c.count += 1;
  c.bytes += size;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace alloc_counter_detail
}  // namespace cops::bench

void* operator new(std::size_t size) {
  void* p = cops::bench::alloc_counter_detail::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return cops::bench::alloc_counter_detail::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return cops::bench::alloc_counter_detail::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = cops::bench::alloc_counter_detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return cops::bench::alloc_counter_detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return cops::bench::alloc_counter_detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // COPS_ALLOC_COUNTER_IMPLEMENT
