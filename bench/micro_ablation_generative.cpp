// Ablation: generation-time feature inclusion vs dynamic feature checks.
//
// The paper (Section III) argues a generative template beats a static
// framework because feature code is included/excluded when the code is
// generated: "Dynamic checks reduce application maintainability and add
// performance overheads."  This bench quantifies that overhead on an
// event-dispatch loop with the N-Server's crosscutting features (profiling,
// logging, debug trace, scheduling classification, idle bookkeeping):
//
//   * generated:  features pruned with `if constexpr` on a traits struct —
//                 what copsgen emits (traits.hpp);
//   * dynamic:    the same loop testing runtime flags per event — what a
//                 one-size-fits-all static framework must do.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

namespace {

struct Counters {
  std::atomic<uint64_t> events{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> trace_records{0};
  std::atomic<uint64_t> log_lines{0};
  uint64_t priority_sum = 0;
  uint64_t idle_stamp = 0;
};

// The per-event work itself (decode-ish byte scan) — identical in both
// variants so only the feature-check mechanism differs.
inline uint64_t event_payload(uint64_t seed) {
  uint64_t h = seed * 0x9e3779b97f4a7c15ull;
  h ^= h >> 32;
  return h;
}

// ---- generated variant: compile-time traits ---------------------------------

template <bool kProfiling, bool kLogging, bool kDebug, bool kScheduling,
          bool kIdleReaper>
void run_generated(Counters& counters, uint64_t seed) {
  const uint64_t value = event_payload(seed);
  if constexpr (kProfiling) {
    counters.events.fetch_add(1, std::memory_order_relaxed);
    counters.bytes.fetch_add(value & 0xFFF, std::memory_order_relaxed);
  }
  if constexpr (kLogging) {
    counters.log_lines.fetch_add(1, std::memory_order_relaxed);
  }
  if constexpr (kDebug) {
    counters.trace_records.fetch_add(1, std::memory_order_relaxed);
  }
  if constexpr (kScheduling) {
    counters.priority_sum += value % 3;
  }
  if constexpr (kIdleReaper) {
    counters.idle_stamp = value;
  }
}

// ---- dynamic variant: runtime flags ------------------------------------------

struct RuntimeFlags {
  bool profiling;
  bool logging;
  bool debug;
  bool scheduling;
  bool idle_reaper;
};

void run_dynamic(const RuntimeFlags& flags, Counters& counters,
                 uint64_t seed) {
  const uint64_t value = event_payload(seed);
  if (flags.profiling) {
    counters.events.fetch_add(1, std::memory_order_relaxed);
    counters.bytes.fetch_add(value & 0xFFF, std::memory_order_relaxed);
  }
  if (flags.logging) {
    counters.log_lines.fetch_add(1, std::memory_order_relaxed);
  }
  if (flags.debug) {
    counters.trace_records.fetch_add(1, std::memory_order_relaxed);
  }
  if (flags.scheduling) {
    counters.priority_sum += value % 3;
  }
  if (flags.idle_reaper) {
    counters.idle_stamp = value;
  }
}

void generated_all_features_off(benchmark::State& state) {
  Counters counters;
  uint64_t seed = 1;
  for (auto _ : state) {
    run_generated<false, false, false, false, false>(counters, seed++);
    benchmark::DoNotOptimize(counters.idle_stamp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(generated_all_features_off);

void dynamic_all_features_off(benchmark::State& state) {
  // The flags are volatile-read per batch to model configuration that the
  // optimizer cannot constant-fold away, as in a configurable framework.
  static volatile bool off = false;
  Counters counters;
  uint64_t seed = 1;
  for (auto _ : state) {
    RuntimeFlags flags{off, off, off, off, off};
    run_dynamic(flags, counters, seed++);
    benchmark::DoNotOptimize(counters.idle_stamp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(dynamic_all_features_off);

void generated_profiling_only(benchmark::State& state) {
  Counters counters;
  uint64_t seed = 1;
  for (auto _ : state) {
    run_generated<true, false, false, false, false>(counters, seed++);
    benchmark::DoNotOptimize(counters.idle_stamp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(generated_profiling_only);

void dynamic_profiling_only(benchmark::State& state) {
  static volatile bool on = true;
  static volatile bool off = false;
  Counters counters;
  uint64_t seed = 1;
  for (auto _ : state) {
    RuntimeFlags flags{on, off, off, off, off};
    run_dynamic(flags, counters, seed++);
    benchmark::DoNotOptimize(counters.idle_stamp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(dynamic_profiling_only);

}  // namespace

BENCHMARK_MAIN();
