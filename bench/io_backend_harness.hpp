// epoll-vs-io_uring backend harness, shared by the micro_io_backend baseline
// binary and the perf-smoke gate.  Real time, real loopback: the point is
// the syscall path (readiness + recv/send per request vs batched SQE
// submission and completion reaping), which the virtual-clock simnet
// benches cannot express.
//
// The modeled server: COPS-HTTP serving a small cached fileset over
// keep-alive connections.  Load is CLOSED-loop — a fixed set of concurrent
// keep-alive sessions, each issuing its next GET as soon as the previous
// reply completes — so both backends face the identical request stream and
// the measured quantity is per-request service latency plus the syscall
// overhead under comparison.
//
// Clients speak raw socket syscalls on purpose: when the io_uring backend
// is active the process-wide sync-over-ring ops shim routes TcpSocket
// send/recv through per-thread rings, and a client built on TcpSocket
// would smuggle ring overhead into the *client* half of the measurement.
// Raw ::send/::recv keeps the client constant across both rows.
#pragma once

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "http/http_server.hpp"
#include "net/uring.hpp"

namespace cops::bench {

struct IoBackendBenchConfig {
  std::string docroot = "/tmp/cops_bench_io_backend";
  int connections = 8;             // concurrent keep-alive sessions
  int requests_per_connection = 400;
  int warmup_requests = 40;        // per connection, excluded from stats
  size_t fileset_size = 16;
  size_t file_bytes = 2048;
  int dispatcher_threads = 2;
  unsigned seed = 7;
};

[[nodiscard]] inline IoBackendBenchConfig io_backend_quick_config(
    std::string docroot = "/tmp/cops_bench_io_backend") {
  IoBackendBenchConfig config;
  config.docroot = std::move(docroot);
  config.connections = 4;
  config.requests_per_connection = 60;
  config.warmup_requests = 10;
  return config;
}

struct IoBackendRow {
  std::string backend;  // "epoll" | "io_uring"
  bool effective = false;  // probe honoured the request (false = fell back)
  int connections = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t bytes_rx = 0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

[[nodiscard]] inline bool make_io_backend_docroot(
    const IoBackendBenchConfig& config) {
  std::error_code ec;
  std::filesystem::create_directories(config.docroot, ec);
  if (ec) return false;
  for (size_t i = 0; i < config.fileset_size; ++i) {
    std::ofstream out(config.docroot + "/f" + std::to_string(i) + ".txt",
                      std::ios::trunc | std::ios::binary);
    std::string body(config.file_bytes, static_cast<char>('a' + i % 26));
    out << body;
    if (!out.good()) return false;
  }
  return true;
}

[[nodiscard]] inline double io_backend_percentile(
    std::vector<int64_t> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return static_cast<double>(values[std::min(index, values.size() - 1)]);
}

namespace detail {

// One raw-syscall keep-alive session: issue `total` GETs back-to-back,
// recording per-request microsecond latencies after the warm-up prefix.
struct SessionResult {
  std::vector<int64_t> latencies_us;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t bytes_rx = 0;
};

inline void run_session(uint16_t port, const IoBackendBenchConfig& config,
                        unsigned seed, SessionResult* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    ++out->errors;
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ++out->errors;
    ::close(fd);
    return;
  }

  uint64_t rng = seed * 0x9e3779b97f4a7c15ull + 1;
  const int total = config.warmup_requests + config.requests_per_connection;
  std::string reply;
  reply.reserve(config.file_bytes + 512);
  char buf[4096];
  for (int i = 0; i < total; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const size_t pick = (rng >> 33) % config.fileset_size;
    const std::string request = "GET /f" + std::to_string(pick) +
                                ".txt HTTP/1.1\r\nHost: bench\r\n\r\n";
    const auto start = std::chrono::steady_clock::now();
    size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::send(fd, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        ++out->errors;
        ::close(fd);
        return;
      }
      sent += static_cast<size_t>(n);
    }
    // Read one full reply: headers, then Content-Length body bytes.
    reply.clear();
    size_t need = std::string::npos;  // total reply bytes once headers parse
    bool ok = false;
    while (true) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      reply.append(buf, static_cast<size_t>(n));
      if (need == std::string::npos) {
        const size_t header_end = reply.find("\r\n\r\n");
        if (header_end == std::string::npos) continue;
        const size_t cl = reply.find("Content-Length: ");
        if (cl == std::string::npos || cl > header_end) break;
        need = header_end + 4 +
               static_cast<size_t>(std::strtoul(reply.c_str() + cl + 16,
                                                nullptr, 10));
      }
      if (reply.size() >= need) {
        ok = reply.compare(0, 12, "HTTP/1.1 200") == 0;
        break;
      }
    }
    if (!ok) {
      ++out->errors;
      ::close(fd);
      return;
    }
    out->bytes_rx += reply.size();
    ++out->requests;
    if (i >= config.warmup_requests) {
      out->latencies_us.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
  }
  ::close(fd);
}

}  // namespace detail

// One point: start COPS-HTTP on the requested backend, drive the closed
// keep-alive load, report achieved rate and latency percentiles.
[[nodiscard]] inline IoBackendRow run_io_backend_point(
    const IoBackendBenchConfig& config, const char* backend) {
  auto options = http::CopsHttpServer::default_options();
  options.dispatcher_threads = config.dispatcher_threads;
  options.io_backend = std::string(backend) == "io_uring"
                           ? nserver::IoBackend::kIoUring
                           : nserver::IoBackend::kEpoll;
  options.cache_policy = nserver::CachePolicyKind::kLru;
  options.listen_port = 0;

  http::HttpServerConfig http_config;
  http_config.doc_root = config.docroot;
  http::CopsHttpServer server(std::move(options), http_config);
  if (!server.start().is_ok()) {
    std::fprintf(stderr, "io_backend bench: server start failed\n");
    return {};
  }

  IoBackendRow row;
  row.backend = backend;
  row.effective = nserver::to_string(server.server().effective_io_backend()) ==
                  std::string(std::string(backend) == "io_uring" ? "IoUring"
                                                                 : "Epoll");
  row.connections = config.connections;

  std::vector<detail::SessionResult> results(
      static_cast<size_t>(config.connections));
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < config.connections; ++i) {
    threads.emplace_back(detail::run_session, server.port(), std::cref(config),
                         config.seed + static_cast<unsigned>(i), &results[i]);
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  server.stop();

  std::vector<int64_t> latencies;
  for (auto& r : results) {
    row.requests += r.requests;
    row.errors += r.errors;
    row.bytes_rx += r.bytes_rx;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  row.rps = elapsed_s > 0.0 ? static_cast<double>(row.requests) / elapsed_s
                            : 0.0;
  row.p50_us = io_backend_percentile(latencies, 0.5);
  row.p99_us = io_backend_percentile(std::move(latencies), 0.99);
  return row;
}

[[nodiscard]] inline std::string io_backend_rows_to_json(
    const IoBackendBenchConfig& config, const std::vector<IoBackendRow>& rows,
    bool quick) {
  std::string out = "{\n  \"benchmark\": \"io_backend\",\n  \"quick\": ";
  out += quick ? "true" : "false";
  char line[384];
  std::snprintf(line, sizeof(line),
                ",\n  \"uring_compiled\": %s,\n  \"uring_available\": %s,\n"
                "  \"connections\": %d,\n  \"file_bytes\": %zu,\n"
                "  \"rows\": [\n",
                net::uring_compiled() ? "true" : "false",
                net::uring_available() ? "true" : "false", config.connections,
                config.file_bytes);
  out += line;
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::snprintf(
        line, sizeof(line),
        "    {\"backend\": \"%s\", \"effective\": %s, \"connections\": %d, "
        "\"requests\": %llu, \"errors\": %llu, \"bytes_rx\": %llu, "
        "\"rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
        row.backend.c_str(), row.effective ? "true" : "false", row.connections,
        static_cast<unsigned long long>(row.requests),
        static_cast<unsigned long long>(row.errors),
        static_cast<unsigned long long>(row.bytes_rx), row.rps, row.p50_us,
        row.p99_us, i + 1 < rows.size() ? "," : "");
    out += line;
  }
  out += "  ]\n}\n";
  return out;
}

// Structural validation of the emitted document — the perf-smoke gate and
// the committed baseline's consumers rely on exactly these fields.
[[nodiscard]] inline bool validate_io_backend_json(const std::string& json,
                                                   std::string* error) {
  const auto need = [&](const char* token) {
    if (json.find(token) == std::string::npos) {
      if (error) *error = std::string("missing token: ") + token;
      return false;
    }
    return true;
  };
  if (!need("\"benchmark\": \"io_backend\"")) return false;
  if (!need("\"quick\": ")) return false;
  if (!need("\"uring_compiled\": ")) return false;
  if (!need("\"uring_available\": ")) return false;
  if (!need("\"rows\": [")) return false;
  for (const char* token :
       {"\"backend\": \"epoll\"", "\"backend\": \"io_uring\"",
        "\"effective\": ", "\"connections\": ", "\"requests\"", "\"errors\"",
        "\"bytes_rx\"", "\"rps\"", "\"p50_us\"", "\"p99_us\""}) {
    if (!need(token)) return false;
  }
  if (json.empty() || json.back() != '\n' || json[json.size() - 2] != '}') {
    if (error) *error = "document not terminated";
    return false;
  }
  return true;
}

}  // namespace cops::bench
