// Request-path micro-benchmark: per_request vs pooled buffer management on
// the same single-connection keep-alive decode loop, persisted as
// BENCH_request_path.json.
//
//   micro_request_path [--quick] [--out PATH]
//
// Honours COPS_BENCH_QUICK=1 like the figure benches.  Exits non-zero when
// the emitted JSON fails validation, when pooled performs any steady-state
// allocation per keep-alive request, or when pooled does not allocate at
// least 50% fewer bytes than per_request — the regression gates this
// baseline exists for.
#define COPS_ALLOC_COUNTER_IMPLEMENT
#include "alloc_counter.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "request_path_harness.hpp"

int main(int argc, char** argv) {
  using namespace cops::bench;

  std::string out_path = "BENCH_request_path.json";
  BenchEnv env = bench_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      env.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  print_header("Request-path baseline (per_request vs pooled)",
               "Zero-allocation request path: heap allocations per "
               "keep-alive request per buffer_mgmt mode.");

  const RequestPathBenchConfig config =
      env.quick ? request_path_quick_config() : RequestPathBenchConfig{};

  std::vector<RequestPathRow> rows;
  uint64_t checksums[2] = {0, 0};
  size_t mode_index = 0;
  for (const char* mode : {"per_request", "pooled"}) {
    rows.push_back(
        run_request_path_mode(config, mode, &checksums[mode_index++]));
    const auto& row = rows.back();
    std::printf("  %-11s %9.0f req/s  %7.3f allocs/req  %9.1f B/req  "
                "(%llu allocs over %llu reqs)\n",
                row.mode.c_str(), row.rps, row.allocs_per_request,
                row.alloc_bytes_per_request,
                static_cast<unsigned long long>(row.steady_allocs),
                static_cast<unsigned long long>(row.requests));
    if (row.requests == 0) {
      std::fprintf(stderr, "FAIL: mode %s decoded nothing\n", mode);
      return 1;
    }
  }

  // Both modes must decode the identical request stream identically.
  if (checksums[0] != checksums[1]) {
    std::fprintf(stderr,
                 "FAIL: mode checksums diverge (%llu vs %llu) — the pooled "
                 "path decoded different requests\n",
                 static_cast<unsigned long long>(checksums[0]),
                 static_cast<unsigned long long>(checksums[1]));
    return 1;
  }

  // Acceptance gate 1: pooled is allocation-free in steady state.
  if (rows[1].steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: pooled performed %llu steady-state allocations "
                 "(%llu bytes) over %llu requests (want 0)\n",
                 static_cast<unsigned long long>(rows[1].steady_allocs),
                 static_cast<unsigned long long>(rows[1].steady_alloc_bytes),
                 static_cast<unsigned long long>(rows[1].requests));
    return 1;
  }
  // Acceptance gate 2: pooled allocates at least 50% fewer bytes per
  // request than per_request (trivially true when gate 1 holds, but kept
  // explicit — it is the documented acceptance criterion and still guards
  // the baseline if gate 1 is ever relaxed).
  if (!(rows[1].alloc_bytes_per_request <=
        0.5 * rows[0].alloc_bytes_per_request)) {
    std::fprintf(stderr,
                 "FAIL: pooled allocated %.1f B/req vs per_request %.1f "
                 "B/req (want <= 0.5x)\n",
                 rows[1].alloc_bytes_per_request,
                 rows[0].alloc_bytes_per_request);
    return 1;
  }
  // Sanity: per_request must actually allocate, or the interposer is dead.
  if (rows[0].steady_allocs == 0) {
    std::fprintf(stderr,
                 "FAIL: per_request counted zero allocations — the "
                 "operator-new interposer is not active\n");
    return 1;
  }

  const std::string json = request_path_rows_to_json(rows, env.quick);
  std::string json_error;
  if (!validate_request_path_json(json, &json_error)) {
    std::fprintf(stderr, "FAIL: malformed JSON: %s\n", json_error.c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  if (!out.good()) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
