// Micro-benchmark: the HTTP protocol library's Decode/Encode steps.
#include <benchmark/benchmark.h>

#include "common/byte_buffer.hpp"
#include "http/request_parser.hpp"
#include "http/response.hpp"

namespace {

const char* kSimpleRequest =
    "GET /dir3/class1_4.html HTTP/1.1\r\n"
    "Host: bench\r\n"
    "Connection: keep-alive\r\n\r\n";

const char* kHeavyRequest =
    "GET /dir3/class1_4.html?session=abc123&x=1 HTTP/1.1\r\n"
    "Host: bench.example.com\r\n"
    "User-Agent: Mozilla/5.0 (X11; Linux x86_64) Gecko/20100101\r\n"
    "Accept: text/html,application/xhtml+xml,application/xml;q=0.9\r\n"
    "Accept-Language: en-US,en;q=0.5\r\n"
    "Accept-Encoding: gzip, deflate\r\n"
    "Cookie: a=1; b=2; c=3; d=4\r\n"
    "Connection: keep-alive\r\n\r\n";

void parse_request_simple(benchmark::State& state) {
  for (auto _ : state) {
    cops::ByteBuffer buf{std::string_view(kSimpleRequest)};
    cops::http::HttpRequest request;
    benchmark::DoNotOptimize(cops::http::parse_request(buf, request));
  }
}
BENCHMARK(parse_request_simple);

void parse_request_heavy(benchmark::State& state) {
  for (auto _ : state) {
    cops::ByteBuffer buf{std::string_view(kHeavyRequest)};
    cops::http::HttpRequest request;
    benchmark::DoNotOptimize(cops::http::parse_request(buf, request));
  }
}
BENCHMARK(parse_request_heavy);

void sanitize_path_bench(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cops::http::sanitize_path("/a/b/../c/%41file%20name.html"));
  }
}
BENCHMARK(sanitize_path_bench);

void serialize_response(benchmark::State& state) {
  auto file = std::make_shared<cops::nserver::FileData>();
  file->bytes.assign(16 * 1024, 'x');  // SpecWeb99 mean file size
  for (auto _ : state) {
    cops::http::HttpResponse resp;
    resp.file = file;
    resp.set_header("Content-Type", "text/html");
    resp.set_header("Connection", "keep-alive");
    benchmark::DoNotOptimize(resp.serialize());
  }
}
BENCHMARK(serialize_response);

}  // namespace

BENCHMARK_MAIN();
