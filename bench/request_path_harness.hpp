// Shared machinery for the request-path benchmark (BENCH_request_path.json).
//
// Models the receive/decode half of the five-step cycle for one keep-alive
// connection, in both buffer_mgmt modes, with heap allocations counted by
// the alloc_counter interposer:
//
//   per_request — fresh HttpRequest per request, moved through the
//     std::any, context via make_shared (the classical shape);
//   pooled      — per-connection scratch HttpRequest reused across
//     requests, a pointer through the std::any, context allocated from a
//     slab free-list, read buffer adopted from a BufferPool.
//
// The measured loop is exactly what Server::run_decode does per request:
// append the request bytes to the connection's ByteBuffer (the socket
// read), parse one request out of it, wrap it for Handle, allocate the
// RequestContext stand-in.  The gate the committed baseline rests on:
// pooled performs ZERO steady-state allocations per keep-alive request,
// and at least 50% fewer allocated bytes than per_request.
//
// Used by both the committed-baseline runner (micro_request_path) and the
// allocation-counting perf-smoke ctest (alloc_count_test); both define
// COPS_ALLOC_COUNTER_IMPLEMENT in their own TU.
#pragma once

#include <any>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "alloc_counter.hpp"  // sibling header: resolves from this file's dir
#include "common/buffer_pool.hpp"
#include "common/byte_buffer.hpp"
#include "http/request.hpp"
#include "http/request_parser.hpp"

namespace cops::bench {

struct RequestPathRow {
  std::string mode;
  uint64_t requests = 0;        // measured-window iterations
  uint64_t steady_allocs = 0;   // operator-new calls in the window
  uint64_t steady_alloc_bytes = 0;
  double allocs_per_request = 0.0;
  double alloc_bytes_per_request = 0.0;
  double rps = 0.0;             // single-threaded decode throughput
};

struct RequestPathBenchConfig {
  uint64_t warmup_requests = 256;
  uint64_t measured_requests = 20000;
};

inline RequestPathBenchConfig request_path_quick_config() {
  RequestPathBenchConfig config;
  config.warmup_requests = 64;
  config.measured_requests = 2000;
  return config;
}

// The keep-alive cache-hit request every iteration replays — a typical
// browser GET with a handful of headers.
inline const std::string& request_path_wire() {
  static const std::string wire =
      "GET /assets/app.css?v=3 HTTP/1.1\r\n"
      "Host: bench.example\r\n"
      "User-Agent: cops-bench/1.0\r\n"
      "Accept: text/css,*/*;q=0.1\r\n"
      "Accept-Encoding: identity\r\n"
      "Connection: keep-alive\r\n"
      "\r\n";
  return wire;
}

// Stand-in for RequestContext: same allocation shape (control block +
// object through make_shared / allocate_shared) without dragging a whole
// Server into a single-threaded micro-benchmark.
struct CtxStandIn {
  void* server = nullptr;
  std::shared_ptr<void> conn;
  int priority = 0;
  bool resolved = false;
};

// One decode iteration's observable result — folded into a checksum so the
// compiler cannot dead-code the loop.
inline uint64_t fold_request(const http::HttpRequest& req,
                             const std::shared_ptr<CtxStandIn>& ctx) {
  return req.path.size() + req.headers.size() +
         static_cast<uint64_t>(req.keep_alive()) +
         static_cast<uint64_t>(ctx->priority);
}

inline RequestPathRow run_request_path_mode(
    const RequestPathBenchConfig& config, const std::string& mode,
    uint64_t* checksum_out = nullptr) {
  const bool pooled = mode == "pooled";
  const std::string& wire = request_path_wire();

  auto ctx_pool =
      std::make_shared<SlabPool>(sizeof(CtxStandIn) + 128, 64);
  auto buffer_pool = std::make_shared<BufferPool>(16 * 1024);

  ByteBuffer in;
  if (pooled) in.adopt_storage(buffer_pool->acquire());

  http::HttpRequest scratch;  // pooled: the per-connection scratch request
  uint64_t checksum = 0;

  auto one_request = [&]() {
    in.append(wire.data(), wire.size());
    http::StatusCode reject_status = http::StatusCode::kBadRequest;
    std::shared_ptr<CtxStandIn> ctx;
    if (pooled) {
      if (http::parse_request(in, scratch, http::ParseLimits{},
                              &reject_status) !=
          http::ParseOutcome::kComplete) {
        return false;
      }
      std::any request(&scratch);
      ctx = std::allocate_shared<CtxStandIn>(
          PoolAllocator<CtxStandIn>(ctx_pool));
      checksum += fold_request(**std::any_cast<http::HttpRequest*>(&request),
                               ctx);
    } else {
      http::HttpRequest fresh;
      if (http::parse_request(in, fresh, http::ParseLimits{},
                              &reject_status) !=
          http::ParseOutcome::kComplete) {
        return false;
      }
      std::any request(std::move(fresh));
      ctx = std::make_shared<CtxStandIn>();
      checksum +=
          fold_request(*std::any_cast<http::HttpRequest>(&request), ctx);
    }
    return true;
  };

  RequestPathRow row;
  row.mode = mode;
  for (uint64_t i = 0; i < config.warmup_requests; ++i) {
    if (!one_request()) return row;
  }

  reset_alloc_counters();
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < config.measured_requests; ++i) {
    if (!one_request()) return row;
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  const AllocCounters counters = alloc_counters();

  if (pooled) buffer_pool->release(in.release_storage());

  row.requests = config.measured_requests;
  row.steady_allocs = counters.count;
  row.steady_alloc_bytes = counters.bytes;
  row.allocs_per_request =
      static_cast<double>(counters.count) /
      static_cast<double>(config.measured_requests);
  row.alloc_bytes_per_request =
      static_cast<double>(counters.bytes) /
      static_cast<double>(config.measured_requests);
  row.rps = elapsed > 0 ? static_cast<double>(config.measured_requests) /
                              elapsed
                        : 0.0;
  if (checksum_out != nullptr) *checksum_out = checksum;
  return row;
}

inline std::string request_path_rows_to_json(
    const std::vector<RequestPathRow>& rows, bool quick) {
  std::string out = "{\n  \"benchmark\": \"request_path\",\n  \"quick\": ";
  out += quick ? "true" : "false";
  out += ",\n  \"rows\": [\n";
  char buf[320];
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"%s\", \"requests\": %llu, "
        "\"steady_allocs\": %llu, \"steady_alloc_bytes\": %llu, "
        "\"allocs_per_request\": %.4f, "
        "\"alloc_bytes_per_request\": %.1f, \"rps\": %.0f}%s\n",
        row.mode.c_str(), static_cast<unsigned long long>(row.requests),
        static_cast<unsigned long long>(row.steady_allocs),
        static_cast<unsigned long long>(row.steady_alloc_bytes),
        row.allocs_per_request, row.alloc_bytes_per_request, row.rps,
        i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

// Structural validation of the emitted JSON — the perf-smoke gate fails on
// a malformed file rather than committing garbage (same contract as
// validate_send_path_json).
inline bool validate_request_path_json(const std::string& text,
                                       std::string* error) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    if (braces < 0 || brackets < 0) {
      if (error) *error = "unbalanced close at offset " + std::to_string(i);
      return false;
    }
  }
  if (braces != 0 || brackets != 0 || in_string) {
    if (error) *error = "unbalanced braces/brackets/quotes";
    return false;
  }
  for (const char* key :
       {"\"benchmark\": \"request_path\"", "\"rows\"",
        "\"mode\": \"per_request\"", "\"mode\": \"pooled\"",
        "\"steady_allocs\"", "\"steady_alloc_bytes\"",
        "\"allocs_per_request\"", "\"alloc_bytes_per_request\"", "\"rps\""}) {
    if (text.find(key) == std::string::npos) {
      if (error) *error = std::string("missing key ") + key;
      return false;
    }
  }
  return true;
}

}  // namespace cops::bench
