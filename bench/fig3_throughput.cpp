// Fig. 3 reproduction: throughput of COPS-HTTP vs Apache under 1..1024
// simulated Web clients (log-scale x-axis in the paper).
//
// Paper shape to reproduce:
//   * light load (< 32 clients): Apache slightly ahead (thread-per-
//     connection has no queue hop on an idle machine);
//   * 32..256 clients: COPS-HTTP ahead (event-driven scales with many
//     concurrent connections);
//   * >= 256 clients: both saturate at the bottleneck;
//   * 1024 clients: Apache may edge ahead again — by serving only the 150
//     lucky clients quickly (see Fig. 4 for the price).
#include <cstdio>

#include "fig_common.hpp"

int main() {
  using namespace cops;
  bench::print_header(
      "FIG 3 — throughput, COPS-HTTP vs Apache-like baseline",
      "SpecWeb99-style file set, 5 requests/connection, think time between "
      "pages.\nPaper shape: Apache ahead <32 clients, COPS ahead 32-256, "
      "both saturated >=256.");

  bench::SweepConfig sweep;
  sweep.env = bench::bench_env();
  sweep.fileset = bench::ensure_fileset(sweep.env);
  const auto points = bench::run_sweep(sweep);

  std::printf("%10s %16s %16s %12s %14s %14s\n", "clients", "COPS rps",
              "Apache rps", "COPS/Apache", "COPS Mbit/s", "Apache Mbit/s");
  for (const auto& point : points) {
    const double cops_rps = point.cops.throughput_rps();
    const double apache_rps = point.apache.throughput_rps();
    const double cops_mbps = 8.0 * double(point.cops.total_bytes) /
                             point.cops.elapsed_seconds / 1e6;
    const double apache_mbps = 8.0 * double(point.apache.total_bytes) /
                               point.apache.elapsed_seconds / 1e6;
    std::printf("%10zu %16.1f %16.1f %12.2f %14.1f %14.1f\n", point.clients,
                cops_rps, apache_rps,
                apache_rps > 0 ? cops_rps / apache_rps : 0.0, cops_mbps,
                apache_mbps);
  }
  std::printf(
      "\nNote: absolute numbers reflect this host, not the paper's Sun "
      "E420R + 100 Mbit network; compare the who-wins-where shape.\n");
  return 0;
}
