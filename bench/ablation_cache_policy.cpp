// Ablation (option O6): end-to-end effect of the cache replacement policy
// on hit rate and throughput under the SpecWeb99-style access pattern, with
// the cache deliberately smaller than the working set.
#include <cstdio>

#include "bench_common.hpp"
#include "http/http_server.hpp"

int main() {
  using namespace cops;
  bench::print_header(
      "ABLATION O6 — cache replacement policies end-to-end",
      "COPS-HTTP, cache capacity = 4% of the file set (high eviction "
      "pressure),\nZipf-skewed SpecWeb99-style accesses.");

  auto env = bench::bench_env();
  auto fileset = bench::ensure_fileset(env);

  struct PolicyCase {
    const char* name;
    nserver::CachePolicyKind kind;
  };
  const PolicyCase cases[] = {
      {"none", nserver::CachePolicyKind::kNone},
      {"LRU", nserver::CachePolicyKind::kLru},
      {"LFU", nserver::CachePolicyKind::kLfu},
      {"LRU-MIN", nserver::CachePolicyKind::kLruMin},
      {"LRU-Threshold", nserver::CachePolicyKind::kLruThreshold},
      {"Hyper-G", nserver::CachePolicyKind::kHyperG},
  };

  std::printf("%-16s %12s %12s %12s %12s\n", "policy", "rps", "hit rate",
              "evictions", "p50 us");
  for (const auto& policy_case : cases) {
    auto options = http::CopsHttpServer::default_options();
    options.cache_policy = policy_case.kind;
    options.cache_capacity_bytes = static_cast<size_t>(
        0.04 * static_cast<double>(loadgen::fileset_bytes(fileset)));
    options.cache_size_threshold = 16 * 1024;  // LRU-Threshold parameter
    http::HttpServerConfig config;
    config.doc_root = fileset.root;
    http::CopsHttpServer server(options, config);
    if (!server.start().is_ok()) {
      std::fprintf(stderr, "start failed for %s\n", policy_case.name);
      return 1;
    }
    loadgen::ClientConfig load;
    load.server = net::InetAddress::loopback(server.port());
    load.num_clients = 32;
    load.think_time = std::chrono::milliseconds(1);
    load.duration = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(env.seconds_per_point));
    auto sampler = std::make_shared<loadgen::WorkloadSampler>(fileset);
    load.path_for = [sampler](size_t, std::mt19937& rng) {
      return sampler->sample(rng);
    };
    auto stats = loadgen::run_clients(load);
    auto* cache = server.server().cache();
    std::printf("%-16s %12.1f %12.3f %12llu %12lld\n", policy_case.name,
                stats.throughput_rps(), cache ? cache->hit_rate() : 0.0,
                static_cast<unsigned long long>(cache ? cache->evictions()
                                                      : 0),
                static_cast<long long>(
                    stats.response_time.quantile_micros(0.5)));
    server.stop();
  }
  std::printf(
      "\nLRU-MIN / LRU-Threshold favour many small objects (higher hit "
      "counts on SpecWeb's 85%% small-file accesses); byte hit rate "
      "differs — the paper offers the five policies because no single one "
      "wins everywhere.\n");
  return 0;
}
