// Ablation: the paper's SEDA critique (Section III), quantified.
//
// "SEDA's staged design ... suffers from additional thread
// switching/scheduling overheads ... This happens when there are more
// stages used than available processors, so that threads belonging to
// different stages contend for processors."
//
// Model: a request passes through S units of work.  The N-Server shape runs
// all S units inside ONE Event Processor event (one queue hop per request);
// the SEDA shape gives every unit its own stage — a queue + its own thread —
// so a request makes S queue hops and its work migrates across S threads.
// We measure end-to-end requests/s for S = 1, 2, 4, 8 stages.
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/mpmc_queue.hpp"

namespace {

// One unit of CPU work (~small parse/encode step).
inline uint64_t work_unit(uint64_t x) {
  for (int i = 0; i < 40; ++i) x = x * 0x9e3779b97f4a7c15ull + 1;
  return x;
}

// SEDA shape: `stages` queues, one thread each, requests hop through all.
double run_seda(int stages, int requests) {
  struct Stage {
    cops::MpmcQueue<uint64_t> queue;
    std::thread thread;
  };
  std::vector<std::unique_ptr<Stage>> pipeline;
  std::atomic<int> completed{0};
  for (int s = 0; s < stages; ++s) {
    pipeline.push_back(std::make_unique<Stage>());
  }
  for (int s = 0; s < stages; ++s) {
    Stage* stage = pipeline[static_cast<size_t>(s)].get();
    Stage* next =
        s + 1 < stages ? pipeline[static_cast<size_t>(s) + 1].get() : nullptr;
    stage->thread = std::thread([stage, next, &completed] {
      while (auto item = stage->queue.pop()) {
        const uint64_t value = work_unit(*item);
        if (next != nullptr) {
          next->queue.push(value);
        } else {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const auto start = cops::now();
  for (int i = 0; i < requests; ++i) {
    pipeline[0]->queue.push(static_cast<uint64_t>(i));
  }
  while (completed.load() < requests) std::this_thread::yield();
  const double seconds = cops::to_seconds(cops::now() - start);
  for (auto& stage : pipeline) stage->queue.shutdown();
  for (auto& stage : pipeline) stage->thread.join();
  return requests / seconds;
}

// N-Server shape: one queue, one worker, all S units fused per event.
double run_fused(int stages, int requests) {
  cops::MpmcQueue<uint64_t> queue;
  std::atomic<int> completed{0};
  std::thread worker([&] {
    while (auto item = queue.pop()) {
      uint64_t value = *item;
      for (int s = 0; s < stages; ++s) value = work_unit(value);
      completed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const auto start = cops::now();
  for (int i = 0; i < requests; ++i) queue.push(static_cast<uint64_t>(i));
  while (completed.load() < requests) std::this_thread::yield();
  const double seconds = cops::to_seconds(cops::now() - start);
  queue.shutdown();
  worker.join();
  return requests / seconds;
}

}  // namespace

int main() {
  using namespace cops;
  bench::print_header(
      "ABLATION — SEDA staging overhead (the paper's Section III critique)",
      "Same total work per request; SEDA gives each unit its own stage "
      "(queue + thread),\nthe N-Server fuses all units into one event.  "
      "More stages than CPUs → switching overhead.");

  const auto env = bench::bench_env();
  const int requests = env.quick ? 30'000 : 150'000;
  const unsigned cpus = std::thread::hardware_concurrency();

  std::printf("(host has %u hardware thread(s))\n\n", cpus);
  std::printf("%8s %18s %18s %14s\n", "stages", "SEDA req/s",
              "N-Server req/s", "SEDA penalty");
  for (int stages : {1, 2, 4, 8}) {
    const double seda = run_seda(stages, requests);
    const double fused = run_fused(stages, requests);
    std::printf("%8d %18.0f %18.0f %13.2fx\n", stages, seda, fused,
                fused / seda);
  }
  std::printf(
      "\nWith stages > CPUs every request migrates across contending "
      "threads; the fused (generated) pipeline pays one queue hop total — "
      "the reason the N-Server runs hooks in a single Event Processor "
      "rather than a stage per step.\n");
  return 0;
}
