// Fig. 5 reproduction: differentiated service levels via event scheduling
// (option O8).
//
// Paper setup: an ISP hosts a corporate portal (high priority, paid) and
// personal homepages (low priority) on one COPS-HTTP server.  The priority
// hook — 13 lines in the paper — classifies each request; the Event
// Processor's quota priority queue allocates service in a x/y ratio
// (x = homepage quota, y = corporate quota).  File caching is disabled "to
// make the workload heavier".  The classifier here uses the URL path prefix
// instead of the client IP (same hook, different predicate — DESIGN.md).
//
// Expected shape: corporate/homepage throughput ratio tracks y/x, with a
// small gap (the server does not control OS-level resources).  The
// rightmost row is the corporate-only maximum.
#include <cstdio>

#include "bench_common.hpp"
#include "http/http_server.hpp"

namespace {

struct RatioPoint {
  const char* label;
  size_t homepage_quota;   // x
  size_t corporate_quota;  // y
  bool homepage_traffic = true;
};

}  // namespace

int main() {
  using namespace cops;
  bench::print_header(
      "FIG 5 — differentiated service levels via event scheduling (O8)",
      "Priority ratio x/y: x = homepage quota, y = corporate-portal quota.\n"
      "Paper shape: measured throughput split tracks the configured ratio.");

  auto env = bench::bench_env();
  auto fileset = bench::ensure_fileset(env);

  const RatioPoint ratios[] = {
      {"1/1", 1, 1},
      {"1/2", 1, 2},
      {"1/4", 1, 4},
      {"1/8", 1, 8},
      {"max (no homepage load)", 1, 8, false},
  };

  std::printf("%-26s %14s %14s %14s %12s\n", "priority ratio x/y",
              "homepage rps", "corporate rps", "corp/home", "target y/x");
  for (const auto& ratio : ratios) {
    auto options = http::CopsHttpServer::default_options();
    options.cache_policy = nserver::CachePolicyKind::kNone;  // paper: off
    options.event_scheduling = true;
    // Level 0 = corporate (high), level 1 = homepage (low).
    options.priority_quotas = {ratio.corporate_quota, ratio.homepage_quota};
    // One processor thread with a small decode cost keeps a queue formed,
    // so the scheduler (not idle capacity) decides the split — the paper
    // achieves the same by disabling the cache to make the workload heavy.
    options.processor_threads = 1;
    http::HttpServerConfig config;
    config.doc_root = fileset.root;
    config.decode_delay = std::chrono::milliseconds(2);
    config.priority_classifier = [](const http::HttpRequest& request) {
      // The paper's "13 lines": classify by origin; here by content class.
      return request.path.find("/corp/") != std::string::npos ? 0 : 1;
    };
    http::CopsHttpServer server(options, config);
    if (!server.start().is_ok()) {
      std::fprintf(stderr, "server start failed\n");
      return 1;
    }

    // One client population per content class (the paper used one client
    // machine per class); /corp/... and /home/... alias the same file tree
    // via symlinks inside the doc root.  Both classes are sized to keep
    // their event-queue level backlogged, so the quota scheduler — not
    // spare capacity — decides the split.
    loadgen::ClientConfig load;
    load.server = net::InetAddress::loopback(server.port());
    load.num_clients = ratio.homepage_traffic ? 192 : 96;
    load.requests_per_connection = 50;
    load.think_time = std::chrono::milliseconds(0);
    load.duration = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(env.seconds_per_point));
    load.path_for = [&](size_t client, std::mt19937& rng) {
      std::uniform_int_distribution<int> file(0, loadgen::kFilesPerClass - 1);
      const bool corporate = !ratio.homepage_traffic || client < 96;
      // Small (class 0/1) files keep the run CPU-bound, not byte-bound.
      return std::string(corporate ? "/corp" : "/home") + "/dir0/class0_" +
             std::to_string(file(rng)) + ".html";
    };
    // Serve /corp/... and /home/... from the same tree via symlinked roots.
    (void)std::system(("ln -sfn " + fileset.root + " " + fileset.root +
                       "/corp 2>/dev/null; ln -sfn " + fileset.root + " " +
                       fileset.root + "/home 2>/dev/null")
                          .c_str());
    // The symlinks live *inside* the doc root, so /corp/dir0/... resolves.
    auto stats_and_split = [&] {
      // Per-class responses via client ownership (first 96 = corporate).
      auto stats = loadgen::run_clients(load);
      double corp = 0;
      double home = 0;
      for (size_t i = 0; i < stats.responses_per_client.size(); ++i) {
        const bool corporate = !ratio.homepage_traffic || i < 96;
        (corporate ? corp : home) +=
            static_cast<double>(stats.responses_per_client[i]);
      }
      return std::make_pair(corp / stats.elapsed_seconds,
                            home / stats.elapsed_seconds);
    };
    const auto [corp_rps, home_rps] = stats_and_split();
    server.stop();

    const double target =
        static_cast<double>(ratio.corporate_quota) /
        static_cast<double>(ratio.homepage_quota);
    std::printf("%-26s %14.1f %14.1f %14.2f %12.1f\n", ratio.label, home_rps,
                corp_rps, home_rps > 0 ? corp_rps / home_rps : 0.0,
                ratio.homepage_traffic ? target : 0.0);
  }
  std::printf(
      "\nA small gap between configured and measured ratios is expected "
      "(paper: the server cannot schedule OS resources such as socket "
      "buffer draining).\n");
  return 0;
}
