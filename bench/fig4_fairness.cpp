// Fig. 4 reproduction: Jain service-fairness index of the per-client
// response counts, COPS-HTTP vs Apache, under the same sweep as Fig. 3.
//
// Paper shape to reproduce: COPS-HTTP's fairness stays high at every load;
// Apache's collapses under heavy load (0.51 at 1024 clients) because only
// 150 connections are served while other clients' SYNs are dropped and they
// back off exponentially.
#include <cstdio>

#include "fig_common.hpp"

int main() {
  using namespace cops;
  bench::print_header(
      "FIG 4 — service fairness (Jain index), COPS-HTTP vs Apache-like "
      "baseline",
      "f(x) = (sum x_i)^2 / (N sum x_i^2) over per-client response counts.\n"
      "Paper shape: COPS stays near 1.0; Apache drops sharply at high load "
      "(0.51 @ 1024).");

  bench::SweepConfig sweep;
  sweep.env = bench::bench_env();
  sweep.fileset = bench::ensure_fileset(sweep.env);
  const auto points = bench::run_sweep(sweep);

  std::printf("%10s %14s %16s %20s %22s\n", "clients", "COPS Jain",
              "Apache Jain", "COPS conn failures", "Apache conn failures");
  for (const auto& point : points) {
    std::printf("%10zu %14.3f %16.3f %20llu %22llu\n", point.clients,
                point.cops.jain_fairness(), point.apache.jain_fairness(),
                static_cast<unsigned long long>(point.cops.connect_failures),
                static_cast<unsigned long long>(
                    point.apache.connect_failures));
  }
  std::printf(
      "\nThe connect-failure columns expose the mechanism: dropped SYNs at "
      "the baseline's full backlog push unlucky clients into exponential "
      "backoff, exactly the paper's explanation of Apache's unfairness.\n");
  return 0;
}
